"""Docstring coverage checker (an ``interrogate --fail-under`` equivalent).

Walks Python files, counts public docstring carriers (module, public classes,
public functions/methods -- underscore names and ``__init__`` are exempt, as
this codebase documents constructor arguments in the class docstring), and
fails when the documented fraction is below the threshold.  Stdlib-only, so it runs both as a CI step and from the test suite:

    python tools/check_docstrings.py --fail-under 100 \
        src/repro/runtime src/repro/service/cluster.py src/repro/noc/fastpath.py
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_python_files(targets: "list[str]") -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: "set[Path]" = set()
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"no such python file or directory: {target}")
    return sorted(files)


def audit_file(path: Path) -> "tuple[int, int, list[str]]":
    """(documented, total, missing descriptions) for one file's public API."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented, total, missing = 0, 0, []

    def record(node, label: str) -> None:
        nonlocal documented, total
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(label)

    record(tree, f"{path}:1 (module docstring)")
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if _is_public(node.name):
                record(node, f"{path}:{node.lineno} {node.name}")
    return documented, total, missing


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+", help="files or directories to audit")
    parser.add_argument("--fail-under", type=float, default=100.0, metavar="PCT",
                        help="minimum documented percentage (default 100)")
    parser.add_argument("--quiet", action="store_true", help="suppress the summary line")
    args = parser.parse_args(argv)

    documented = total = 0
    missing: "list[str]" = []
    for path in iter_python_files(args.targets):
        file_documented, file_total, file_missing = audit_file(path)
        documented += file_documented
        total += file_total
        missing.extend(file_missing)

    coverage = 100.0 * documented / total if total else 100.0
    if not args.quiet:
        print(f"docstring coverage: {documented}/{total} = {coverage:.1f}% "
              f"(threshold {args.fail_under:.1f}%)")
    if coverage < args.fail_under:
        for label in missing:
            print(f"  missing: {label}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
