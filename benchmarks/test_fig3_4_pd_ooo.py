"""Benchmark: regenerate Figure 3.4: performance density sweep (OoO pods).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter3 as experiment_module

from _harness import run_and_print


def test_fig3_4_pd_ooo(benchmark):
    """Figure 3.4: performance density sweep (OoO pods)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_3_4_pd_sweep_ooo,
        "Figure 3.4: performance density sweep (OoO pods)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert max(r['performance_density'] for r in rows) > 0.1
