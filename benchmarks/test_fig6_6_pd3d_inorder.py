"""Benchmark: regenerate Figure 6.6: 3D performance density sweep (in-order cores).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_fig6_6_pd3d_inorder(benchmark):
    """Figure 6.6: 3D performance density sweep (in-order cores)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_6_6_pd3d_inorder,
        "Figure 6.6: 3D performance density sweep (in-order cores)",
        **{'die_counts': (1, 2)},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert max(r['performance_density'] for r in rows) > 0.15
