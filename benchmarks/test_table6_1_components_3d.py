"""Benchmark: regenerate Table 6.1: component area and power for the 3D study.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_table6_1_components_3d(benchmark):
    """Table 6.1: component area and power for the 3D study."""
    result = run_and_print(
        benchmark,
        experiment_module.table_6_1_components,
        "Table 6.1: component area and power for the 3D study",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert len(rows) >= 4
