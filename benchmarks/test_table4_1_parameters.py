"""Benchmark: regenerate Table 4.1: NOC-Out evaluation parameters.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter4 as experiment_module

from _harness import run_and_print


def test_table4_1_parameters(benchmark):
    """Table 4.1: NOC-Out evaluation parameters."""
    result = run_and_print(
        benchmark,
        experiment_module.table_4_1_parameters,
        "Table 4.1: NOC-Out evaluation parameters",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert any(r['parameter'] == 'cores' for r in rows)
