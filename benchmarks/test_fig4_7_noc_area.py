"""Benchmark: regenerate Figure 4.7: NoC area breakdown.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter4 as experiment_module

from _harness import run_and_print


def test_fig4_7_noc_area(benchmark):
    """Figure 4.7: NoC area breakdown."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_4_7_noc_area,
        "Figure 4.7: NoC area breakdown",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    by = {r['topology']: r['total_mm2'] for r in rows}; assert by['nocout'] < by['mesh'] < by['fbfly']
