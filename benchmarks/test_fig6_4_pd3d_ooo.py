"""Benchmark: regenerate Figure 6.4: 3D performance density sweep (OoO cores).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_fig6_4_pd3d_ooo(benchmark):
    """Figure 6.4: 3D performance density sweep (OoO cores)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_6_4_pd3d_ooo,
        "Figure 6.4: 3D performance density sweep (OoO cores)",
        **{'die_counts': (1, 2, 4)},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert max(r['performance_density'] for r in rows) > 0.1
