"""Benchmark: SLA-driven cluster sizing across the server-chip designs.

Beyond-paper study: combines the Erlang-C queueing model with the Chapter 5
TCO machinery to cost each design at a fixed QPS / p99 target.
"""

from repro.experiments import service as experiment_module

from _harness import run_and_print


def test_service_cluster_sizing(benchmark):
    """Cluster sizing: scale-out designs serve the QPS target far cheaper."""
    result = run_and_print(
        benchmark,
        experiment_module.service_cluster_sizing,
        "Service study: SLA-driven cluster sizing",
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    by_design = {r['design']: r for r in rows}
    assert by_design['Scale-Out (OoO)']['servers'] < by_design['Conventional']['servers']
    assert by_design['Scale-Out (OoO)']['monthly_tco_usd'] < by_design['Conventional']['monthly_tco_usd']
    assert all(r['p99_ms'] <= r['sla_p99_ms'] for r in rows)
