"""Benchmark: regenerate Figure 5.1: datacenter performance normalized to the conventional design.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_fig5_1_dc_performance(benchmark):
    """Figure 5.1: datacenter performance normalized to the conventional design."""
    result = run_and_print(
        benchmark,
        experiment_module.figures_5_1_5_2_performance_and_tco,
        "Figure 5.1: datacenter performance normalized to the conventional design",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    so = next(r for r in rows if r['design'] == 'Scale-Out (In-order)'); assert so['normalized_performance'] > 2.0
