"""Shared helpers for the per-table / per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (DESIGN.md has
the full index), prints the rows the paper reports, and records the wall-clock
cost of regenerating it via pytest-benchmark.  Heavy experiments run with
``rounds=1`` so the whole harness stays fast.
"""

from __future__ import annotations

from repro.experiments.formatting import format_table
from repro.runtime import ExperimentResult


def run_and_print(benchmark, experiment_fn, title, **kwargs):
    """Benchmark ``experiment_fn`` once and print its table.

    ``experiment_fn`` may be a bare chapter function returning rows or a
    runtime-aware callable returning an :class:`ExperimentResult` envelope; the
    envelope is unwrapped so the benchmark assertions keep seeing raw data.
    """
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    if isinstance(result, ExperimentResult):
        print()
        print(format_table(result.rows, title=title))
        print(f"# cache={result.cache_status} wall={result.wall_time_s:.3f}s")
        return result.data
    if isinstance(result, dict):
        rows = result.get("sweep", [result])
    else:
        rows = result
    print()
    print(format_table(list(rows), title=title))
    return result
