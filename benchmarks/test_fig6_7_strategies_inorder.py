"""Benchmark: regenerate Figure 6.7: fixed-pod vs fixed-distance (in-order cores).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_fig6_7_strategies_inorder(benchmark):
    """Figure 6.7: fixed-pod vs fixed-distance (in-order cores)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_6_7_strategies_inorder,
        "Figure 6.7: fixed-pod vs fixed-distance (in-order cores)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert any(r['strategy'] == 'fixed-pod' for r in rows)
