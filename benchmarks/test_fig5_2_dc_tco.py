"""Benchmark: regenerate Figure 5.2: datacenter TCO normalized to the conventional design.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_fig5_2_dc_tco(benchmark):
    """Figure 5.2: datacenter TCO normalized to the conventional design."""
    result = run_and_print(
        benchmark,
        experiment_module.figures_5_1_5_2_performance_and_tco,
        "Figure 5.2: datacenter TCO normalized to the conventional design",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(0.5 < r['normalized_tco'] < 1.5 for r in rows)
