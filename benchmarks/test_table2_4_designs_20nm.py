"""Benchmark: regenerate Table 2.4: processor designs at 20nm.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter2 as experiment_module

from _harness import run_and_print


def test_table2_4_designs_20nm(benchmark):
    """Table 2.4: processor designs at 20nm."""
    result = run_and_print(
        benchmark,
        experiment_module.table_2_4_designs_20nm,
        "Table 2.4: processor designs at 20nm",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert any(r['design'] == 'Conventional' for r in rows)
