"""Benchmark: regenerate Figure 2.1: application IPC on an aggressive OoO core.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter2 as experiment_module

from _harness import run_and_print


def test_fig2_1_ipc(benchmark):
    """Figure 2.1: application IPC on an aggressive OoO core."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_2_1_application_ipc,
        "Figure 2.1: application IPC on an aggressive OoO core",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(0.4 < r['application_ipc'] < 2.5 for r in rows)
