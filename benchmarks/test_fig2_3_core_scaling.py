"""Benchmark: regenerate Figure 2.3: per-core / aggregate performance vs core count (ideal vs mesh).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter2 as experiment_module

from _harness import run_and_print


def test_fig2_3_core_scaling(benchmark):
    """Figure 2.3: per-core / aggregate performance vs core count (ideal vs mesh)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_2_3_core_scaling,
        "Figure 2.3: per-core / aggregate performance vs core count (ideal vs mesh)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert rows[-1]['mesh_per_core'] < rows[-1]['ideal_per_core']
