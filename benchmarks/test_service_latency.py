"""Benchmark: service-level load-latency curve for a scale-out cluster.

Beyond-paper study: docs/service.md describes the queueing model and its
calibration from the chip-level performance metrics.
"""

from repro.experiments import service as experiment_module

from _harness import run_and_print


def test_service_latency_sweep(benchmark):
    """Load-latency curve: p99 rises with offered load and diverges at saturation."""
    result = run_and_print(
        benchmark,
        experiment_module.service_latency_sweep,
        "Service study: cluster load-latency curve",
        **{'utilizations': (0.5, 0.8, 0.95, 1.1), 'num_requests': 4000},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    p99s = [r['p99_ms'] for r in rows]
    assert p99s == sorted(p99s)
    assert p99s[-1] > p99s[0]
