"""Benchmark: regenerate Figure 3.6: performance density sweep (in-order pods).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter3 as experiment_module

from _harness import run_and_print


def test_fig3_6_pd_inorder(benchmark):
    """Figure 3.6: performance density sweep (in-order pods)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_3_6_pd_sweep_inorder,
        "Figure 3.6: performance density sweep (in-order pods)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert max(r['performance_density'] for r in rows) > 0.15
