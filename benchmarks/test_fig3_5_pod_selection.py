"""Benchmark: regenerate Figure 3.5: crossbar pod sweep and selected pod.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter3 as experiment_module

from _harness import run_and_print


def test_fig3_5_pod_selection(benchmark):
    """Figure 3.5: crossbar pod sweep and selected pod."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_3_5_pod_selection,
        "Figure 3.5: crossbar pod sweep and selected pod",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert result['selected_cores'] in (8, 16, 32, 64)
