"""Benchmark: regenerate Table 5.1: server chip characteristics.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_table5_1_chips(benchmark):
    """Table 5.1: server chip characteristics."""
    result = run_and_print(
        benchmark,
        experiment_module.table_5_1_chip_characteristics,
        "Table 5.1: server chip characteristics",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert len(rows) == 7
