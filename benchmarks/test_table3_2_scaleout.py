"""Benchmark: regenerate Table 3.2: full design comparison including Scale-Out Processors (40nm).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter3 as experiment_module

from _harness import run_and_print


def test_table3_2_scaleout(benchmark):
    """Table 3.2: full design comparison including Scale-Out Processors (40nm)."""
    result = run_and_print(
        benchmark,
        experiment_module.table_3_2_design_comparison,
        "Table 3.2: full design comparison including Scale-Out Processors (40nm)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert any('Scale-Out' in r['design'] for r in rows)
