"""Benchmark: regenerate Figure 4.8: performance under a fixed NoC area budget.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter4 as experiment_module

from _harness import run_and_print


def test_fig4_8_area_normalized(benchmark):
    """Figure 4.8: performance under a fixed NoC area budget."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_4_8_area_normalized,
        "Figure 4.8: performance under a fixed NoC area budget",
        **{'duration_cycles': 3000},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    nocout = next(r for r in rows if r['topology'] == 'nocout'); assert nocout['geomean'] > 1.0
