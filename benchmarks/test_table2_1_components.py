"""Benchmark: regenerate Table 2.1: component area and power at 40nm.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter2 as experiment_module

from _harness import run_and_print


def test_table2_1_components(benchmark):
    """Table 2.1: component area and power at 40nm."""
    result = run_and_print(
        benchmark,
        experiment_module.table_2_1_components,
        "Table 2.1: component area and power at 40nm",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert len(rows) >= 6
