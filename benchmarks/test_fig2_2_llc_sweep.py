"""Benchmark: regenerate Figure 2.2: performance of 4-core systems vs LLC size (normalized to 1MB).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter2 as experiment_module

from _harness import run_and_print


def test_fig2_2_llc_sweep(benchmark):
    """Figure 2.2: performance of 4-core systems vs LLC size (normalized to 1MB)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_2_2_llc_sensitivity,
        "Figure 2.2: performance of 4-core systems vs LLC size (normalized to 1MB)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(r['8MB'] >= r['1MB'] * 0.98 for r in rows)
