"""Benchmark: the vectorized Pareto kernel and the GA search driver.

Beyond-paper machinery: docs/dse.md describes the search strategies and
docs/performance.md the recorded ``BENCH_dse.json`` baseline.
"""

import random

from repro.dse.pareto import Objective, pareto_frontier
from repro.dse.studies import explore_pod_40nm

KERNEL_ROWS = 20_000


def _synthetic_rows(count, seed=0):
    rng = random.Random(seed)
    return [
        {
            "group": rng.choice(("x", "y")),
            "throughput": rng.random(),
            "efficiency": rng.random(),
            "cost": rng.random(),
        }
        for _ in range(count)
    ]


def test_pareto_kernel(benchmark):
    """Frontier extraction over 20k synthetic rows through the numpy kernel."""
    rows = _synthetic_rows(KERNEL_ROWS)
    objectives = (
        Objective.maximize("throughput"),
        Objective.maximize("efficiency"),
        Objective.minimize("cost"),
    )
    frontier = benchmark.pedantic(
        lambda: pareto_frontier(rows, objectives, group_by="group", method="numpy"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert 0 < len(frontier) < KERNEL_ROWS


def test_ga_search(benchmark):
    """GA search of the pod space recovers both knees within a 48-eval budget."""
    payload = benchmark.pedantic(
        lambda: explore_pod_40nm(
            strategy="ga", budget=48, seed=0, use_evaluation_cache=False
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert set(payload["knees"]) == {"ooo", "inorder"}
    assert payload["stats"]["candidates"] <= 48
