"""Benchmark: regenerate Figure 5.4: datacenter performance/Watt vs memory per server.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_fig5_4_perf_per_watt(benchmark):
    """Figure 5.4: datacenter performance/Watt vs memory per server."""
    result = run_and_print(
        benchmark,
        experiment_module.figures_5_3_5_4_efficiency,
        "Figure 5.4: datacenter performance/Watt vs memory per server",
        **{'memory_capacities_gb': (64,)},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(r['performance_per_watt'] > 0 for r in rows)
