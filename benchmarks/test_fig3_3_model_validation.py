"""Benchmark: regenerate Figure 3.3: analytic model vs cycle-level simulation.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter3 as experiment_module

from _harness import run_and_print


def test_fig3_3_model_validation(benchmark):
    """Figure 3.3: analytic model vs cycle-level simulation."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_3_3_model_validation,
        "Figure 3.3: analytic model vs cycle-level simulation",
        **{'core_counts': (1, 2, 4, 8), 'instructions_per_core': 3000},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert rows[-1]['workload'] == 'MEAN' and rows[-1]['relative_error'] < 0.6
