"""Benchmark: regenerate Figure 4.3: percentage of LLC accesses triggering a snoop.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter4 as experiment_module

from _harness import run_and_print


def test_fig4_3_snoop_fraction(benchmark):
    """Figure 4.3: percentage of LLC accesses triggering a snoop."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_4_3_snoop_fraction,
        "Figure 4.3: percentage of LLC accesses triggering a snoop",
        **{'cores': 16, 'instructions_per_core': 4000},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert 0.0 <= rows[-1]['snoop_fraction_percent'] < 10.0
