"""Benchmark: regenerate Table 5.2: TCO parameters.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_table5_2_tco_params(benchmark):
    """Table 5.2: TCO parameters."""
    result = run_and_print(
        benchmark,
        experiment_module.table_5_2_parameters,
        "Table 5.2: TCO parameters",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert len(rows) >= 8
