"""Benchmark: regenerate Figure 5.5: performance/TCO sensitivity to processor price.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter5 as experiment_module

from _harness import run_and_print


def test_fig5_5_price_sensitivity(benchmark):
    """Figure 5.5: performance/TCO sensitivity to processor price."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_5_5_price_sensitivity,
        "Figure 5.5: performance/TCO sensitivity to processor price",
        **{'volumes': (40000, 200000, 1000000)},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(r['price_usd'] > 0 for r in rows)
