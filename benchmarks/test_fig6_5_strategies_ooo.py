"""Benchmark: regenerate Figure 6.5: fixed-pod vs fixed-distance (OoO cores).

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_fig6_5_strategies_ooo(benchmark):
    """Figure 6.5: fixed-pod vs fixed-distance (OoO cores)."""
    result = run_and_print(
        benchmark,
        experiment_module.figure_6_5_strategies_ooo,
        "Figure 6.5: fixed-pod vs fixed-distance (OoO cores)",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert any(r['strategy'] == 'fixed-distance' for r in rows)
