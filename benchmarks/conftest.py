"""Make the src/ layout importable for the benchmark suite."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
_SRC = os.path.abspath(_SRC)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
