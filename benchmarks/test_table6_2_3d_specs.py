"""Benchmark: regenerate Table 6.2: 2D vs 3D Scale-Out Processor specifications.

See DESIGN.md (per-experiment index) for the workload, parameters, and modules
behind this experiment, and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import chapter6 as experiment_module

from _harness import run_and_print


def test_table6_2_3d_specs(benchmark):
    """Table 6.2: 2D vs 3D Scale-Out Processor specifications."""
    result = run_and_print(
        benchmark,
        experiment_module.table_6_2_specifications,
        "Table 6.2: 2D vs 3D Scale-Out Processor specifications",
        **{},
    )
    rows = result["sweep"] if isinstance(result, dict) else result
    assert all(r['performance_density'] > 0 for r in rows)
