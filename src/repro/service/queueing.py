"""Per-server request queues with parallel service units.

A :class:`RequestServer` is one FCFS queue feeding ``parallelism`` identical
service units -- a G/G/k station.  The parallelism is derived from the chip
organization (usable cores per server, see
:mod:`repro.service.calibration`); requests beyond the free units wait in an
unbounded FIFO queue, matching the open-loop arrival model.

Servers are driven by the shared :class:`repro.sim.engine.EventQueue`; the
event time unit here is *seconds* rather than cycles (the engine is agnostic).
Service times are pre-attached to requests at arrival-generation time so that
simulations at different loads with the same seed reuse identical per-request
work -- the common-random-numbers structure behind monotone load sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.engine import EventQueue
from repro.service.latency import LatencyCollector


@dataclass(frozen=True)
class Request:
    """One user request.

    Attributes:
        index: arrival sequence number (0-based).
        arrival_s: absolute arrival time in seconds.
        service_s: work the request costs one service unit, in seconds.
    """

    index: int
    arrival_s: float
    service_s: float


class RequestServer:
    """FCFS queue in front of ``parallelism`` parallel service units."""

    def __init__(
        self,
        server_id: int,
        parallelism: int,
        engine: EventQueue,
        collector: LatencyCollector,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.server_id = server_id
        self.parallelism = parallelism
        self.engine = engine
        self.collector = collector
        self.queue: "deque[Request]" = deque()
        self.busy_units = 0
        self.completed = 0
        self.busy_time_s = 0.0

    @property
    def backlog(self) -> int:
        """Requests on this server (queued plus in service); what balancers read."""
        return len(self.queue) + self.busy_units

    def offer(self, request: Request) -> None:
        """Accept an arriving request: start service or enqueue."""
        if self.busy_units < self.parallelism:
            self._start(request)
        else:
            self.queue.append(request)

    def _start(self, request: Request) -> None:
        self.busy_units += 1
        self.engine.schedule(request.service_s, lambda: self._complete(request))

    def _complete(self, request: Request) -> None:
        self.busy_units -= 1
        self.completed += 1
        self.busy_time_s += request.service_s
        self.collector.record(
            request.index, self.server_id, self.engine.now - request.arrival_s
        )
        if self.queue:
            self._start(self.queue.popleft())

    def utilization(self, duration_s: float) -> float:
        """Fraction of unit-time spent serving over ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        return self.busy_time_s / (duration_s * self.parallelism)
