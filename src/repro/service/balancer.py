"""Load-balancing policies for spreading requests across servers.

A policy picks the server for each arriving request.  The classic spectrum is
covered:

* :class:`RandomBalancer` -- uniform random, no state;
* :class:`RoundRobinBalancer` -- deterministic rotation, perfectly fair in
  counts but blind to queue state;
* :class:`JoinShortestQueue` -- full information, provably latency-optimal
  among non-anticipating policies for identical servers;
* :class:`PowerOfTwoChoices` -- sample two random servers and join the
  shorter queue; captures most of JSQ's benefit with O(1) state probes.

Policies only read ``server.backlog`` (queued plus in-service requests), so
they work with any server object exposing that property.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence


class _HasBacklog(Protocol):
    @property
    def backlog(self) -> int: ...


class RandomBalancer:
    """Pick a server uniformly at random."""

    name = "random"

    def select(self, servers: "Sequence[_HasBacklog]", rng: random.Random) -> int:
        return rng.randrange(len(servers))


class RoundRobinBalancer:
    """Rotate through the servers in order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, servers: "Sequence[_HasBacklog]", rng: random.Random) -> int:
        index = self._next % len(servers)
        self._next += 1
        return index

class JoinShortestQueue:
    """Send the request to the server with the smallest backlog (ties: lowest id)."""

    name = "jsq"

    def select(self, servers: "Sequence[_HasBacklog]", rng: random.Random) -> int:
        return min(range(len(servers)), key=lambda i: (servers[i].backlog, i))


class PowerOfTwoChoices:
    """Probe two distinct random servers; join the one with the smaller backlog."""

    name = "po2"

    def select(self, servers: "Sequence[_HasBacklog]", rng: random.Random) -> int:
        if len(servers) == 1:
            return 0
        first = rng.randrange(len(servers))
        second = rng.randrange(len(servers) - 1)
        if second >= first:
            second += 1
        if servers[second].backlog < servers[first].backlog:
            return second
        return first


#: Balancer factories keyed by the names the experiments/CLI use.
BALANCER_POLICIES = {
    "random": RandomBalancer,
    "round_robin": RoundRobinBalancer,
    "jsq": JoinShortestQueue,
    "po2": PowerOfTwoChoices,
}


def make_balancer(name: str):
    """Build a fresh balancer instance for the named policy."""
    try:
        factory = BALANCER_POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown balancer policy {name!r}; known: {sorted(BALANCER_POLICIES)}"
        ) from None
    return factory()
