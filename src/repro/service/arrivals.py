"""Open-loop request arrival processes.

Datacenter front-ends see an *open* arrival stream: users issue requests
independently of how loaded the cluster is, so queues grow without bound past
saturation instead of throttling.  Two processes are provided:

* :class:`PoissonArrivals` -- memoryless arrivals at a fixed mean rate, the
  standard model for aggregated independent users;
* :class:`MmppArrivals` -- a two-state Markov-modulated Poisson process that
  alternates between a quiet and a bursty phase, capturing the flash-crowd
  behaviour that makes tail latency so much worse than mean latency.

Both draw from a caller-supplied :class:`random.Random`, so a seeded stream is
fully deterministic.  ``PoissonArrivals`` consumes exactly one uniform variate
per request, which means two streams with the same seed but different rates
produce *proportional* arrival times -- the common-random-numbers property the
load sweeps rely on for monotone load-latency curves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class PoissonArrivals:
    """Poisson process: i.i.d. exponential interarrival gaps.

    Attributes:
        rate_rps: mean arrival rate in requests per second.
    """

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")

    def gaps(self, rng: random.Random) -> "Iterator[float]":
        """Endless stream of interarrival gaps (seconds)."""
        while True:
            # Inverse-transform sampling (one uniform per request) so equal
            # seeds at different rates yield exactly scaled arrival times.
            yield -math.log(1.0 - rng.random()) / self.rate_rps

    def sample_times(self, rng: random.Random, count: int) -> np.ndarray:
        """``count`` absolute arrival times, generated as one batch.

        Consumes one uniform per request from ``rng`` (the same budget as
        :meth:`gaps`), vectorizing the log transform and the running-time
        accumulation; the common-random-numbers scaling property is preserved
        exactly because the uniforms are shared across rates.
        """
        uniforms = np.array([rng.random() for _ in range(count)], dtype=np.float64)
        gaps = -np.log1p(-uniforms) / self.rate_rps
        return np.cumsum(gaps)


@dataclass(frozen=True)
class MmppArrivals:
    """Two-state Markov-modulated Poisson process (quiet phase / burst phase).

    The process spends ``burst_fraction`` of its time (in expectation) in the
    burst phase, where arrivals come ``burstiness`` times faster than in the
    quiet phase; rates are normalized so the long-run mean rate is ``rate_rps``.
    Phase sojourn times are exponential with mean ``mean_phase_s``.

    Attributes:
        rate_rps: long-run mean arrival rate in requests per second.
        burstiness: burst-phase rate divided by quiet-phase rate (> 1).
        burst_fraction: expected fraction of time spent in the burst phase.
        mean_phase_s: mean sojourn time of the *quiet* phase in seconds (the
            burst phase sojourn is scaled to honour ``burst_fraction``).
    """

    rate_rps: float
    burstiness: float = 4.0
    burst_fraction: float = 0.2
    mean_phase_s: float = 0.1

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.burstiness <= 1.0:
            raise ValueError("burstiness must be > 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.mean_phase_s <= 0:
            raise ValueError("mean_phase_s must be positive")

    @property
    def quiet_rate_rps(self) -> float:
        """Arrival rate of the quiet phase."""
        mix = (1.0 - self.burst_fraction) + self.burst_fraction * self.burstiness
        return self.rate_rps / mix

    @property
    def burst_rate_rps(self) -> float:
        """Arrival rate of the burst phase."""
        return self.quiet_rate_rps * self.burstiness

    def gaps(self, rng: random.Random) -> "Iterator[float]":
        """Endless stream of interarrival gaps (seconds)."""
        quiet_sojourn = self.mean_phase_s
        burst_sojourn = self.mean_phase_s * self.burst_fraction / (1.0 - self.burst_fraction)
        bursting = False
        phase_left = rng.expovariate(1.0 / quiet_sojourn)
        gap = 0.0
        while True:
            rate = self.burst_rate_rps if bursting else self.quiet_rate_rps
            to_arrival = rng.expovariate(rate)
            if to_arrival <= phase_left:
                phase_left -= to_arrival
                yield gap + to_arrival
                gap = 0.0
            else:
                # The phase flips before the next arrival; restart the
                # (memoryless) arrival clock at the new rate.
                gap += phase_left
                bursting = not bursting
                sojourn = burst_sojourn if bursting else quiet_sojourn
                phase_left = rng.expovariate(1.0 / sojourn)

    def sample_times(self, rng: random.Random, count: int) -> np.ndarray:
        """``count`` absolute arrival times (batched via the gap stream).

        The modulated process is inherently sequential (each gap depends on
        the phase state), so batching here only amortizes the accumulation.
        """
        gap_stream = self.gaps(rng)
        gaps = np.fromiter(
            (next(gap_stream) for _ in range(count)), dtype=np.float64, count=count
        )
        return np.cumsum(gaps)


#: Arrival-process factories keyed by the names the experiments/CLI use.
ARRIVAL_PROCESSES = {
    "poisson": PoissonArrivals,
    "mmpp": MmppArrivals,
}


def make_arrivals(name: str, rate_rps: float, **kwargs) -> "PoissonArrivals | MmppArrivals":
    """Build a named arrival process at ``rate_rps``."""
    try:
        factory = ARRIVAL_PROCESSES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; known: {sorted(ARRIVAL_PROCESSES)}"
        ) from None
    return factory(rate_rps, **kwargs)
