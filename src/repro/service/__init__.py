"""Datacenter service simulation: queueing, tail latency, SLA-driven sizing.

This package turns the repo's chip-level metrics into service-level ones.  A
discrete-event cluster simulator (:mod:`~repro.service.cluster`) pushes an
open-loop request stream (:mod:`~repro.service.arrivals`) through a pluggable
load balancer (:mod:`~repro.service.balancer`) onto per-server request queues
(:mod:`~repro.service.queueing`) whose service rates are calibrated from the
analytic performance model (:mod:`~repro.service.calibration`).  On top of the
simulator, an Erlang-C M/M/k layer (:mod:`~repro.service.sizing`) sizes and
costs the minimum cluster that serves a QPS target within a p99 SLA, using the
existing :mod:`repro.tco` models for rack packing and monthly cost.
"""

from repro.service.arrivals import (
    ARRIVAL_PROCESSES,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.service.balancer import (
    BALANCER_POLICIES,
    JoinShortestQueue,
    PowerOfTwoChoices,
    RandomBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.service.calibration import ServiceCapacity, calibrate_chip
from repro.service.cluster import (
    ClusterConfig,
    ClusterResult,
    ClusterSimulation,
    simulate_cluster,
)
from repro.service.latency import LatencyCollector, LatencyStats
from repro.service.queueing import Request, RequestServer
from repro.service.servicetime import (
    SERVICE_DISTRIBUTIONS,
    DeterministicService,
    ExponentialService,
    LogNormalService,
    make_service_time,
)
from repro.service.sizing import (
    ClusterSizer,
    MmkQueue,
    SizingResult,
    SlaInfeasibleError,
    erlang_b,
    erlang_c,
    saturation_qps,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "BALANCER_POLICIES",
    "SERVICE_DISTRIBUTIONS",
    "ClusterConfig",
    "ClusterResult",
    "ClusterSimulation",
    "ClusterSizer",
    "DeterministicService",
    "ExponentialService",
    "JoinShortestQueue",
    "LatencyCollector",
    "LatencyStats",
    "LogNormalService",
    "MmkQueue",
    "MmppArrivals",
    "PoissonArrivals",
    "PowerOfTwoChoices",
    "RandomBalancer",
    "Request",
    "RequestServer",
    "RoundRobinBalancer",
    "ServiceCapacity",
    "SizingResult",
    "SlaInfeasibleError",
    "calibrate_chip",
    "erlang_b",
    "erlang_c",
    "make_arrivals",
    "make_balancer",
    "make_service_time",
    "saturation_qps",
    "simulate_cluster",
]
