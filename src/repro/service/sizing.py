"""Analytic M/M/k queueing and SLA-driven cluster sizing.

The sizing layer answers the capacity-planning question behind Chapter 5's TCO
comparison: *how many servers (and dollars per month) does each chip design
need to serve N QPS within a p99 latency SLA?*

Each server is modeled as an M/M/k station -- ``k`` service units (usable
cores x sockets) at per-unit rate ``mu`` -- fed an even share of the offered
load (a random split of a Poisson stream is Poisson).  The closed-form
Erlang-C machinery gives the waiting probability, mean wait, and the full
sojourn-time distribution, whose 99th percentile drives a monotone
minimum-server search.  Monthly cost then comes from the existing
:mod:`repro.tco` models: rack packing via :class:`~repro.tco.server.ServerDesign`
and the four-category EETCO breakdown via :class:`~repro.tco.model.TcoModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.core.chip import ScaleOutChip
from repro.service.calibration import ServiceCapacity, calibrate_chip
from repro.tco.datacenter import DatacenterDesign
from repro.tco.model import TcoBreakdown
from repro.workloads.profile import WorkloadProfile

#: ln(100): zero-load p99 of an exponential service time, in units of the mean.
_EXP_P99_FACTOR = math.log(100.0)


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``servers`` lines at ``offered_load`` (erlangs).

    Computed with the standard numerically stable recurrence, valid for
    hundreds of servers where the naive factorial form overflows.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered_load must be non-negative")
    if offered_load == 0:
        return 0.0
    blocking = 1.0
    for line in range(1, servers + 1):
        blocking = offered_load * blocking / (line + offered_load * blocking)
    return blocking


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/k, FCFS).

    Returns 1.0 for saturated systems (``offered_load >= servers``), where
    every arrival waits.
    """
    if offered_load >= servers:
        return 1.0
    blocking = erlang_b(servers, offered_load)
    rho = offered_load / servers
    return blocking / (1.0 - rho * (1.0 - blocking))


@dataclass(frozen=True)
class MmkQueue:
    """An M/M/k queue: ``servers`` units at ``service_rate_rps`` each.

    Unstable configurations (utilization >= 1) are representable; their wait
    and latency metrics are ``inf`` so sizing searches can treat stability and
    SLA feasibility uniformly.
    """

    servers: int
    service_rate_rps: float
    arrival_rate_rps: float

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.service_rate_rps <= 0:
            raise ValueError("service_rate_rps must be positive")
        if self.arrival_rate_rps < 0:
            raise ValueError("arrival_rate_rps must be non-negative")

    @property
    def offered_load(self) -> float:
        """Offered traffic in erlangs (lambda / mu)."""
        return self.arrival_rate_rps / self.service_rate_rps

    @property
    def utilization(self) -> float:
        """Per-unit utilization rho = lambda / (k mu)."""
        return self.offered_load / self.servers

    @cached_property
    def wait_probability(self) -> float:
        """Probability an arriving request queues (Erlang-C).

        Cached: the O(k) Erlang-B recurrence is constant per instance but is
        consulted on every bisection step of :meth:`latency_quantile`.
        """
        return erlang_c(self.servers, self.offered_load)

    @property
    def mean_wait_s(self) -> float:
        """Mean time spent waiting in queue."""
        if self.utilization >= 1.0:
            return math.inf
        drain_rate = self.servers * self.service_rate_rps - self.arrival_rate_rps
        return self.wait_probability / drain_rate

    @property
    def mean_latency_s(self) -> float:
        """Mean sojourn time (wait plus service)."""
        return self.mean_wait_s + 1.0 / self.service_rate_rps

    def latency_survival(self, t: float) -> float:
        """P(sojourn time > t) for FCFS M/M/k.

        The sojourn is the independent sum of the queueing wait (an atom at
        zero plus an exponential of rate ``k mu - lambda``) and the service
        time (exponential of rate ``mu``).
        """
        if t <= 0:
            return 1.0
        if self.utilization >= 1.0:
            return 1.0
        mu = self.service_rate_rps
        theta = self.servers * mu - self.arrival_rate_rps
        wait_p = self.wait_probability
        no_wait = (1.0 - wait_p) * math.exp(-mu * t)
        if abs(theta - mu) < 1e-12 * mu:
            with_wait = wait_p * (1.0 + mu * t) * math.exp(-mu * t)
        else:
            with_wait = (
                wait_p
                * (theta * math.exp(-mu * t) - mu * math.exp(-theta * t))
                / (theta - mu)
            )
        return no_wait + with_wait

    def latency_quantile(self, fraction: float = 0.99) -> float:
        """Sojourn-time quantile (e.g. the p99 latency), by bisection."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        if self.utilization >= 1.0:
            return math.inf
        target = 1.0 - fraction
        hi = self.mean_latency_s
        while self.latency_survival(hi) > target:
            hi *= 2.0
        lo = 0.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.latency_survival(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def saturation_qps(servers: int, service_rate_rps: float, sla_p99_s: float) -> float:
    """Largest Poisson arrival rate an M/M/k station serves within the p99 SLA."""
    zero_load_p99 = _EXP_P99_FACTOR / service_rate_rps
    if zero_load_p99 > sla_p99_s:
        return 0.0
    lo, hi = 0.0, servers * service_rate_rps
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        queue = MmkQueue(servers, service_rate_rps, mid)
        if queue.latency_quantile(0.99) <= sla_p99_s:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class SizingResult:
    """Minimum cluster (and its cost) serving a QPS target within the SLA."""

    design: str
    workload: str
    target_qps: float
    sla_p99_s: float
    servers: int
    racks: int
    sockets_per_server: int
    units_per_server: int
    unit_rate_rps: float
    utilization: float
    p99_s: float
    mean_latency_s: float
    monthly_tco_usd: float
    tco_breakdown: TcoBreakdown

    @property
    def server_capacity_qps(self) -> float:
        """Saturation throughput of one server."""
        return self.units_per_server * self.unit_rate_rps

    @property
    def tco_per_million_qps(self) -> float:
        """Monthly dollars per million requests/second served."""
        return self.monthly_tco_usd / (self.target_qps / 1e6)


@dataclass(frozen=True)
class RedundantSizingResult:
    """Minimum N+k cluster: meets the SLA even with ``k`` servers down.

    ``servers`` is the deployed count ``n``; the survivability requirement is
    that the surviving ``n - k`` servers still serve ``target_qps`` within the
    p99 SLA.  Because per-server p99 falls monotonically in the server count,
    the minimal such ``n`` is exactly ``base_servers + k`` -- the un-faulted
    :meth:`ClusterSizer.size` answer plus one spare per tolerated failure --
    so ``k = 0`` reduces to today's sizing bit-for-bit.
    """

    design: str
    workload: str
    target_qps: float
    sla_p99_s: float
    k: int
    base_servers: int
    servers: int
    racks: int
    utilization: float
    p99_s: float
    degraded_p99_s: float
    server_availability: float
    cluster_availability: float
    monthly_tco_usd: float
    base_monthly_tco_usd: float
    tco_breakdown: TcoBreakdown

    @property
    def redundancy_overhead(self) -> float:
        """Fractional monthly-TCO premium over the k=0 cluster."""
        if self.base_monthly_tco_usd <= 0:
            return 0.0
        return self.monthly_tco_usd / self.base_monthly_tco_usd - 1.0


def cluster_availability(servers: int, k: int, server_availability: float) -> float:
    """P(at most ``k`` of ``servers`` i.i.d. servers are down simultaneously).

    The cluster meets its SLA while no more than ``k`` servers are failed
    (that is what the N+k sizing guarantees), so this binomial tail is the
    steady-state probability the deployed cluster is SLA-capable.
    """
    if not 0.0 <= server_availability <= 1.0:
        raise ValueError("server_availability must be in [0, 1]")
    if k < 0:
        raise ValueError("k must be >= 0")
    q = 1.0 - server_availability
    return min(
        1.0,
        sum(
            math.comb(servers, i) * (q**i) * (server_availability ** (servers - i))
            for i in range(min(k, servers) + 1)
        ),
    )


class SlaInfeasibleError(ValueError):
    """The SLA cannot be met at any cluster size (or within the search bound)."""


class ClusterSizer:
    """SLA-driven minimum-cluster search combining queueing and TCO models."""

    def __init__(
        self,
        datacenter: "DatacenterDesign | None" = None,
        memory_gb: int = 64,
        max_servers: int = 10_000_000,
    ):
        self.datacenter = datacenter or DatacenterDesign()
        self.memory_gb = memory_gb
        self.max_servers = max_servers

    # ------------------------------------------------------------- queueing
    def server_queue(
        self, capacity: ServiceCapacity, sockets: int, per_server_qps: float
    ) -> MmkQueue:
        """The M/M/k model of one server at the given share of load."""
        return MmkQueue(
            servers=capacity.units_per_chip * sockets,
            service_rate_rps=capacity.unit_rate_rps,
            arrival_rate_rps=per_server_qps,
        )

    def minimum_servers(
        self, capacity: ServiceCapacity, sockets: int, target_qps: float, sla_p99_s: float
    ) -> int:
        """Smallest server count whose per-server p99 meets the SLA.

        The offered load splits evenly (each server sees an independent Poisson
        stream of ``target_qps / n``); per-server p99 falls monotonically in
        ``n``, so an exponential probe plus binary search finds the minimum.
        """
        zero_load_p99 = _EXP_P99_FACTOR / capacity.unit_rate_rps
        if zero_load_p99 > sla_p99_s:
            raise SlaInfeasibleError(
                f"SLA p99 of {sla_p99_s * 1e3:.2f} ms is below the zero-load p99 "
                f"of {zero_load_p99 * 1e3:.2f} ms for {capacity.workload!r} on "
                f"{capacity.design!r}; no cluster size can meet it"
            )

        def p99(n: int) -> float:
            return self.server_queue(capacity, sockets, target_qps / n).latency_quantile(0.99)

        units = capacity.units_per_chip * sockets
        stability_floor = max(
            1, math.ceil(target_qps / (units * capacity.unit_rate_rps))
        )
        lo, hi = 0, stability_floor
        while p99(hi) > sla_p99_s:
            lo = hi
            hi *= 2
            if hi > self.max_servers:
                raise SlaInfeasibleError(
                    f"no cluster of up to {self.max_servers} servers meets a "
                    f"{sla_p99_s * 1e3:.2f} ms p99 at {target_qps:.0f} QPS for "
                    f"{capacity.workload!r} on {capacity.design!r}"
                )
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if p99(mid) <= sla_p99_s:
                hi = mid
            else:
                lo = mid
        return hi

    # ---------------------------------------------------------------- sizing
    def size(
        self,
        chip: ScaleOutChip,
        workload: WorkloadProfile,
        target_qps: float,
        sla_p99_s: float,
    ) -> SizingResult:
        """Size and cost the minimum cluster of ``chip`` servers for the SLA."""
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        if sla_p99_s <= 0:
            raise ValueError("sla_p99_s must be positive")
        capacity = calibrate_chip(chip, workload, self.datacenter.model)
        server = self.datacenter.build_server(chip, memory_gb=self.memory_gb)
        servers = self.minimum_servers(capacity, server.sockets, target_qps, sla_p99_s)
        queue = self.server_queue(capacity, server.sockets, target_qps / servers)
        racks = max(1, math.ceil(servers / server.servers_per_rack()))
        price = self.datacenter.pricing.price(chip.name, chip.die_area_mm2)
        tco = self.datacenter.tco_model.monthly_tco(server, servers, racks, price)
        return SizingResult(
            design=chip.name,
            workload=capacity.workload,
            target_qps=target_qps,
            sla_p99_s=sla_p99_s,
            servers=servers,
            racks=racks,
            sockets_per_server=server.sockets,
            units_per_server=queue.servers,
            unit_rate_rps=capacity.unit_rate_rps,
            utilization=queue.utilization,
            p99_s=queue.latency_quantile(0.99),
            mean_latency_s=queue.mean_latency_s,
            monthly_tco_usd=tco.total,
            tco_breakdown=tco,
        )

    def size_n_plus_k(
        self,
        chip: ScaleOutChip,
        workload: WorkloadProfile,
        target_qps: float,
        sla_p99_s: float,
        k: int = 1,
        server_mtbf_h: float = 4380.0,
        server_mttr_h: float = 4.0,
    ) -> RedundantSizingResult:
        """Minimum monthly-TCO cluster that meets the SLA with ``k`` servers down.

        Args:
            chip: the server chip design.
            workload: the service workload profile.
            target_qps: offered load the *surviving* servers must carry.
            sla_p99_s: the p99 latency SLA.
            k: concurrent server failures the cluster must survive (``k=0``
                reduces to :meth:`size` exactly).
            server_mtbf_h: per-server mean time between failures, hours
                (drives the availability estimate only, not the size).
            server_mttr_h: per-server mean time to repair, hours.

        Returns:
            The deployed ``base + k`` cluster with nominal and degraded p99,
            binomial cluster availability, and its TCO next to the k=0 TCO.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        if server_mtbf_h <= 0 or server_mttr_h < 0:
            raise ValueError("server_mtbf_h must be positive and server_mttr_h >= 0")
        base = self.size(chip, workload, target_qps, sla_p99_s)
        servers = base.servers + k
        capacity = calibrate_chip(chip, workload, self.datacenter.model)
        server = self.datacenter.build_server(chip, memory_gb=self.memory_gb)
        nominal = self.server_queue(capacity, server.sockets, target_qps / servers)
        racks = max(1, math.ceil(servers / server.servers_per_rack()))
        price = self.datacenter.pricing.price(chip.name, chip.die_area_mm2)
        tco = self.datacenter.tco_model.monthly_tco(server, servers, racks, price)
        availability = server_mtbf_h / (server_mtbf_h + server_mttr_h)
        return RedundantSizingResult(
            design=chip.name,
            workload=capacity.workload,
            target_qps=target_qps,
            sla_p99_s=sla_p99_s,
            k=k,
            base_servers=base.servers,
            servers=servers,
            racks=racks,
            utilization=nominal.utilization,
            p99_s=nominal.latency_quantile(0.99),
            # With k servers down the survivors are exactly the base cluster.
            degraded_p99_s=base.p99_s,
            server_availability=availability,
            cluster_availability=cluster_availability(servers, k, availability),
            monthly_tco_usd=tco.total,
            base_monthly_tco_usd=base.monthly_tco_usd,
            tco_breakdown=tco,
        )
