"""Cluster-level service simulation: arrivals -> balancer -> servers.

:class:`ClusterSimulation` wires an open-loop arrival process, a load-balancing
policy, and ``num_servers`` identical :class:`~repro.service.queueing.RequestServer`
stations onto one :class:`~repro.sim.engine.EventQueue` and runs a fixed number
of requests to completion.  Three independent seeded random streams keep the
simulation deterministic *and* comparable across configurations:

* the **arrival** stream draws interarrival gaps -- with Poisson arrivals one
  uniform per request, so two runs with equal seeds and different rates see
  proportional arrival times;
* the **service** stream attaches per-request service times at generation time,
  identical across runs regardless of load or policy;
* the **routing** stream feeds the balancer's random choices.

Because higher offered load only compresses the same arrival pattern over the
same per-request work, waiting times are monotone in load for state-free
policies -- the load-latency sweeps inherit that cleanliness.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.service.arrivals import make_arrivals
from repro.service.balancer import make_balancer
from repro.service.latency import LatencyCollector, LatencyStats
from repro.service.queueing import Request, RequestServer
from repro.service.servicetime import make_service_time
from repro.sim.engine import EventQueue

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids an import cycle)
    from repro.faults.events import FaultSchedule
    from repro.faults.metrics import DependabilityStats

#: Policies whose routing decisions never read queue state; their simulations
#: decompose into independent per-server FCFS recurrences and run on the
#: vectorized fast engine.
STATE_FREE_POLICIES = ("random", "round_robin")

#: Every policy the fast engine reproduces bit-identically to the event
#: engine: the state-free pair plus the queue-state-aware ``jsq``/``po2``,
#: which :func:`balanced_completion_times` replays with lazy heaps.
FAST_POLICIES = ("random", "round_robin", "jsq", "po2")

_ENGINES = ("auto", "fast", "event")


def fcfs_completion_times(
    arrivals: "list[float]",
    services: "list[float]",
    assignment: "list[int]",
    num_servers: int,
    parallelism: int,
) -> "list[float]":
    """Completion times for a fixed routing: independent FCFS G/G/k stations.

    With the per-request server choice already known (state-free policies, or
    a replayed balancer decision), each server reduces to the classic
    earliest-free-unit recurrence over a k-slot heap of unit-free times:
    ``start = max(arrival, earliest free)``, ``completion = start + service``.
    The float expressions mirror the event engine exactly, so the returned
    times are bitwise equal to an :class:`~repro.sim.engine.EventQueue` run.
    The fleet layer reuses this kernel for its per-epoch datacenter chunks.
    """
    unit_free = [[0.0] * parallelism for _ in range(num_servers)]
    completions = [0.0] * len(arrivals)
    heapreplace = heapq.heapreplace
    for index in range(len(arrivals)):
        heap = unit_free[assignment[index]]
        free = heap[0]
        arrival = arrivals[index]
        start = arrival if arrival >= free else free
        completion = start + services[index]
        heapreplace(heap, completion)
        completions[index] = completion
    return completions


def balanced_completion_times(
    arrivals: "list[float]",
    services: "list[float]",
    policy: str,
    num_servers: int,
    parallelism: int,
    routing_rng: "random.Random",
) -> "tuple[list[float], list[int]]":
    """Completion times and routing for the queue-state-aware policies.

    ``jsq`` and ``po2`` route on live backlogs, so the FCFS recurrence alone
    is not enough: the kernel additionally tracks each server's in-system
    count (queued plus in service) at every arrival instant.  Two lazy heaps
    make that O(log n) per request:

    * a global ``(completion, server)`` heap drains finished requests -- with
      the *strict* ``< t`` comparison, because the event engine schedules all
      arrivals before any completion and its tie-break is insertion order, so
      an arrival at exactly a completion's timestamp still sees that request
      in the system;
    * for ``jsq``, a ``(count, server)`` heap with stale-entry invalidation
      yields the minimum-backlog server with the lowest-id tie-break --
      exactly :class:`~repro.service.balancer.JoinShortestQueue`'s
      ``min(..., key=(backlog, i))``.

    ``po2`` replays :class:`~repro.service.balancer.PowerOfTwoChoices`'s draw
    sequence from ``routing_rng`` verbatim (first uniform over ``n``, second
    over ``n - 1`` with the shift), so the routing stream is bit-identical to
    the event engine's.

    Returns:
        ``(completions, assignment)`` lists, bitwise equal to an event run.
    """
    if policy not in ("jsq", "po2"):
        raise ValueError(f"no balanced-kernel replay for policy {policy!r}")
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    randrange = routing_rng.randrange
    jsq = policy == "jsq"

    unit_free = [[0.0] * parallelism for _ in range(num_servers)]
    counts = [0] * num_servers
    in_system: "list[tuple[float, int]]" = []
    count_heap: "list[tuple[int, int]]" = [(0, s) for s in range(num_servers)]
    completions = [0.0] * len(arrivals)
    assignment = [0] * len(arrivals)
    for index in range(len(arrivals)):
        arrival = arrivals[index]
        while in_system and in_system[0][0] < arrival:
            server = heappop(in_system)[1]
            count = counts[server] - 1
            counts[server] = count
            if jsq:
                heappush(count_heap, (count, server))
        if jsq:
            while True:
                count, server = count_heap[0]
                if counts[server] == count:
                    break
                heappop(count_heap)
        elif num_servers == 1:
            server = 0
        else:
            first = randrange(num_servers)
            second = randrange(num_servers - 1)
            if second >= first:
                second += 1
            server = second if counts[second] < counts[first] else first
        heap = unit_free[server]
        free = heap[0]
        start = arrival if arrival >= free else free
        completion = start + services[index]
        heapreplace(heap, completion)
        completions[index] = completion
        assignment[index] = server
        count = counts[server] + 1
        counts[server] = count
        if jsq:
            heappush(count_heap, (count, server))
        heappush(in_system, (completion, server))
    return completions, assignment


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one service-cluster simulation.

    Attributes:
        num_servers: identical servers behind the load balancer.
        parallelism: service units per server (usable cores, from calibration).
        service_mean_s: mean per-request service time of one unit.
        offered_qps: open-loop arrival rate across the whole cluster.
        policy: load-balancing policy name (see ``BALANCER_POLICIES``).
        arrival: arrival process name (``"poisson"`` or ``"mmpp"``).
        service_distribution: service-time shape (``"exponential"``, ...).
        arrival_kwargs: extra arrival-process parameters (e.g. burstiness).
        service_kwargs: extra service-distribution parameters (e.g. cv).
        warmup_fraction: leading fraction of requests excluded from stats.
    """

    num_servers: int
    parallelism: int
    service_mean_s: float
    offered_qps: float
    policy: str = "jsq"
    arrival: str = "poisson"
    service_distribution: str = "exponential"
    arrival_kwargs: "dict[str, float]" = field(default_factory=dict)
    service_kwargs: "dict[str, float]" = field(default_factory=dict)
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if self.offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

    @property
    def capacity_qps(self) -> float:
        """Saturation throughput: every unit busy all the time."""
        return self.num_servers * self.parallelism / self.service_mean_s

    @property
    def utilization(self) -> float:
        """Offered load as a fraction of saturation throughput."""
        return self.offered_qps / self.capacity_qps


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster simulation.

    ``dependability`` is filled only by fault-injected runs (see
    :mod:`repro.faults.inject`); un-faulted runs leave it ``None``, keeping
    their results byte-identical to pre-fault-subsystem ones.
    """

    config: ClusterConfig
    latency: LatencyStats
    measured_requests: int
    total_requests: int
    duration_s: float
    mean_utilization: float
    per_server_counts: "dict[int, int]"
    dependability: "DependabilityStats | None" = None

    @property
    def achieved_qps(self) -> float:
        """Completed-request throughput over the simulated interval."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_requests / self.duration_s


class ClusterSimulation:
    """Simulation of a load-balanced service cluster.

    Two engines produce the same per-request latencies:

    * the **event engine** drives :class:`RequestServer` stations on a shared
      :class:`EventQueue` and supports every policy (it is required for the
      state-aware ``jsq`` and ``po2`` balancers);
    * the **fast engine** replays routing without event objects or callbacks:
      state-free policies (``random``/``round_robin``) fix the routing up
      front and reduce each server to an isolated FCFS G/G/k recurrence
      (:func:`fcfs_completion_times`); the queue-state-aware ``jsq``/``po2``
      run the lazy-heap kernel (:func:`balanced_completion_times`) that
      tracks in-system counts exactly as the event engine's backlogs evolve.

    ``engine="auto"`` (default) picks the fast engine for every policy in
    :data:`FAST_POLICIES` (currently all of them); ``engine="event"`` is the
    reference escape hatch.

    A non-empty ``faults`` schedule routes the run through the fault-injected
    event engine (:mod:`repro.faults.inject`); crashes and stragglers need
    live queue state, so ``engine="fast"`` rejects faults.  An empty (or
    ``None``) schedule takes exactly the un-faulted code path -- zero-fault
    results are byte-identical to runs that never heard of faults.
    """

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 1,
        engine: str = "auto",
        faults: "FaultSchedule | None" = None,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if engine == "fast" and config.policy not in FAST_POLICIES:
            raise ValueError(
                f"policy {config.policy!r} has no fast-engine replay; "
                "use engine='auto' or 'event'"
            )
        if faults is not None and faults.is_empty():
            faults = None
        if faults is not None and engine == "fast":
            raise ValueError(
                "fault injection needs live queue state; use engine='auto' or 'event'"
            )
        self.config = config
        self.seed = seed
        self.engine = engine
        self.faults = faults

    def resolved_engine(self) -> str:
        """The engine ("fast" or "event") this simulation will run on."""
        if self.faults is not None:
            return "event"
        if self.engine == "auto":
            return "fast" if self.config.policy in FAST_POLICIES else "event"
        return self.engine

    def _generate_request_arrays(self, count: int) -> "tuple[np.ndarray, np.ndarray]":
        """(arrival times, service times) -- the shared deterministic streams.

        Both engines consume these identical arrays, so results are engine-
        independent; arrivals and service times come from separate seeded
        streams, preserving the common-random-numbers structure.
        """
        arrival_rng = random.Random(self.seed)
        service_rng = random.Random(self.seed + 1)
        process = make_arrivals(
            self.config.arrival, self.config.offered_qps, **self.config.arrival_kwargs
        )
        distribution = make_service_time(
            self.config.service_distribution,
            self.config.service_mean_s,
            **self.config.service_kwargs,
        )
        arrivals = process.sample_times(arrival_rng, count)
        services = distribution.sample_batch(service_rng, count)
        return arrivals, services

    def _generate_requests(self, count: int) -> "list[Request]":
        """The request list for the event engine (object view of the arrays)."""
        arrivals, services = self._generate_request_arrays(count)
        return [
            Request(index=index, arrival_s=arrival, service_s=service)
            for index, (arrival, service) in enumerate(
                zip(arrivals.tolist(), services.tolist())
            )
        ]

    def run(self, num_requests: int = 5_000) -> ClusterResult:
        """Simulate ``num_requests`` requests to completion."""
        from repro.obs.tracer import get_tracer

        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        engine = self.resolved_engine()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter(f"service.engine.{engine}").add()
            tracer.counter("service.requests").add(num_requests)
        with tracer.span(
            "service.cluster",
            category="service",
            policy=self.config.policy,
            engine=engine,
            requests=num_requests,
            servers=self.config.num_servers,
        ):
            if self.faults is not None:
                from repro.faults.inject import run_faulted

                return run_faulted(self, num_requests, self.faults)
            if engine == "fast":
                return self._run_fast(num_requests)
            return self._run_event(num_requests)

    # ------------------------------------------------------------ event engine
    def _run_event(self, num_requests: int) -> ClusterResult:
        config = self.config
        engine = EventQueue()
        warmup = int(num_requests * config.warmup_fraction)
        collector = LatencyCollector(warmup_requests=warmup)
        servers = [
            RequestServer(i, config.parallelism, engine, collector)
            for i in range(config.num_servers)
        ]
        balancer = make_balancer(config.policy)
        routing_rng = random.Random(self.seed + 2)

        for request in self._generate_requests(num_requests):
            engine.schedule_at(
                request.arrival_s,
                # Bind loop variable; selection happens at arrival time so
                # state-aware policies see live backlogs.
                lambda request=request: servers[
                    balancer.select(servers, routing_rng)
                ].offer(request),
            )
        engine.run()
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("service.events").add(engine.processed)

        duration = engine.now
        utilizations = [server.utilization(duration) for server in servers]
        return ClusterResult(
            config=config,
            latency=collector.stats(),
            measured_requests=collector.measured,
            total_requests=num_requests,
            duration_s=duration,
            mean_utilization=sum(utilizations) / len(utilizations),
            per_server_counts=collector.per_server_counts(),
        )

    # ------------------------------------------------------------- fast engine
    def _routing_sequence(self, count: int) -> "list[int]":
        """Per-request server choices, identical to the event engine's stream.

        The event engine draws routing decisions in arrival (index) order, so
        replaying the same seeded stream up front yields the same assignment.
        """
        num_servers = self.config.num_servers
        if self.config.policy == "round_robin":
            return [index % num_servers for index in range(count)]
        if self.config.policy == "random":
            routing_rng = random.Random(self.seed + 2)
            return [routing_rng.randrange(num_servers) for _ in range(count)]
        raise ValueError(  # pragma: no cover - guarded by resolved_engine
            f"no fast-engine routing replay for policy {self.config.policy!r}"
        )

    def _run_fast(self, num_requests: int) -> ClusterResult:
        config = self.config
        arrivals, services = self._generate_request_arrays(num_requests)
        parallelism = config.parallelism

        arrival_list = arrivals.tolist()
        service_list = services.tolist()
        if config.policy in STATE_FREE_POLICIES:
            assignment = self._routing_sequence(num_requests)
            completions = fcfs_completion_times(
                arrival_list, service_list, assignment,
                config.num_servers, parallelism,
            )
        else:
            completions, assignment = balanced_completion_times(
                arrival_list, service_list, config.policy,
                config.num_servers, parallelism, random.Random(self.seed + 2),
            )

        completion_arr = np.array(completions, dtype=np.float64)
        latencies = completion_arr - arrivals
        warmup = int(num_requests * config.warmup_fraction)
        assignment_arr = np.array(assignment, dtype=np.int64)

        measured_latencies = latencies[warmup:]
        # Sample order differs from the event engine's completion order, but
        # every statistic downstream sorts or sums symmetrically.
        collector = LatencyCollector(warmup_requests=warmup)
        counts = np.bincount(assignment_arr[warmup:], minlength=config.num_servers)
        collector.record_batch(
            measured_latencies,
            {
                server: int(count)
                for server, count in enumerate(counts.tolist())
                if count > 0
            },
        )

        duration = float(completion_arr.max())
        busy = np.bincount(
            assignment_arr, weights=services, minlength=config.num_servers
        )
        utilizations = busy / (duration * parallelism) if duration > 0 else busy * 0.0
        return ClusterResult(
            config=config,
            latency=collector.stats(),
            measured_requests=collector.measured,
            total_requests=num_requests,
            duration_s=duration,
            mean_utilization=float(utilizations.mean()),
            per_server_counts=collector.per_server_counts(),
        )


def simulate_cluster(
    config: ClusterConfig,
    num_requests: int = 5_000,
    seed: int = 1,
    engine: str = "auto",
    faults: "FaultSchedule | None" = None,
) -> ClusterResult:
    """Convenience wrapper: build and run one cluster simulation."""
    return ClusterSimulation(config, seed=seed, engine=engine, faults=faults).run(
        num_requests
    )
