"""Cluster-level service simulation: arrivals -> balancer -> servers.

:class:`ClusterSimulation` wires an open-loop arrival process, a load-balancing
policy, and ``num_servers`` identical :class:`~repro.service.queueing.RequestServer`
stations onto one :class:`~repro.sim.engine.EventQueue` and runs a fixed number
of requests to completion.  Three independent seeded random streams keep the
simulation deterministic *and* comparable across configurations:

* the **arrival** stream draws interarrival gaps -- with Poisson arrivals one
  uniform per request, so two runs with equal seeds and different rates see
  proportional arrival times;
* the **service** stream attaches per-request service times at generation time,
  identical across runs regardless of load or policy;
* the **routing** stream feeds the balancer's random choices.

Because higher offered load only compresses the same arrival pattern over the
same per-request work, waiting times are monotone in load for state-free
policies -- the load-latency sweeps inherit that cleanliness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.service.arrivals import make_arrivals
from repro.service.balancer import make_balancer
from repro.service.latency import LatencyCollector, LatencyStats
from repro.service.queueing import Request, RequestServer
from repro.service.servicetime import make_service_time
from repro.sim.engine import EventQueue


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one service-cluster simulation.

    Attributes:
        num_servers: identical servers behind the load balancer.
        parallelism: service units per server (usable cores, from calibration).
        service_mean_s: mean per-request service time of one unit.
        offered_qps: open-loop arrival rate across the whole cluster.
        policy: load-balancing policy name (see ``BALANCER_POLICIES``).
        arrival: arrival process name (``"poisson"`` or ``"mmpp"``).
        service_distribution: service-time shape (``"exponential"``, ...).
        arrival_kwargs: extra arrival-process parameters (e.g. burstiness).
        service_kwargs: extra service-distribution parameters (e.g. cv).
        warmup_fraction: leading fraction of requests excluded from stats.
    """

    num_servers: int
    parallelism: int
    service_mean_s: float
    offered_qps: float
    policy: str = "jsq"
    arrival: str = "poisson"
    service_distribution: str = "exponential"
    arrival_kwargs: "dict[str, float]" = field(default_factory=dict)
    service_kwargs: "dict[str, float]" = field(default_factory=dict)
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if self.offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

    @property
    def capacity_qps(self) -> float:
        """Saturation throughput: every unit busy all the time."""
        return self.num_servers * self.parallelism / self.service_mean_s

    @property
    def utilization(self) -> float:
        """Offered load as a fraction of saturation throughput."""
        return self.offered_qps / self.capacity_qps


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster simulation."""

    config: ClusterConfig
    latency: LatencyStats
    measured_requests: int
    total_requests: int
    duration_s: float
    mean_utilization: float
    per_server_counts: "dict[int, int]"

    @property
    def achieved_qps(self) -> float:
        """Completed-request throughput over the simulated interval."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_requests / self.duration_s


class ClusterSimulation:
    """Discrete-event simulation of a load-balanced service cluster."""

    def __init__(self, config: ClusterConfig, seed: int = 1):
        self.config = config
        self.seed = seed

    def _generate_requests(self, count: int) -> "list[Request]":
        arrival_rng = random.Random(self.seed)
        service_rng = random.Random(self.seed + 1)
        process = make_arrivals(
            self.config.arrival, self.config.offered_qps, **self.config.arrival_kwargs
        )
        distribution = make_service_time(
            self.config.service_distribution,
            self.config.service_mean_s,
            **self.config.service_kwargs,
        )
        requests = []
        now = 0.0
        gaps = process.gaps(arrival_rng)
        for index in range(count):
            now += next(gaps)
            requests.append(
                Request(index=index, arrival_s=now, service_s=distribution.sample(service_rng))
            )
        return requests

    def run(self, num_requests: int = 5_000) -> ClusterResult:
        """Simulate ``num_requests`` requests to completion."""
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        config = self.config
        engine = EventQueue()
        warmup = int(num_requests * config.warmup_fraction)
        collector = LatencyCollector(warmup_requests=warmup)
        servers = [
            RequestServer(i, config.parallelism, engine, collector)
            for i in range(config.num_servers)
        ]
        balancer = make_balancer(config.policy)
        routing_rng = random.Random(self.seed + 2)

        for request in self._generate_requests(num_requests):
            engine.schedule_at(
                request.arrival_s,
                # Bind loop variable; selection happens at arrival time so
                # state-aware policies see live backlogs.
                lambda request=request: servers[
                    balancer.select(servers, routing_rng)
                ].offer(request),
            )
        engine.run()

        duration = engine.now
        utilizations = [server.utilization(duration) for server in servers]
        return ClusterResult(
            config=config,
            latency=collector.stats(),
            measured_requests=collector.measured,
            total_requests=num_requests,
            duration_s=duration,
            mean_utilization=sum(utilizations) / len(utilizations),
            per_server_counts=collector.per_server_counts(),
        )


def simulate_cluster(config: ClusterConfig, num_requests: int = 5_000, seed: int = 1) -> ClusterResult:
    """Convenience wrapper: build and run one cluster simulation."""
    return ClusterSimulation(config, seed=seed).run(num_requests)
