"""Calibrating request service rates from chip-level performance.

The queueing model is anchored to the repo's chip metrics rather than to free
parameters: a service unit is one core inside a pod's coherence domain, its
request throughput is

    ``requests/s = per-core IPC x clock frequency / instructions per request``

with the per-core IPC coming from the analytic performance model evaluated for
the (workload, pod configuration) pair, and the instructions-per-request from
the workload profile (:mod:`repro.workloads.cloudsuite`).  Software
scalability limits apply per pod: a workload that only scales to 16 cores uses
at most 16 service units in each pod regardless of the pod's size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ScaleOutChip
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class ServiceCapacity:
    """Request-serving capacity of one chip for one workload.

    Attributes:
        design: chip design name.
        workload: workload name.
        units_per_chip: parallel service units (usable cores across all pods).
        unit_rate_rps: requests per second one unit sustains.
        per_core_ipc: modeled per-core IPC backing the rate.
        instructions_per_request: dynamic instructions one request costs.
    """

    design: str
    workload: str
    units_per_chip: int
    unit_rate_rps: float
    per_core_ipc: float
    instructions_per_request: float

    @property
    def chip_rate_rps(self) -> float:
        """Saturation throughput of the whole chip (all units busy)."""
        return self.units_per_chip * self.unit_rate_rps

    @property
    def service_mean_s(self) -> float:
        """Mean service time of one request on one unit."""
        return 1.0 / self.unit_rate_rps


def calibrate_chip(
    chip: ScaleOutChip,
    workload: WorkloadProfile,
    model: "AnalyticPerformanceModel | None" = None,
) -> ServiceCapacity:
    """Derive ``workload``'s service capacity on ``chip`` from the perf model."""
    model = model or AnalyticPerformanceModel()
    estimate = model.estimate(workload, chip.pod.config())
    frequency_hz = chip.node.frequency_ghz * 1e9
    unit_rate = (
        estimate.per_core_ipc * frequency_hz / workload.instructions_per_request
    )
    units_per_pod = min(chip.pod.cores, workload.max_cores)
    return ServiceCapacity(
        design=chip.name,
        workload=workload.name,
        units_per_chip=units_per_pod * chip.num_pods,
        unit_rate_rps=unit_rate,
        per_core_ipc=estimate.per_core_ipc,
        instructions_per_request=workload.instructions_per_request,
    )
