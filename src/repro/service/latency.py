"""Latency statistics: means, percentiles, and SLA checks.

A :class:`LatencyStats` wraps one set of per-request latency samples and
reports the metrics the service experiments care about -- mean, median, p95,
p99 -- plus an SLA predicate.  Percentiles use linear interpolation between
order statistics (the same convention as ``statistics.quantiles`` with
``method="inclusive"``), so small sample sets behave sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of per-request latencies (seconds)."""

    samples: "tuple[float, ...]"

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("LatencyStats needs at least one sample")

    @cached_property
    def _ordered(self) -> "list[float]":
        # Sorted once, shared by every percentile query on this instance.
        return sorted(self.samples)

    @classmethod
    def from_iterable(cls, samples) -> "LatencyStats":
        return cls(samples=tuple(samples))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_s(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def max_s(self) -> float:
        return max(self.samples)

    def percentile(self, fraction: float) -> float:
        """Latency at the given quantile (``fraction`` in [0, 1])."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        ordered = self._ordered
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def p50_s(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_s(self) -> float:
        return self.percentile(0.95)

    @property
    def p99_s(self) -> float:
        return self.percentile(0.99)

    def meets_sla(self, p99_target_s: float) -> bool:
        """Whether the p99 latency stays within the SLA target."""
        return self.p99_s <= p99_target_s

    def summary(self, scale: float = 1e3) -> "dict[str, float]":
        """Headline metrics as a dict (milliseconds by default)."""
        return {
            "mean": self.mean_s * scale,
            "p50": self.p50_s * scale,
            "p95": self.p95_s * scale,
            "p99": self.p99_s * scale,
            "max": self.max_s * scale,
        }


@dataclass
class LatencyCollector:
    """Accumulates per-request latencies during a cluster simulation.

    Requests arriving during the warmup prefix are simulated but excluded from
    the reported statistics, so the measured window starts from a loaded (not
    empty) cluster.
    """

    warmup_requests: int = 0
    _samples: "list[float]" = field(default_factory=list)
    _per_server: "dict[int, int]" = field(default_factory=dict)

    def record(self, request_index: int, server_id: int, latency_s: float) -> None:
        """Record one completed request."""
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if request_index < self.warmup_requests:
            return
        self._samples.append(latency_s)
        self._per_server[server_id] = self._per_server.get(server_id, 0) + 1

    @property
    def measured(self) -> int:
        """Completed requests inside the measurement window."""
        return len(self._samples)

    def stats(self) -> LatencyStats:
        """Statistics over the measured (post-warmup) requests."""
        return LatencyStats.from_iterable(self._samples)

    def per_server_counts(self) -> "dict[int, int]":
        """Measured request count per server (load-balance fairness)."""
        return dict(self._per_server)
