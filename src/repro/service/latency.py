"""Latency statistics: means, percentiles, and SLA checks.

A :class:`LatencyStats` wraps one set of per-request latency samples and
reports the metrics the service experiments care about -- mean, median, p95,
p99 -- plus an SLA predicate.  Percentiles use linear interpolation between
order statistics (the same convention as ``statistics.quantiles`` with
``method="inclusive"``), so small sample sets behave sensibly.

Sample storage is numpy throughout: the collector accumulates into a
geometrically grown float64 buffer instead of a Python list, and every
statistic is a vectorized reduction over the (sorted-once) sample array.  The
public ``samples`` tuple is kept for compatibility -- tests and callers compare
result sets with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of per-request latencies (seconds).

    An empty sample set is legal -- a prioritized request class can simply
    receive no traffic in a window -- and reports every statistic as ``nan``
    (and ``meets_sla`` as ``False``) instead of raising, so fleet-level
    aggregation over classes never crashes on a starved class.
    """

    samples: "tuple[float, ...]"

    @cached_property
    def _ordered(self) -> np.ndarray:
        # Sorted once, shared by every percentile query on this instance.
        return np.sort(np.asarray(self.samples, dtype=np.float64))

    @classmethod
    def from_iterable(cls, samples) -> "LatencyStats":
        return cls(samples=tuple(samples))

    @classmethod
    def from_array(cls, samples: np.ndarray) -> "LatencyStats":
        """Build from a numpy array without an intermediate Python list."""
        stats = cls(samples=tuple(samples.tolist()))
        # The array is already at hand; seed the sort cache directly.
        stats.__dict__["_ordered"] = np.sort(samples.astype(np.float64, copy=False))
        return stats

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_s(self) -> float:
        if self._ordered.size == 0:
            return float("nan")
        return float(self._ordered.mean())

    @property
    def max_s(self) -> float:
        if self._ordered.size == 0:
            return float("nan")
        return float(self._ordered[-1])

    def percentile(self, fraction: float) -> float:
        """Latency at the given quantile (``fraction`` in [0, 1])."""
        return float(self.percentiles(np.array([fraction]))[0])

    def percentiles(self, fractions: np.ndarray) -> np.ndarray:
        """Vectorized quantile extraction (linear interpolation, one sort).

        With no samples every requested quantile is ``nan``.
        """
        fractions = np.asarray(fractions, dtype=np.float64)
        if np.any((fractions < 0.0) | (fractions > 1.0)):
            raise ValueError("fraction must be within [0, 1]")
        ordered = self._ordered
        if len(ordered) == 0:
            return np.full(fractions.shape, np.nan)
        if len(ordered) == 1:
            return np.full(fractions.shape, ordered[0])
        position = fractions * (len(ordered) - 1)
        low = position.astype(np.int64)
        high = np.minimum(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def p50_s(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_s(self) -> float:
        return self.percentile(0.95)

    @property
    def p99_s(self) -> float:
        return self.percentile(0.99)

    def meets_sla(self, p99_target_s: float) -> bool:
        """Whether the p99 latency stays within the SLA target.

        ``False`` for an empty sample set (``nan`` compares false), so a
        starved class never silently counts as SLA-compliant.
        """
        return self.p99_s <= p99_target_s

    def summary(self, scale: float = 1e3) -> "dict[str, float]":
        """Headline metrics as a dict (milliseconds by default)."""
        p50, p95, p99 = self.percentiles(np.array([0.50, 0.95, 0.99])) * scale
        return {
            "mean": self.mean_s * scale,
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": self.max_s * scale,
        }


class LatencyCollector:
    """Accumulates per-request latencies during a cluster simulation.

    Requests arriving during the warmup prefix are simulated but excluded from
    the reported statistics, so the measured window starts from a loaded (not
    empty) cluster.  Samples land in a preallocated numpy buffer that grows
    geometrically (amortized O(1) per record).
    """

    def __init__(self, warmup_requests: int = 0):
        self.warmup_requests = warmup_requests
        self._buffer = np.empty(1024, dtype=np.float64)
        self._count = 0
        self._per_server: "dict[int, int]" = {}

    def record(self, request_index: int, server_id: int, latency_s: float) -> None:
        """Record one completed request."""
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if request_index < self.warmup_requests:
            return
        if self._count == len(self._buffer):
            self._buffer = np.concatenate(
                [self._buffer, np.empty(len(self._buffer), dtype=np.float64)]
            )
        self._buffer[self._count] = latency_s
        self._count += 1
        self._per_server[server_id] = self._per_server.get(server_id, 0) + 1

    def record_batch(
        self, latencies: np.ndarray, per_server: "dict[int, int]"
    ) -> None:
        """Bulk-record already-filtered (post-warmup) samples."""
        needed = self._count + len(latencies)
        if needed > len(self._buffer):
            self._buffer = np.concatenate(
                [self._buffer[: self._count], np.asarray(latencies, dtype=np.float64)]
            )
        else:
            self._buffer[self._count : needed] = latencies
        self._count = needed
        for server_id, count in per_server.items():
            self._per_server[server_id] = self._per_server.get(server_id, 0) + count

    @property
    def measured(self) -> int:
        """Completed requests inside the measurement window."""
        return self._count

    def stats(self) -> LatencyStats:
        """Statistics over the measured (post-warmup) requests."""
        return LatencyStats.from_array(self._buffer[: self._count].copy())

    def per_server_counts(self) -> "dict[int, int]":
        """Measured request count per server (load-balance fairness)."""
        return dict(self._per_server)
