"""Per-request service-time distributions.

The time one service unit (a core, or a pod acting as one coherence domain)
spends on a request.  The mean comes from the chip calibration
(:mod:`repro.service.calibration`); the distribution shape controls how heavy
the latency tail is before any queueing happens:

* :class:`DeterministicService` -- every request costs exactly the mean
  (M/D/k behaviour, the mildest tail);
* :class:`ExponentialService` -- memoryless service (M/M/k, the analytic
  reference the sizing layer uses);
* :class:`LogNormalService` -- right-skewed service times, the empirically
  observed shape for request service in interactive datacenter services.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeterministicService:
    """Constant service time."""

    mean_s: float

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ValueError("mean_s must be positive")

    def sample(self, rng: random.Random) -> float:
        return self.mean_s

    def sample_batch(self, rng: random.Random, count: int) -> np.ndarray:
        """``count`` samples as one array (no random draws needed)."""
        return np.full(count, self.mean_s, dtype=np.float64)


@dataclass(frozen=True)
class ExponentialService:
    """Exponentially distributed service time (rate ``1 / mean_s``)."""

    mean_s: float

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ValueError("mean_s must be positive")

    def sample(self, rng: random.Random) -> float:
        return -math.log(1.0 - rng.random()) * self.mean_s

    def sample_batch(self, rng: random.Random, count: int) -> np.ndarray:
        """``count`` samples, one uniform each, with a vectorized transform."""
        uniforms = np.array([rng.random() for _ in range(count)], dtype=np.float64)
        return -np.log1p(-uniforms) * self.mean_s


@dataclass(frozen=True)
class LogNormalService:
    """Log-normal service time with the given mean and coefficient of variation.

    Attributes:
        mean_s: mean service time in seconds.
        cv: coefficient of variation (std / mean); 1.0 matches the exponential
            distribution's variability with a heavier far tail.
    """

    mean_s: float
    cv: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ValueError("mean_s must be positive")
        if self.cv <= 0:
            raise ValueError("cv must be positive")

    def sample(self, rng: random.Random) -> float:
        sigma2 = math.log(1.0 + self.cv * self.cv)
        mu = math.log(self.mean_s) - 0.5 * sigma2
        return rng.lognormvariate(mu, math.sqrt(sigma2))

    def sample_batch(self, rng: random.Random, count: int) -> np.ndarray:
        """``count`` samples; the stdlib lognormal draw stays per-sample."""
        return np.fromiter(
            (self.sample(rng) for _ in range(count)), dtype=np.float64, count=count
        )


#: Service-time factories keyed by the names the experiments/CLI use.
SERVICE_DISTRIBUTIONS = {
    "deterministic": DeterministicService,
    "exponential": ExponentialService,
    "lognormal": LogNormalService,
}


def make_service_time(
    name: str, mean_s: float, **kwargs
) -> "DeterministicService | ExponentialService | LogNormalService":
    """Build a named service-time distribution with the given mean."""
    try:
        factory = SERVICE_DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown service distribution {name!r}; known: {sorted(SERVICE_DISTRIBUTIONS)}"
        ) from None
    return factory(mean_s, **kwargs)
