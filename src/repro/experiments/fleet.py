"""Fleet studies: geo-routing, diurnal load, and autoscaling economics.

Four beyond-the-paper studies (catalog chapter 10) lift the Chapter 5 server
designs from one cluster to a multi-datacenter fleet:

* :func:`fleet_diurnal_day` -- a compressed diurnal day across three
  datacenters: per-epoch load, deployed capacity, and tail latency;
* :func:`fleet_autoscale_policies` -- static peak provisioning versus
  reactive autoscaling (target-utilization and queue-depth triggers), graded
  on monthly TCO against per-class SLA attainment;
* :func:`fleet_geo_routing` -- nearest / latency-weighted / spillover
  routing under geographically skewed demand;
* :func:`fleet_class_priorities` -- the prioritized request mix: interactive
  versus batch tail latency under spillover routing.

Every datacenter runs servers calibrated from the paper's Scale-Out (OoO)
chip (same convention as the chapter-7 service studies), so fleet capacities
inherit the analytic performance model.  Fleet days run on the vectorized
fast kernels; ``engine="event"`` reproduces any row bit-identically (the
contract ``tests/test_fleet_equivalence.py`` enforces).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.fleet.engine import FleetConfig, FleetSimulation
from repro.fleet.geo import Datacenter, Region
from repro.fleet.loadshape import DIURNAL_24, LoadShape
from repro.fleet.metrics import MONTH_HOURS, LatencyHistogram
from repro.runtime.executor import SweepExecutor
from repro.workloads.suite import WorkloadSuite, default_suite

from repro.experiments.service import _server_capacity

#: The default fleet layout: (name, x, y) site coordinates in abstract
#: geography units (one unit is ~4 ms of one-way network latency) and the
#: share of fleet demand used to provision each site.
FLEET_LAYOUT = (
    ("us-east", 0.0, 0.0, 0.40),
    ("eu-west", 1.5, 0.4, 0.35),
    ("ap-south", 3.0, -0.5, 0.25),
)

#: Provisioning setpoint: sites are sized so the day's *peak* epoch lands at
#: this utilization when demand follows the provisioning weights.
PROVISION_UTILIZATION = 0.55

#: Service units per simulated fleet server.  The catalog studies simulate a
#: *scale replica* of each site: a fleet "server" is a 4-unit slice of the
#: 96-unit calibrated Scale-Out box, which preserves per-request service
#: times and utilization trajectories while keeping the default day's request
#: count small enough for the report-regeneration path.  Pass the calibrated
#: parallelism (96) for full-size servers.
REPLICA_UNITS_PER_SERVER = 4


def _build_fleet(
    design: str,
    workload: str,
    suite: WorkloadSuite,
    offered_qps: float,
    peak_multiplier: float,
    policy: str,
    units_per_server: int = REPLICA_UNITS_PER_SERVER,
    layout: "tuple[tuple[str, float, float, float], ...]" = FLEET_LAYOUT,
) -> "tuple[Datacenter, ...]":
    """Datacenters provisioned for the day's peak at the setpoint utilization.

    Per-request service times come from the chapter-5 chip calibration, so
    the fleet inherits the paper's server designs; ``units_per_server``
    picks the replica scale (see :data:`REPLICA_UNITS_PER_SERVER`).
    """
    capacity, _ = _server_capacity(design, workload, suite)
    per_server_qps = units_per_server / capacity.service_mean_s
    datacenters = []
    for name, x, y, weight in layout:
        peak_qps = offered_qps * peak_multiplier * weight
        servers = max(1, math.ceil(peak_qps / (PROVISION_UTILIZATION * per_server_qps)))
        datacenters.append(
            Datacenter(
                name=name,
                region=Region(name, x, y),
                num_servers=servers,
                parallelism=units_per_server,
                service_mean_s=capacity.service_mean_s,
                policy=policy,
                # A site's building/power envelope: autoscalers can burst to
                # at most twice the peak-provisioned footprint.
                max_servers=2 * servers,
            )
        )
    return tuple(datacenters)


def _day_shape(epoch_s: float) -> LoadShape:
    """The 24-epoch diurnal shape compressed to ``epoch_s``-wide epochs."""
    return LoadShape(DIURNAL_24.multipliers, epoch_s=epoch_s)


def fleet_diurnal_day(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    offered_qps: float = 9_000.0,
    epoch_s: float = 2.0,
    policy: str = "jsq",
    routing: str = "nearest",
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    engine: str = "auto",
) -> "list[dict[str, object]]":
    """One compressed diurnal day: per-(epoch, datacenter) load and latency.

    The 24-hour shape is compressed to ``epoch_s``-wide epochs (the default
    2 s keeps the catalog run cheap); rates scale with real time, so the
    utilization trajectory -- and the peak-vs-trough tail-latency spread the
    chapter-10 claims grade -- is the full day's.  Each epoch emits one row
    per datacenter plus a ``datacenter="fleet"`` aggregate row.
    """
    suite = suite or default_suite()
    shape = _day_shape(epoch_s)
    datacenters = _build_fleet(
        design, workload, suite, offered_qps, shape.multiplier(shape.peak_epoch),
        policy,
    )
    config = FleetConfig(
        datacenters=datacenters,
        offered_qps=offered_qps,
        routing=routing,
        load_shape=shape,
    )
    result = FleetSimulation(config, seed=seed, engine=engine).run()
    parallelism = {dc.name: dc.parallelism for dc in datacenters}
    rows: "list[dict[str, object]]" = []
    for epoch in range(config.epochs):
        cells = result.epoch_stats[
            epoch * len(datacenters) : (epoch + 1) * len(datacenters)
        ]
        fleet_hist = LatencyHistogram()
        for stats in cells:
            summary = stats.histogram.summary_ms()
            rows.append(
                {
                    "epoch": epoch,
                    "datacenter": stats.datacenter,
                    "multiplier": round(shape.multiplier(epoch), 4),
                    "servers": stats.servers,
                    "offered_qps": round(stats.offered_qps, 1),
                    "requests": stats.requests,
                    "utilization": round(
                        stats.utilization(parallelism[stats.datacenter], epoch_s), 4
                    ),
                    "mean_ms": round(summary["mean"], 3),
                    "p99_ms": round(summary["p99"], 3),
                }
            )
            fleet_hist.merge(stats.histogram)
        fleet_summary = fleet_hist.summary_ms()
        deployed = sum(
            stats.servers * parallelism[stats.datacenter] * epoch_s for stats in cells
        )
        rows.append(
            {
                "epoch": epoch,
                "datacenter": "fleet",
                "multiplier": round(shape.multiplier(epoch), 4),
                "servers": sum(stats.servers for stats in cells),
                "offered_qps": round(sum(stats.offered_qps for stats in cells), 1),
                "requests": sum(stats.requests for stats in cells),
                "utilization": round(
                    sum(stats.busy_s for stats in cells) / deployed, 4
                ),
                "mean_ms": round(fleet_summary["mean"], 3),
                "p99_ms": round(fleet_summary["p99"], 3),
            }
        )
    return rows


def _autoscale_point(
    autoscale: "str | None",
    datacenters: "tuple[Datacenter, ...]",
    offered_qps: float,
    epoch_s: float,
    seed: int,
    engine: str,
) -> "dict[str, object]":
    """One autoscaling policy's full fleet day (module-level: picklable)."""
    config = FleetConfig(
        datacenters=datacenters,
        offered_qps=offered_qps,
        load_shape=_day_shape(epoch_s),
        autoscale=autoscale,
    )
    result = FleetSimulation(config, seed=seed, engine=engine).run()
    day_hours = config.epochs * epoch_s / 3600.0
    attainment = result.sla_attainment(config.classes)
    interactive = result.class_histograms["interactive"].summary_ms()
    return {
        "autoscale": autoscale or "static",
        "server_hours": round(sum(result.server_hours.values()), 4),
        "peak_servers": max(stats.servers for stats in result.epoch_stats),
        "monthly_cost_usd": round(
            result.monthly_cost_usd(datacenters, day_hours), 2
        ),
        "p99_ms": round(interactive["p99"], 3),
        "sla_interactive": round(float(attainment["interactive"]), 4),
        "sla_batch": round(float(attainment["batch"]), 4),
        "scale_events": sum(result.scale_events.values()),
        "requests": result.total_requests,
    }


def fleet_autoscale_policies(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    policies: "Sequence[str]" = ("static", "target_utilization", "queue_depth"),
    offered_qps: float = 9_000.0,
    epoch_s: float = 2.0,
    policy: str = "jsq",
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
    engine: str = "auto",
) -> "list[dict[str, object]]":
    """Autoscaling policies head-to-head over the same diurnal day.

    Every policy starts from the same peak-provisioned fleet (the ``static``
    baseline simply keeps it deployed all day), so the monthly-TCO column
    isolates what reactive scaling saves -- and the SLA columns what it
    costs.  ``monthly_cost_usd`` projects the simulated day to the standard
    730-hour month of identical days.
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    shape = _day_shape(epoch_s)
    datacenters = _build_fleet(
        design, workload, suite, offered_qps, shape.multiplier(shape.peak_epoch),
        policy,
    )
    points = [
        (
            None if name == "static" else name,
            datacenters,
            offered_qps,
            epoch_s,
            seed,
            engine,
        )
        for name in policies
    ]
    return executor.map(_autoscale_point, points)


def _routing_point(
    routing: str,
    datacenters: "tuple[Datacenter, ...]",
    offered_qps: float,
    origin_weights: "tuple[float, ...]",
    epoch_s: float,
    seed: int,
    engine: str,
) -> "dict[str, object]":
    """One geo-routing policy's fleet day (module-level: picklable)."""
    config = FleetConfig(
        datacenters=datacenters,
        offered_qps=offered_qps,
        routing=routing,
        load_shape=_day_shape(epoch_s),
        origin_weights=origin_weights,
    )
    result = FleetSimulation(config, seed=seed, engine=engine).run()
    fleet_hist = LatencyHistogram()
    for histogram in result.datacenter_histograms.values():
        fleet_hist.merge(histogram)
    summary = fleet_hist.summary_ms()
    utilization = result.datacenter_utilization(datacenters, epoch_s)
    return {
        "routing": routing,
        "mean_ms": round(summary["mean"], 3),
        "p99_ms": round(summary["p99"], 3),
        "network_ms_mean": round(result.network_mean_ms, 3),
        "max_utilization": round(max(utilization.values()), 4),
        "requests": result.total_requests,
    }


def fleet_geo_routing(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    routings: "Sequence[str]" = ("nearest", "latency_weighted", "spillover"),
    offered_qps: float = 9_000.0,
    origin_weights: "tuple[float, ...]" = (0.70, 0.20, 0.10),
    epoch_s: float = 2.0,
    policy: str = "jsq",
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
    engine: str = "auto",
) -> "list[dict[str, object]]":
    """Geo-routing policies under geographically skewed demand.

    The fleet is provisioned for the balanced layout weights but 70% of the
    demand originates near ``us-east``, so ``nearest`` overloads the close-by
    site while ``spillover`` sheds the excess to the next-nearest capacity --
    the load-vs-locality trade the chapter-10 claims grade (lowest network
    latency for ``nearest``, lowest hot-spot utilization for ``spillover``).
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    shape = _day_shape(epoch_s)
    datacenters = _build_fleet(
        design, workload, suite, offered_qps, shape.multiplier(shape.peak_epoch),
        policy,
    )
    points = [
        (routing, datacenters, offered_qps, origin_weights, epoch_s, seed, engine)
        for routing in routings
    ]
    return executor.map(_routing_point, points)


def fleet_class_priorities(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    offered_qps: float = 9_000.0,
    epoch_s: float = 2.0,
    policy: str = "jsq",
    routing: str = "spillover",
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    engine: str = "auto",
) -> "list[dict[str, object]]":
    """Per-class day-level latency under the prioritized default mix.

    Interactive traffic (priority 0, unit work) claims close-by capacity
    before the 4x-heavier batch class under ``spillover``; one row per class
    reports its volume, tail latency, and attainment against its own SLA.
    """
    suite = suite or default_suite()
    shape = _day_shape(epoch_s)
    datacenters = _build_fleet(
        design, workload, suite, offered_qps, shape.multiplier(shape.peak_epoch),
        policy,
    )
    config = FleetConfig(
        datacenters=datacenters,
        offered_qps=offered_qps,
        routing=routing,
        load_shape=shape,
    )
    result = FleetSimulation(config, seed=seed, engine=engine).run()
    attainment = result.sla_attainment(config.classes)
    rows = []
    for cls in config.classes:
        summary = result.class_histograms[cls.name].summary_ms()
        rows.append(
            {
                "request_class": cls.name,
                "priority": cls.priority,
                "service_scale": cls.service_scale,
                "requests": result.class_histograms[cls.name].count,
                "mean_ms": round(summary["mean"], 3),
                "p99_ms": round(summary["p99"], 3),
                "sla_target_ms": cls.sla_p99_ms,
                "sla_attainment": round(float(attainment[cls.name]), 4),
            }
        )
    return rows
