"""Chapter 11 studies: the technology-node family from 90 nm to 7 nm.

The paper evaluates its designs at two full nodes (40 nm, 20 nm); these
studies re-ask its questions across the whole derived family of
:mod:`repro.technology.family` -- ChipSuite-style, one set of rows per node:

* :func:`node_family_table` -- the derived family itself: per-node scaling
  factors, Vdd, memory standard, wire figures, SRAM density/latency, and the
  extrapolation flags from each node's provenance record.
* :func:`node_design_scaling` -- the paper's flagship designs (Conventional,
  Scale-Out OoO/in-order) re-sized at every node under the fixed 280 mm^2 /
  95 W socket; nodes where a design cannot fit the budgets at any size are
  reported ``feasible=False`` instead of silently dropped.
* :func:`node_pod_selection` -- the Chapter 3 pod-selection methodology run
  per (node, core family): the PD-optimal pod's core count, LLC capacity,
  and performance density as technology shrinks.
* :func:`node_sram_scaling` -- the CACTI stand-in swept across capacity and
  node: area, latency, energy, and power of LLC banks at each extreme.

Every function accepts ``nodes`` (names, feature sizes, or node objects;
default: the whole family) so ``repro run --node`` and sweeps can restrict
the family, and returns JSON-able rows for the runtime envelope.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.designs import (
    build_conventional,
    build_scale_out,
    build_single_pod,
)
from repro.core.methodology import ScaleOutDesignMethodology
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.runtime.executor import SERIAL_EXECUTOR, SweepExecutor
from repro.tco.datacenter import DatacenterDesign
from repro.technology.cacti import SramModel
from repro.technology.family import DEFAULT_FAMILY
from repro.technology.node import TechnologyNode, coerce_node
from repro.workloads.suite import WorkloadSuite, default_suite

#: Node keys accepted anywhere a study takes a ``nodes`` sequence.
NodeKey = "TechnologyNode | str | int"


def _resolve_nodes(nodes: "Sequence[NodeKey] | None") -> "list[TechnologyNode]":
    """Normalize a ``nodes`` argument (default: the whole family, oldest first)."""
    if nodes is None:
        return DEFAULT_FAMILY.nodes()
    return [coerce_node(node) for node in nodes]


def node_family_table(
    nodes: "Sequence[NodeKey] | None" = None,
) -> "list[dict[str, object]]":
    """The derived node family: scaling factors, derived figures, provenance flags.

    One row per node, oldest first: the dataclass fields every other study
    consumes (area/power/analog scales, Vdd, memory standard, wire figures)
    plus the derived SRAM density and latency and the names of any scaling
    rules that had to extrapolate to produce the node.
    """
    rows = []
    for node in _resolve_nodes(nodes):
        provenance = DEFAULT_FAMILY.provenance(node)
        derived = provenance["derived"]
        rows.append(
            {
                "node": node.name,
                "feature_nm": node.feature_nm,
                "vdd": node.vdd,
                "logic_area_scale": node.logic_area_scale,
                "logic_power_scale": round(node.logic_power_scale, 6),
                "analog_area_scale": node.analog_area_scale,
                "memory_standard": node.memory_standard,
                "wire_delay_ps_per_mm": node.wire_delay_ps_per_mm,
                "wire_energy_fj_per_bit_mm": node.wire_energy_fj_per_bit_mm,
                "sram_area_mm2_per_mb": derived["sram_area_mm2_per_mb"],
                "sram_1mb_latency_cycles": derived["sram_1mb_latency_cycles"],
                "calibrated": provenance["calibrated"],
                "extrapolated_rules": ",".join(provenance["extrapolated_rules"]),
            }
        )
    return rows


#: Whole-die designs re-sized per node by :func:`node_design_scaling`.
_SCALING_DESIGNS = (
    ("Conventional", build_conventional, ()),
    ("Scale-Out (OoO)", build_scale_out, ("ooo",)),
    ("Scale-Out (In-order)", build_scale_out, ("inorder",)),
    ("1Pod (OoO)", build_single_pod, ("ooo",)),
)


def node_design_scaling(
    nodes: "Sequence[NodeKey] | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """The paper's flagship designs re-sized at every family node.

    Each (node, design) row reports the sized chip's cores, die area, power,
    performance, and the efficiency metrics the paper ranks designs by
    (performance density, performance per watt, performance per TCO).  At old
    nodes the fixed 280 mm^2 / 95 W socket cannot hold some designs at any
    core count (a 90 nm conventional core alone is ~23 mm^2 and 9x power);
    those rows carry ``feasible=False`` and the sizing error instead of
    metrics, so cross-node comparisons never silently skip a node.
    """
    suite = suite or default_suite()
    model = AnalyticPerformanceModel()
    rows = []
    for node in _resolve_nodes(nodes):
        datacenter = DatacenterDesign(model=model, suite=suite)
        for name, builder, extra in _SCALING_DESIGNS:
            row: "dict[str, object]" = {
                "node": node.name,
                "design": name,
                "calibrated": not DEFAULT_FAMILY.is_extrapolated(node),
            }
            try:
                chip = builder(*extra, node=node, model=model, suite=suite)
            except ValueError as error:
                row.update(
                    feasible=False,
                    fits_budgets=False,
                    reason=str(error),
                    cores=0,
                    die_area_mm2=None,
                    power_w=None,
                    performance=None,
                    performance_density=None,
                    performance_per_watt=None,
                    performance_per_tco=None,
                )
                rows.append(row)
                continue
            performance = chip.performance(model, suite)
            dc_result = datacenter.evaluate(chip)
            row.update(
                feasible=True,
                # The pod-based builders fall back to a one-pod chip even when
                # it busts the socket (compose_chip's contract); record fit
                # separately so cross-node claims can filter on it.
                fits_budgets=chip.satisfies(node.constraints),
                reason="",
                cores=chip.total_cores,
                die_area_mm2=round(chip.die_area_mm2, 2),
                power_w=round(chip.power_w, 2),
                performance=round(performance, 4),
                performance_density=round(performance / chip.die_area_mm2, 6),
                performance_per_watt=round(performance / chip.power_w, 6),
                performance_per_tco=round(dc_result.performance_per_tco, 6),
            )
            rows.append(row)
    return rows


def _pod_selection_point(node_name: str, core_type: str) -> "dict[str, object]":
    """One (node, core family) pod selection (module-level: picklable)."""
    node = coerce_node(node_name)
    methodology = ScaleOutDesignMethodology(node=node)
    point = methodology.pd_optimal_pod(core_type=core_type)
    return {
        "node": node.name,
        "core_type": core_type,
        "pod_cores": point.pod.cores,
        "pod_llc_mb": point.pod.llc_capacity_mb,
        "pod_performance": round(point.performance, 4),
        "performance_density": round(point.performance_density, 4),
        "calibrated": not DEFAULT_FAMILY.is_extrapolated(node),
    }


def node_pod_selection(
    nodes: "Sequence[NodeKey] | None" = None,
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """The PD-optimal pod per (node, core family), Chapter 3's methodology per node.

    The selection itself is node-local, so points fan out through the
    ``executor`` (serial and parallel runs produce identical rows).
    """
    executor = executor or SERIAL_EXECUTOR
    points = [
        (node.name, core_type)
        for node in _resolve_nodes(nodes)
        for core_type in core_types
    ]
    return executor.map(_pod_selection_point, points)


def node_sram_scaling(
    nodes: "Sequence[NodeKey] | None" = None,
    capacities_mb: "Sequence[float]" = (1.0, 2.0, 4.0, 8.0, 16.0),
) -> "list[dict[str, object]]":
    """LLC bank estimates across capacity and node (the CACTI stand-in swept).

    One row per (node, capacity): bank area, access latency, energy per
    access, and total power.  Area shrinks with the node's quadratic law
    while latency in cycles stays nearly flat (smaller banks, relatively
    slower wires) -- the first-order CACTI behaviour the paper relies on.
    """
    rows = []
    for node in _resolve_nodes(nodes):
        model = SramModel(node)
        for capacity in capacities_mb:
            estimate = model.estimate(capacity)
            rows.append(
                {
                    "node": node.name,
                    "capacity_mb": capacity,
                    "area_mm2": round(estimate.area_mm2, 4),
                    "access_latency_cycles": estimate.access_latency_cycles,
                    "dynamic_energy_nj": round(estimate.dynamic_energy_nj, 4),
                    "power_w": round(estimate.leakage_w, 4),
                }
            )
    return rows
