"""Chapter 2 experiments: workload characterization and the design-space case.

Covers Figure 2.1 (application IPC on an aggressive core), Figure 2.2 (LLC
capacity sensitivity), Figure 2.3 (core-count scaling under ideal and realistic
interconnects), Table 2.1 (component area/power), and Tables 2.3 / 2.4 (the
processor design comparison at 40nm and 20nm).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.comparison import compare_designs
from repro.core.designs import standard_designs
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.runtime.executor import SERIAL_EXECUTOR, SweepExecutor
from repro.technology.components import ComponentCatalog
from repro.technology.node import NODE_20NM, NODE_40NM, TechnologyNode, coerce_node
from repro.workloads.suite import WorkloadSuite, default_suite


def _per_core_ipc_point(
    model: AnalyticPerformanceModel,
    suite: WorkloadSuite,
    llc_mb: float,
    interconnect: str,
    cores: int,
) -> float:
    config = SystemConfig(
        cores=cores, core_type="ooo", llc_capacity_mb=llc_mb, interconnect=interconnect
    )
    return model.average_per_core_ipc(config, suite)


def figure_2_1_application_ipc(
    suite: "WorkloadSuite | None" = None,
    model: "AnalyticPerformanceModel | None" = None,
) -> "list[dict[str, object]]":
    """Application IPC of each workload on an aggressive 4-wide OoO core."""
    suite = suite or default_suite()
    model = model or AnalyticPerformanceModel()
    config = SystemConfig(cores=4, core_type="conventional", llc_capacity_mb=4, interconnect="ideal")
    rows = []
    for workload in suite:
        estimate = model.estimate(workload, config)
        rows.append({"workload": workload.name, "application_ipc": round(estimate.per_core_ipc, 2)})
    return rows


def figure_2_2_llc_sensitivity(
    llc_sizes_mb: Sequence[float] = (1, 2, 4, 8, 16, 32),
    cores: int = 4,
    suite: "WorkloadSuite | None" = None,
    model: "AnalyticPerformanceModel | None" = None,
) -> "list[dict[str, object]]":
    """Performance versus LLC size for 4-core systems, normalized to 1 MB."""
    suite = suite or default_suite()
    model = model or AnalyticPerformanceModel()
    rows = []
    for workload in suite:
        base = model.estimate(
            workload, SystemConfig(cores=cores, core_type="ooo", llc_capacity_mb=llc_sizes_mb[0], interconnect="crossbar")
        ).aggregate_ipc
        row: "dict[str, object]" = {"workload": workload.name}
        for llc in llc_sizes_mb:
            est = model.estimate(
                workload, SystemConfig(cores=cores, core_type="ooo", llc_capacity_mb=llc, interconnect="crossbar")
            )
            row[f"{llc:g}MB"] = round(est.aggregate_ipc / base, 3)
        rows.append(row)
    return rows


def figure_2_3_core_scaling(
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    llc_mb: float = 4.0,
    suite: "WorkloadSuite | None" = None,
    model: "AnalyticPerformanceModel | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Per-core and aggregate performance versus core count, ideal versus mesh."""
    suite = suite or default_suite()
    model = model or AnalyticPerformanceModel()
    executor = executor or SERIAL_EXECUTOR
    interconnects = ("ideal", "mesh")
    baselines: "dict[str, float]" = {}
    for interconnect in interconnects:
        baselines[interconnect] = _per_core_ipc_point(model, suite, llc_mb, interconnect, 1)
    per_core_ipcs = executor.map(
        _per_core_ipc_point,
        [
            (model, suite, llc_mb, interconnect, cores)
            for cores in core_counts
            for interconnect in interconnects
        ],
    )
    rows = []
    ipc_iter = iter(per_core_ipcs)
    for cores in core_counts:
        row: "dict[str, object]" = {"cores": cores}
        for interconnect in interconnects:
            per_core = next(ipc_iter)
            row[f"{interconnect}_per_core"] = round(per_core / baselines[interconnect], 3)
            row[f"{interconnect}_aggregate"] = round(per_core * cores / baselines[interconnect], 1)
        rows.append(row)
    return rows


def table_2_1_components(node: "TechnologyNode | str | int" = NODE_40NM) -> "list[dict[str, object]]":
    """Component area and power estimates (Table 2.1)."""
    catalog = ComponentCatalog(coerce_node(node))
    rows = []
    for spec in (
        catalog.conventional_core,
        catalog.ooo_core,
        catalog.inorder_core,
        catalog.llc_per_mb,
        catalog.memory_interface,
        catalog.soc_misc,
    ):
        rows.append(
            {
                "component": spec.name,
                "area_mm2": round(spec.area_mm2, 2),
                "power_w": round(spec.power_w, 2),
            }
        )
    return rows


def table_2_3_designs_40nm(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Design comparison at 40nm (conventional, tiled, LLC-optimal, IR, ideal)."""
    suite = suite or default_suite()
    model = AnalyticPerformanceModel()
    designs = standard_designs(NODE_40NM, model, suite, include_scale_out=False)
    return compare_designs(designs, model, suite).as_dicts()


def table_2_4_designs_20nm(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Design comparison projected to 20nm."""
    suite = suite or default_suite()
    model = AnalyticPerformanceModel()
    designs = standard_designs(NODE_20NM, model, suite, include_scale_out=False)
    return compare_designs(designs, model, suite).as_dicts()
