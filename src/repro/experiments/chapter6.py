"""Chapter 6 experiments: 3D Scale-Out Processors.

Covers Table 6.1 (3D component budgets), Figures 6.4 / 6.6 (3D performance
density sweeps for OoO and in-order cores), Figures 6.5 / 6.7 (fixed-pod versus
fixed-distance strategies), and Table 6.2 (2D versus 3D Scale-Out Processor
specifications).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.methodology import ScaleOutDesignMethodology
from repro.core.pod import Pod
from repro.runtime.executor import SERIAL_EXECUTOR, SweepExecutor
from repro.technology.components import ComponentCatalog
from repro.technology.node import NODE_40NM, TechnologyNode, coerce_node
from repro.three_d.designer import ThreeDDesignStudy
from repro.workloads.suite import WorkloadSuite, default_suite


def _pd3d_chunk(
    study: ThreeDDesignStudy,
    core_type: str,
    core_counts: "tuple[int, ...]",
    llc_mb: float,
    dies: int,
) -> "list":
    return study.sweep(
        core_type=core_type,
        core_counts=core_counts,
        llc_sizes_mb=(llc_mb,),
        num_dies=dies,
    )


def table_6_1_components(node: "TechnologyNode | str | int" = NODE_40NM) -> "list[dict[str, object]]":
    """Component area/power for the 3D study (DDR4 interfaces)."""
    catalog = ComponentCatalog(coerce_node(node))
    rows = []
    for spec in (catalog.ooo_core, catalog.inorder_core, catalog.llc_per_mb, catalog.memory_interface):
        rows.append(
            {"component": spec.name, "area_mm2": round(spec.area_mm2, 2), "power_w": round(spec.power_w, 2)}
        )
    return rows


def figure_6_4_pd3d_ooo(
    die_counts: Sequence[int] = (1, 2, 4),
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """3D performance density sweep for OoO pods."""
    return _pd3d_sweep("ooo", die_counts, suite, executor)


def figure_6_6_pd3d_inorder(
    die_counts: Sequence[int] = (1, 2, 4),
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """3D performance density sweep for in-order pods."""
    return _pd3d_sweep("inorder", die_counts, suite, executor)


def _pd3d_sweep(
    core_type: str,
    die_counts: Sequence[int],
    suite: "WorkloadSuite | None",
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    study = ThreeDDesignStudy(suite=suite)
    executor = executor or SERIAL_EXECUTOR
    core_counts = (4, 8, 16, 32, 64, 128)
    llc_sizes_mb = (2.0, 4.0, 8.0, 16.0, 32.0)
    # Matches the serial iteration order: dies outer, LLC size middle, cores
    # inner (each chunk evaluates one (dies, llc) pair across all core counts).
    chunks = executor.map(
        _pd3d_chunk,
        [
            (study, core_type, core_counts, llc_mb, dies)
            for dies in die_counts
            for llc_mb in llc_sizes_mb
        ],
    )
    rows = []
    for (dies, _), chunk in zip(
        ((dies, llc) for dies in die_counts for llc in llc_sizes_mb), chunks
    ):
        for point in chunk:
            rows.append(
                {
                    "dies": dies,
                    "cores": point.stacked_pod.cores,
                    "llc_mb": point.stacked_pod.llc_capacity_mb,
                    "performance_density": round(point.performance_density, 4),
                }
            )
    return rows


def figure_6_5_strategies_ooo(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Fixed-pod versus fixed-distance for OoO pods (1, 2, 4 dies)."""
    return _strategies("ooo", (1, 2, 4), suite)


def figure_6_7_strategies_inorder(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Fixed-pod versus fixed-distance for in-order pods (1, 2, 3 dies)."""
    return _strategies("inorder", (1, 2, 3), suite)


def _strategies(
    core_type: str, die_counts: Sequence[int], suite: "WorkloadSuite | None"
) -> "list[dict[str, object]]":
    suite = suite or default_suite()
    study = ThreeDDesignStudy(suite=suite)
    methodology = ScaleOutDesignMethodology(suite=suite)
    base_pod = methodology.pd_optimal_pod(core_type=core_type).pod
    rows = []
    for point in study.compare_strategies(base_pod, die_counts):
        rows.append(
            {
                "configuration": point.label,
                "dies": point.stacked_pod.num_dies,
                "strategy": point.stacked_pod.strategy.value,
                "cores": point.stacked_pod.cores,
                "llc_mb": point.stacked_pod.llc_capacity_mb,
                "performance_density": round(point.performance_density, 4),
            }
        )
    return rows


def table_6_2_specifications(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """2D versus 3D Scale-Out Processor specifications for both core types."""
    suite = suite or default_suite()
    study = ThreeDDesignStudy(suite=suite)
    rows = []
    rows.extend(study.specification_table(core_type="ooo", die_counts=(1, 2, 4)))
    rows.extend(study.specification_table(core_type="inorder", die_counts=(1, 2, 3)))
    return rows
