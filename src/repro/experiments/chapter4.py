"""Chapter 4 experiments: the NOC-Out pod microarchitecture.

Covers Figure 4.3 (snoop fractions), Figure 4.6 (system performance of mesh,
flattened butterfly, and NOC-Out), Figure 4.7 (NoC area breakdown), and Figure
4.8 (performance under a fixed NoC area budget).  The simulation-driven sweeps
fan their independent points out over a :class:`~repro.runtime.SweepExecutor`.
"""

from __future__ import annotations

import statistics
from typing import Sequence

from repro.noc.simulation import PodNocStudy
from repro.perfmodel.analytic import SystemConfig
from repro.runtime.executor import SweepExecutor
from repro.sim.stats import SimulationStats
from repro.sim.system import simulate_system
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite, default_suite


def _snoop_point(
    workload: WorkloadProfile,
    cores: int,
    llc_mb: float,
    instructions_per_core: int,
    seed: int,
) -> SimulationStats:
    config = SystemConfig(
        cores=cores, core_type="ooo", llc_capacity_mb=llc_mb, interconnect="crossbar"
    )
    return simulate_system(
        workload, config, instructions_per_core=instructions_per_core, seed=seed
    )


def figure_4_3_snoop_fraction(
    cores: int = 16,
    llc_mb: float = 8.0,
    instructions_per_core: int = 6_000,
    suite: "WorkloadSuite | None" = None,
    seed: int = 11,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Fraction of LLC accesses triggering a snoop, measured by the simulator."""
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    stats_list = executor.map(
        _snoop_point,
        [(workload, cores, llc_mb, instructions_per_core, seed) for workload in suite],
    )
    rows = []
    measured = []
    for workload, stats in zip(suite, stats_list):
        measured.append(stats.snoop_fraction)
        rows.append(
            {
                "workload": workload.name,
                "snoop_fraction_percent": round(stats.snoop_fraction * 100.0, 2),
                "profile_percent": round(workload.snoop_fraction * 100.0, 2),
                "network_latency_avg": round(stats.network_latency_avg, 2),
            }
        )
    rows.append(
        {
            "workload": "MEAN",
            "snoop_fraction_percent": round(sum(measured) / len(measured) * 100.0, 2),
            "profile_percent": round(
                sum(w.snoop_fraction for w in suite) / len(suite) * 100.0, 2
            ),
            "network_latency_avg": round(
                sum(s.network_latency_avg for s in stats_list) / len(stats_list), 2
            ),
        }
    )
    return rows


def figure_4_6_noc_performance(
    duration_cycles: int = 4_000,
    suite: "WorkloadSuite | None" = None,
    seed: int = 1,
    executor: "SweepExecutor | None" = None,
    use_fastpath: bool = True,
) -> "list[dict[str, object]]":
    """System performance of mesh / fbfly / NOC-Out, normalized to the mesh."""
    study = PodNocStudy(
        duration_cycles=duration_cycles, suite=suite, seed=seed, use_fastpath=use_fastpath
    )
    normalized = study.normalized_performance(study.evaluate(executor=executor))
    rows = []
    for topology, per_workload in normalized.items():
        row: "dict[str, object]" = {"topology": topology}
        row.update({name: round(value, 3) for name, value in per_workload.items()})
        row["geomean"] = round(statistics.geometric_mean(list(per_workload.values())), 3)
        rows.append(row)
    return rows


def figure_4_7_noc_area(suite: "WorkloadSuite | None" = None) -> "list[dict[str, object]]":
    """NoC area breakdown (links / buffers / crossbars) for the three topologies."""
    study = PodNocStudy(suite=suite)
    rows = []
    for name, breakdown in study.area_breakdowns().items():
        rows.append(
            {
                "topology": name,
                "links_mm2": round(breakdown.links_mm2, 2),
                "buffers_mm2": round(breakdown.buffers_mm2, 2),
                "crossbars_mm2": round(breakdown.crossbars_mm2, 2),
                "total_mm2": round(breakdown.total_mm2, 2),
            }
        )
    return rows


def figure_4_8_area_normalized(
    duration_cycles: int = 4_000,
    suite: "WorkloadSuite | None" = None,
    seed: int = 1,
    executor: "SweepExecutor | None" = None,
    use_fastpath: bool = True,
) -> "list[dict[str, object]]":
    """Performance under a fixed NoC area budget (every topology at NOC-Out's area)."""
    study = PodNocStudy(
        duration_cycles=duration_cycles, suite=suite, seed=seed, use_fastpath=use_fastpath
    )
    widths = study.area_normalized_widths()
    normalized = study.normalized_performance(
        study.evaluate(link_width_bits_by_topology=widths, executor=executor)
    )
    rows = []
    for topology, per_workload in normalized.items():
        row: "dict[str, object]" = {
            "topology": topology,
            "link_width_bits": widths[topology],
        }
        row.update({name: round(value, 3) for name, value in per_workload.items()})
        row["geomean"] = round(statistics.geometric_mean(list(per_workload.values())), 3)
        rows.append(row)
    return rows


def table_4_1_parameters() -> "list[dict[str, object]]":
    """NOC-Out evaluation parameters (Table 4.1)."""
    study = PodNocStudy()
    return [
        {"parameter": "cores", "value": study.cores},
        {"parameter": "llc_mb", "value": study.llc_mb},
        {"parameter": "technology", "value": study.node.name},
        {"parameter": "frequency_ghz", "value": study.node.frequency_ghz},
        {"parameter": "link_width_bits", "value": study.config.link_width_bits},
        {"parameter": "vcs_per_port", "value": study.config.vcs_per_port},
    ]
