"""Spec catalog mapping experiment ids (table/figure numbers) to their specs.

The catalog replaces the original bare ``{id: callable}`` dict: every artifact
is an :class:`~repro.runtime.ExperimentSpec` carrying its chapter, kind, and
description, so callers can enumerate by chapter (``CATALOG.by_chapter(4)``),
by kind (``CATALOG.by_kind("table")``), or drive everything from the
``python -m repro`` command line.

:func:`run_experiment` executes one spec through the shared result cache and
returns an :class:`~repro.runtime.ExperimentResult` envelope.  The envelope
iterates/indexes as the bare row list, so existing callers keep working; new
callers read ``.rows``, ``.wall_time_s``, ``.cache_status``, and
``.provenance``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.dse import studies as dse_studies
from repro.experiments import chapter2, chapter3, chapter4, chapter5, chapter6, service
from repro.experiments import faults as fault_studies
from repro.experiments import fleet as fleet_studies
from repro.experiments import technology as technology_studies
from repro.runtime import (
    ExperimentResult,
    ExperimentSpec,
    ResultCache,
    SpecCatalog,
    result_key,
)


def _spec(
    experiment_id: str,
    function: "Callable[..., object]",
    produces: str,
    version: int = 1,
) -> ExperimentSpec:
    kind, chapter_str, _ = experiment_id.split("_", 2)
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=int(chapter_str),
        kind=kind,
        function=function,
        produces=produces,
        version=version,
    )


#: Chapter number used for beyond-paper studies (the paper evaluates 2-6).
SERVICE_CHAPTER = 7

#: Chapter number used for design-space explorations (``kind="explore"``).
DSE_CHAPTER = 8

#: Chapter number used for fault-injection / dependability studies.
FAULTS_CHAPTER = 9

#: Chapter number used for fleet-scale traffic studies.
FLEET_CHAPTER = 10

#: Chapter number used for technology-node family studies (90nm->7nm).
TECHNOLOGY_CHAPTER = 11


def _study(
    experiment_id: str, function: "Callable[..., object]", produces: str
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=SERVICE_CHAPTER,
        kind="study",
        function=function,
        produces=produces,
    )


def _explore(
    experiment_id: str, function: "Callable[..., object]", produces: str
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=DSE_CHAPTER,
        kind="explore",
        function=function,
        produces=produces,
    )


def _fault_study(
    experiment_id: str, function: "Callable[..., object]", produces: str
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=FAULTS_CHAPTER,
        kind="study",
        function=function,
        produces=produces,
    )


def _fleet_study(
    experiment_id: str, function: "Callable[..., object]", produces: str
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=FLEET_CHAPTER,
        kind="study",
        function=function,
        produces=produces,
    )


def _technology(
    experiment_id: str,
    function: "Callable[..., object]",
    produces: str,
    kind: str = "study",
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        chapter=TECHNOLOGY_CHAPTER,
        kind=kind,
        function=function,
        produces=produces,
    )


#: Every table and figure of the paper's evaluation, as a queryable catalog.
CATALOG = SpecCatalog(
    [
        _spec("figure_2_1", chapter2.figure_2_1_application_ipc, "Application IPC on an aggressive OoO core"),
        _spec("figure_2_2", chapter2.figure_2_2_llc_sensitivity, "Performance vs LLC capacity, normalized to 1 MB"),
        _spec("figure_2_3", chapter2.figure_2_3_core_scaling, "Per-core and aggregate performance vs core count"),
        _spec("table_2_1", chapter2.table_2_1_components, "Component area and power estimates"),
        _spec("table_2_3", chapter2.table_2_3_designs_40nm, "Processor design comparison at 40nm"),
        _spec("table_2_4", chapter2.table_2_4_designs_20nm, "Processor design comparison at 20nm"),
        _spec("figure_3_3", chapter3.figure_3_3_model_validation, "Analytic model vs cycle-level simulation"),
        _spec("figure_3_4", chapter3.figure_3_4_pd_sweep_ooo, "Performance-density sweep for OoO pods"),
        _spec("figure_3_5", chapter3.figure_3_5_pod_selection, "Crossbar pod sweep and the selected pod"),
        _spec("figure_3_6", chapter3.figure_3_6_pd_sweep_inorder, "Performance-density sweep for in-order pods"),
        _spec("table_3_2", chapter3.table_3_2_design_comparison, "Design comparison incl. Scale-Out Processors"),
        # version=2: rows gained the network_latency_avg column.
        _spec("figure_4_3", chapter4.figure_4_3_snoop_fraction, "Fraction of LLC accesses triggering snoops", version=2),
        _spec("figure_4_6", chapter4.figure_4_6_noc_performance, "System performance of mesh/fbfly/NOC-Out"),
        _spec("figure_4_7", chapter4.figure_4_7_noc_area, "NoC area breakdown per topology"),
        _spec("figure_4_8", chapter4.figure_4_8_area_normalized, "Performance under a fixed NoC area budget"),
        _spec("table_4_1", chapter4.table_4_1_parameters, "NOC-Out evaluation parameters"),
        _spec("table_5_1", chapter5.table_5_1_chip_characteristics, "Server chip characteristics"),
        _spec("table_5_2", chapter5.table_5_2_parameters, "TCO model parameters"),
        _spec("figure_5_1", chapter5.figures_5_1_5_2_performance_and_tco, "Datacenter performance vs conventional"),
        _spec("figure_5_2", chapter5.figures_5_1_5_2_performance_and_tco, "Datacenter TCO vs conventional"),
        _spec("figure_5_3", chapter5.figures_5_3_5_4_efficiency, "Performance/TCO across memory capacities"),
        _spec("figure_5_4", chapter5.figures_5_3_5_4_efficiency, "Performance/Watt across memory capacities"),
        _spec("figure_5_5", chapter5.figure_5_5_price_sensitivity, "Performance/TCO vs processor price"),
        _spec("table_6_1", chapter6.table_6_1_components, "Component budgets for the 3D study"),
        _spec("table_6_2", chapter6.table_6_2_specifications, "2D vs 3D Scale-Out Processor specifications"),
        _spec("figure_6_4", chapter6.figure_6_4_pd3d_ooo, "3D performance-density sweep, OoO pods"),
        _spec("figure_6_5", chapter6.figure_6_5_strategies_ooo, "Fixed-pod vs fixed-distance, OoO pods"),
        _spec("figure_6_6", chapter6.figure_6_6_pd3d_inorder, "3D performance-density sweep, in-order pods"),
        _spec("figure_6_7", chapter6.figure_6_7_strategies_inorder, "Fixed-pod vs fixed-distance, in-order pods"),
        _study("service_latency_sweep", service.service_latency_sweep, "Load-latency curve (p50/p95/p99) for a service cluster"),
        _study("service_policy_comparison", service.service_policy_comparison, "Load-balancing policies head-to-head at equal load"),
        _study("service_cluster_sizing", service.service_cluster_sizing, "Servers and monthly TCO per design for a QPS target at a p99 SLA"),
        _explore("explore_pod_40nm", dse_studies.explore_pod_40nm, "40nm pod design space; the paper's chosen designs are frontier points"),
        _explore("explore_scaling_20nm", dse_studies.explore_scaling_20nm, "Pod design space across 40nm/20nm; frontier shift under scaling"),
        _explore("explore_sla_sizing", dse_studies.explore_sla_sizing, "SLA-constrained sizing: monthly TCO vs achieved p99 frontier"),
        _explore("explore_pod_scale", dse_studies.explore_pod_scale, "~111k-candidate pod space, search strategies only (GA default)"),
        _fault_study("fault_service_sweep", fault_studies.service_fault_sweep, "Availability/goodput/p99 of a service cluster vs server crash intensity"),
        _fault_study("fault_mttr_sensitivity", fault_studies.service_mttr_sweep, "Dependability vs repair time (MTTR) at fixed crash intensity"),
        _fault_study("fault_nk_sizing", fault_studies.service_nk_sizing, "N+k redundancy sizing: TCO and cluster availability vs tolerated failures"),
        _fault_study("fault_noc_links", fault_studies.noc_fault_sweep, "NoC latency and system IPC as links fail and traffic reroutes"),
        _fleet_study("fleet_diurnal_day", fleet_studies.fleet_diurnal_day, "A compressed diurnal day across three datacenters: load, capacity, tail latency"),
        _fleet_study("fleet_autoscale_policies", fleet_studies.fleet_autoscale_policies, "Static vs reactive autoscaling on monthly TCO and SLA attainment"),
        _fleet_study("fleet_geo_routing", fleet_studies.fleet_geo_routing, "Geo-routing policies under skewed regional demand"),
        _fleet_study("fleet_class_priorities", fleet_studies.fleet_class_priorities, "Interactive vs batch tail latency under the prioritized request mix"),
        _technology("node_family_table", technology_studies.node_family_table, "The derived 90nm-7nm node family: scaling factors and extrapolation flags"),
        _technology("node_design_scaling", technology_studies.node_design_scaling, "Conventional/Scale-Out/1Pod designs re-sized at every family node"),
        _technology("node_pod_selection", technology_studies.node_pod_selection, "PD-optimal pod per (node, core family) via the Chapter 3 methodology"),
        _technology("node_sram_scaling", technology_studies.node_sram_scaling, "LLC bank area/latency/energy across capacity and node (CACTI stand-in)"),
        _technology("explore_node_family", dse_studies.explore_node_family, "Pod design space across the whole node family; frontier shift per node", kind="explore"),
    ]
)

#: Legacy view (experiment id -> callable), kept for backward compatibility.
EXPERIMENTS: "dict[str, Callable[..., object]]" = {
    spec.experiment_id: spec.function for spec in CATALOG
}

#: Process-wide default cache; add a disk tier by setting ``REPRO_CACHE_DIR``.
DEFAULT_CACHE = ResultCache.from_env()


def run_experiment(
    experiment_id: str,
    use_cache: bool = True,
    cache: "ResultCache | None" = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"table_3_2"``) through the runtime.

    Args:
        experiment_id: catalog id of the table or figure.
        use_cache: serve/store the result through the cache (default).
        cache: cache instance; defaults to the process-wide ``DEFAULT_CACHE``.
        **kwargs: parameter overrides forwarded to the experiment function.

    Returns:
        An :class:`ExperimentResult` whose ``data`` is exactly what the
        experiment function returned (identical rows whether computed or
        served from the cache).
    """
    from repro.obs.telemetry import telemetry_block
    from repro.obs.tracer import get_tracer

    spec = CATALOG.get(experiment_id)
    merged = spec.merged_kwargs(kwargs)
    key = result_key(spec.cache_token, merged)
    cache = cache if cache is not None else DEFAULT_CACHE

    tracer = get_tracer()
    counters_before = tracer.counters() if tracer.enabled else None
    start = perf_counter()
    cache_status = "disabled"
    compute_time_s = 0.0
    data = None
    with tracer.span(
        f"experiment.{experiment_id}", category="experiment"
    ) as experiment_span:
        if use_cache:
            with tracer.span("cache.fetch", category="cache") as fetch_span:
                data = cache.get(key, category="experiment")
                fetch_span.annotate(hit=data is not None)
            cache_status = "hit" if data is not None else "miss"
        if data is None:
            compute_start = perf_counter()
            data = spec.run(**kwargs)
            compute_time_s = perf_counter() - compute_start
            if use_cache:
                with tracer.span("cache.store", category="cache"):
                    cache.put(key, data, category="experiment")
        experiment_span.annotate(cache_status=cache_status)
    wall_time_s = perf_counter() - start

    provenance: "dict[str, object]" = {
        "function": spec.cache_token,
        "cache_key": key,
        "kwargs": {name: repr(value) for name, value in sorted(merged.items())},
    }
    # Node-parameterized runs pin which family nodes produced the data and
    # whether any scaling rule had to extrapolate to derive them, so a sweep
    # at 7nm is never mistaken for a paper-calibrated result.
    node_keys: "object | None" = merged.get("nodes")
    if node_keys is None and merged.get("node") is not None:
        node_keys = [merged["node"]]
    if node_keys is not None:
        from repro.technology.family import DEFAULT_FAMILY

        if isinstance(node_keys, (str, int)):
            node_keys = [node_keys]
        try:
            provenance["nodes"] = [
                {
                    "node": DEFAULT_FAMILY.node(key).name,
                    "calibrated": not DEFAULT_FAMILY.is_extrapolated(key),
                    "extrapolated_rules": DEFAULT_FAMILY.extrapolated_rules(key),
                }
                for key in node_keys  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError):
            pass  # custom TechnologyNode objects outside the family
    # Faulted studies pin their fault load: the generator seed plus a SHA-256
    # digest of every schedule, so any faulted run is reproducible from its
    # envelope (and the ledger record built from it).
    if isinstance(data, dict):
        faults_info = data.get("faults")
        if isinstance(faults_info, dict) and "digest" in faults_info:
            provenance["fault_seed"] = faults_info.get("seed")
            provenance["fault_schedule_digest"] = faults_info["digest"]

    return ExperimentResult(
        experiment_id=experiment_id,
        data=data,
        provenance=provenance,
        wall_time_s=wall_time_s,
        cache_status=cache_status,
        compute_time_s=compute_time_s,
        telemetry=(
            telemetry_block(tracer, span=experiment_span, counters_before=counters_before)
            if tracer.enabled
            else None
        ),
    )
