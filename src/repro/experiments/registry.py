"""Registry mapping experiment ids (table/figure numbers) to their functions."""

from __future__ import annotations

from typing import Callable

from repro.experiments import chapter2, chapter3, chapter4, chapter5, chapter6

#: Experiment id -> callable returning the table/figure data.
EXPERIMENTS: "dict[str, Callable[..., object]]" = {
    "figure_2_1": chapter2.figure_2_1_application_ipc,
    "figure_2_2": chapter2.figure_2_2_llc_sensitivity,
    "figure_2_3": chapter2.figure_2_3_core_scaling,
    "table_2_1": chapter2.table_2_1_components,
    "table_2_3": chapter2.table_2_3_designs_40nm,
    "table_2_4": chapter2.table_2_4_designs_20nm,
    "figure_3_3": chapter3.figure_3_3_model_validation,
    "figure_3_4": chapter3.figure_3_4_pd_sweep_ooo,
    "figure_3_5": chapter3.figure_3_5_pod_selection,
    "figure_3_6": chapter3.figure_3_6_pd_sweep_inorder,
    "table_3_2": chapter3.table_3_2_design_comparison,
    "figure_4_3": chapter4.figure_4_3_snoop_fraction,
    "figure_4_6": chapter4.figure_4_6_noc_performance,
    "figure_4_7": chapter4.figure_4_7_noc_area,
    "figure_4_8": chapter4.figure_4_8_area_normalized,
    "table_4_1": chapter4.table_4_1_parameters,
    "table_5_1": chapter5.table_5_1_chip_characteristics,
    "table_5_2": chapter5.table_5_2_parameters,
    "figure_5_1": chapter5.figures_5_1_5_2_performance_and_tco,
    "figure_5_2": chapter5.figures_5_1_5_2_performance_and_tco,
    "figure_5_3": chapter5.figures_5_3_5_4_efficiency,
    "figure_5_4": chapter5.figures_5_3_5_4_efficiency,
    "figure_5_5": chapter5.figure_5_5_price_sensitivity,
    "table_6_1": chapter6.table_6_1_components,
    "table_6_2": chapter6.table_6_2_specifications,
    "figure_6_4": chapter6.figure_6_4_pd3d_ooo,
    "figure_6_5": chapter6.figure_6_5_strategies_ooo,
    "figure_6_6": chapter6.figure_6_6_pd3d_inorder,
    "figure_6_7": chapter6.figure_6_7_strategies_inorder,
}


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id (e.g. ``"table_3_2"``) and return its data."""
    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return function(**kwargs)
