"""Service-level experiments: load-latency curves and SLA-driven sizing.

These studies go beyond the paper's chip-level evaluation: they put clusters of
the Chapter 5 server designs behind a load balancer and measure what the
latency-sensitive cloud traffic the paper targets actually experiences.

* :func:`service_latency_sweep` -- simulated load-latency curve for one design:
  p99 (and friends) versus offered load, with the analytic M/M/k reference.
* :func:`service_policy_comparison` -- load-balancing policies head-to-head at
  equal load (random / round-robin / power-of-two / join-shortest-queue).
* :func:`service_cluster_sizing` -- servers and dollars per month each chip
  design needs to serve a QPS target within a p99 SLA (queueing + TCO models).

Each simulated sweep point is independent, so the functions fan out over a
:class:`~repro.runtime.SweepExecutor` exactly like the chapter experiments.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.chip import ScaleOutChip
from repro.core.designs import build_conventional, build_scale_out
from repro.core.methodology import ScaleOutDesignMethodology
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.runtime.executor import SweepExecutor
from repro.service.calibration import ServiceCapacity, calibrate_chip
from repro.service.cluster import ClusterConfig, simulate_cluster
from repro.service.sizing import ClusterSizer, MmkQueue, saturation_qps
from repro.tco.datacenter import DatacenterDesign
from repro.technology.node import NODE_40NM
from repro.three_d.designer import ThreeDDesignStudy
from repro.workloads.suite import WorkloadSuite, default_suite

#: Default designs compared by the sizing study (Chapter 5 + Chapter 6 chips).
SERVICE_DESIGNS = ("Conventional", "Scale-Out (OoO)", "Scale-Out 3D (OoO)")


def build_service_chip(
    design: str,
    suite: "WorkloadSuite | None" = None,
    model: "AnalyticPerformanceModel | None" = None,
) -> ScaleOutChip:
    """Build one of the named server-chip designs the service studies compare."""
    suite = suite or default_suite()
    model = model or AnalyticPerformanceModel()
    name = design.lower()
    if name.startswith("conventional"):
        return build_conventional(NODE_40NM, model, suite)
    if "3d" in name:
        methodology = ScaleOutDesignMethodology(suite=suite)
        base_pod = methodology.pd_optimal_pod(core_type="ooo").pod
        study = ThreeDDesignStudy(suite=suite)
        best = study.best_strategy(base_pod, num_dies=2)
        chip = study.compose_chip(best.stacked_pod, name="Scale-Out 3D (OoO)")
        return chip
    if name.startswith("scale-out"):
        return build_scale_out("ooo", NODE_40NM, model, suite)
    raise ValueError(f"unknown service design {design!r}; known: {SERVICE_DESIGNS}")


def _server_capacity(
    design: str, workload: str, suite: WorkloadSuite, memory_gb: int = 64
) -> "tuple[ServiceCapacity, int]":
    """(chip capacity, service units per server) for one design and workload.

    A "server" throughout the service studies is the Chapter 5 1U box: the
    chip's usable cores times the sockets the server-design model fits into
    the per-server power budget -- the same convention the sizing layer uses.
    """
    chip = build_service_chip(design, suite)
    capacity = calibrate_chip(chip, suite[workload])
    server = DatacenterDesign(suite=suite).build_server(chip, memory_gb=memory_gb)
    return capacity, capacity.units_per_chip * server.sockets


def _latency_point(
    utilization: float,
    num_servers: int,
    parallelism: int,
    service_mean_s: float,
    policy: str,
    arrival: str,
    service_distribution: str,
    num_requests: int,
    seed: int,
    engine: str = "auto",
) -> "dict[str, object]":
    """One simulated point of the load-latency curve (module-level: picklable)."""
    capacity_qps = num_servers * parallelism / service_mean_s
    config = ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=utilization * capacity_qps,
        policy=policy,
        arrival=arrival,
        service_distribution=service_distribution,
    )
    result = simulate_cluster(config, num_requests=num_requests, seed=seed, engine=engine)
    reference = MmkQueue(
        servers=parallelism,
        service_rate_rps=1.0 / service_mean_s,
        arrival_rate_rps=config.offered_qps / num_servers,
    )
    reference_p99 = reference.latency_quantile(0.99)
    summary = result.latency.summary()
    return {
        "utilization": utilization,
        "offered_qps": round(config.offered_qps, 1),
        "mean_ms": round(summary["mean"], 3),
        "p50_ms": round(summary["p50"], 3),
        "p95_ms": round(summary["p95"], 3),
        "p99_ms": round(summary["p99"], 3),
        # None past saturation: the open queue has no steady state there.
        "mmk_p99_ms": round(reference_p99 * 1e3, 3) if math.isfinite(reference_p99) else None,
        "achieved_qps": round(result.achieved_qps, 1),
    }


def service_latency_sweep(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    utilizations: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.98, 1.02, 1.1),
    num_servers: int = 8,
    policy: str = "random",
    arrival: str = "poisson",
    service_distribution: str = "exponential",
    num_requests: int = 16_000,
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
    engine: str = "auto",
) -> "list[dict[str, object]]":
    """Load-latency curve for a cluster of ``design`` servers running ``workload``.

    Per-request service rates are calibrated from the analytic performance
    model; the default ``random`` policy splits the Poisson stream into
    independent per-server Poisson streams, which keeps the simulated curve
    directly comparable to the analytic M/M/k reference column -- and, because
    every load level replays the same seeded per-request work over a compressed
    arrival pattern, simulated p99 rises monotonically with offered load.
    ``engine`` selects the cluster-simulation engine (``"event"`` is the
    reference escape hatch; ``"auto"`` uses the vectorized fast engine for
    state-free policies).
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    capacity, parallelism = _server_capacity(design, workload, suite)
    points = [
        (
            utilization,
            num_servers,
            parallelism,
            capacity.service_mean_s,
            policy,
            arrival,
            service_distribution,
            num_requests,
            seed,
            engine,
        )
        for utilization in utilizations
    ]
    rows = executor.map(_latency_point, points)
    return [
        {"design": capacity.design, "workload": capacity.workload, **row}
        for row in rows
    ]


def _policy_point(
    policy: str,
    utilization: float,
    num_servers: int,
    parallelism: int,
    service_mean_s: float,
    arrival: str,
    service_distribution: str,
    num_requests: int,
    seed: int,
) -> "dict[str, object]":
    """One policy's latency profile at fixed load (module-level: picklable)."""
    config = ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=utilization * num_servers * parallelism / service_mean_s,
        policy=policy,
        arrival=arrival,
        service_distribution=service_distribution,
    )
    result = simulate_cluster(config, num_requests=num_requests, seed=seed)
    summary = result.latency.summary()
    # Include servers that saw no measured traffic, so starvation shows up as
    # the extreme imbalance it is instead of being dropped from the ratio.
    counts = [result.per_server_counts.get(i, 0) for i in range(num_servers)]
    return {
        "policy": policy,
        "utilization": utilization,
        "mean_ms": round(summary["mean"], 3),
        "p95_ms": round(summary["p95"], 3),
        "p99_ms": round(summary["p99"], 3),
        "max_ms": round(summary["max"], 3),
        "request_imbalance": round(max(counts) / max(1, min(counts)), 3),
    }


def service_policy_comparison(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    policies: Sequence[str] = ("random", "round_robin", "po2", "jsq"),
    utilization: float = 0.85,
    num_servers: int = 8,
    arrival: str = "poisson",
    service_distribution: str = "exponential",
    num_requests: int = 8_000,
    seed: int = 42,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Load-balancing policies head-to-head at equal offered load."""
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    capacity, parallelism = _server_capacity(design, workload, suite)
    points = [
        (
            policy,
            utilization,
            num_servers,
            parallelism,
            capacity.service_mean_s,
            arrival,
            service_distribution,
            num_requests,
            seed,
        )
        for policy in policies
    ]
    rows = executor.map(_policy_point, points)
    return [
        {"design": capacity.design, "workload": capacity.workload, **row}
        for row in rows
    ]


def _sizing_point(
    design: str,
    workload_name: str,
    target_qps: float,
    sla_p99_ms: float,
    memory_gb: int,
    suite: WorkloadSuite,
) -> "dict[str, object]":
    """Size one design's cluster (module-level: picklable).

    The suite's profiles (frozen dataclasses) ship to the worker directly; the
    chip build is deterministic and cheap relative to the sizing search.
    """
    chip = build_service_chip(design, suite)
    sizer = ClusterSizer(DatacenterDesign(suite=suite), memory_gb=memory_gb)
    result = sizer.size(
        chip, suite[workload_name], target_qps=target_qps, sla_p99_s=sla_p99_ms / 1e3
    )
    server_qps = result.server_capacity_qps
    return {
        "design": result.design,
        "workload": result.workload,
        "target_qps": int(result.target_qps),
        "sla_p99_ms": sla_p99_ms,
        "servers": result.servers,
        "racks": result.racks,
        "sockets_per_server": result.sockets_per_server,
        "units_per_server": result.units_per_server,
        "utilization": round(result.utilization, 3),
        "p99_ms": round(result.p99_s * 1e3, 3),
        "saturation_qps_per_server": round(
            saturation_qps(
                result.units_per_server, result.unit_rate_rps, sla_p99_ms / 1e3
            ),
            1,
        ),
        "server_capacity_qps": round(server_qps, 1),
        "monthly_tco_usd": round(result.monthly_tco_usd, 0),
        "tco_per_million_qps_usd": round(result.tco_per_million_qps, 0),
    }


def service_cluster_sizing(
    target_qps: float = 1_000_000.0,
    sla_p99_ms: float = 25.0,
    workload: str = "Web Search",
    designs: Sequence[str] = SERVICE_DESIGNS,
    memory_gb: int = 64,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Servers and monthly TCO each design needs for ``target_qps`` at the SLA."""
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    points = [
        (design, workload, target_qps, sla_p99_ms, memory_gb, suite)
        for design in designs
    ]
    return executor.map(_sizing_point, points)
