"""Chapter 3 experiments: the scale-out design methodology.

Covers Figure 3.3 (analytic model versus cycle-level simulation), Figures
3.4-3.6 (performance-density sweeps and pod selection), and Table 3.2 (the full
design comparison including Scale-Out Processors at 40nm and 20nm).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.comparison import compare_designs
from repro.core.designs import standard_designs
from repro.core.methodology import ScaleOutDesignMethodology
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.perfmodel.validation import validate_against
from repro.runtime.executor import SweepExecutor
from repro.sim.system import simulate_system
from repro.technology.node import NODE_20NM, NODE_40NM, TechnologyNode, coerce_node
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite, default_suite


def _validation_point(
    workload: WorkloadProfile,
    config: SystemConfig,
    instructions_per_core: int,
    seed: int,
) -> float:
    return simulate_system(
        workload, config, instructions_per_core=instructions_per_core, seed=seed
    ).aggregate_ipc


def figure_3_3_model_validation(
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    llc_mb: float = 4.0,
    interconnects: Sequence[str] = ("ideal", "crossbar", "mesh"),
    instructions_per_core: int = 6_000,
    suite: "WorkloadSuite | None" = None,
    seed: int = 7,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Analytic model versus cycle-level simulation (aggregate IPC per design point)."""
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    configs = [
        SystemConfig(cores=cores, core_type="ooo", llc_capacity_mb=llc_mb, interconnect=net)
        for net in interconnects
        for cores in core_counts
    ]
    # Simulate every (workload, config) point up front -- the expensive half of
    # the comparison -- then serve the measurements to validate_against by
    # (workload, config) identity, independent of its iteration order.
    points = [(workload, config) for workload in suite for config in configs]
    measured = executor.map(
        _validation_point,
        [(workload, config, instructions_per_core, seed) for workload, config in points],
    )
    config_index = {id(config): i for i, config in enumerate(configs)}
    by_point = {
        (workload.name, config_index[id(config)]): ipc
        for (workload, config), ipc in zip(points, measured)
    }
    report = validate_against(
        lambda workload, config: by_point[(workload.name, config_index[id(config)])],
        suite,
        configs,
    )
    rows = [
        {
            "workload": point.workload,
            "cores": point.cores,
            "interconnect": point.interconnect,
            "model_ipc": round(point.model_ipc, 2),
            "simulated_ipc": round(point.simulated_ipc, 2),
            "relative_error": round(point.relative_error, 3),
        }
        for point in report.points
    ]
    rows.append(
        {
            "workload": "MEAN",
            "cores": 0,
            "interconnect": "all",
            "model_ipc": 0.0,
            "simulated_ipc": 0.0,
            "relative_error": round(report.mean_absolute_error, 3),
        }
    )
    return rows


def figure_3_4_pd_sweep_ooo(
    node: "TechnologyNode | str | int" = NODE_40NM,
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Performance density versus core count and LLC size for OoO pods."""
    methodology = ScaleOutDesignMethodology(node=coerce_node(node), suite=suite)
    rows = []
    for point in methodology.sweep_pods("ooo", interconnects=("ideal", "crossbar", "mesh")):
        rows.append(
            {
                "interconnect": point.pod.interconnect,
                "llc_mb": point.pod.llc_capacity_mb,
                "cores": point.pod.cores,
                "performance_density": round(point.performance_density, 4),
            }
        )
    return rows


def figure_3_5_pod_selection(
    node: "TechnologyNode | str | int" = NODE_40NM,
    suite: "WorkloadSuite | None" = None,
) -> "dict[str, object]":
    """Crossbar pod sweep plus the selected (near-optimal, fewest-core) pod."""
    methodology = ScaleOutDesignMethodology(node=coerce_node(node), suite=suite)
    points = methodology.sweep_pods("ooo", interconnects=("crossbar",))
    selected = methodology.pd_optimal_pod("ooo")
    return {
        "sweep": [
            {
                "llc_mb": p.pod.llc_capacity_mb,
                "cores": p.pod.cores,
                "performance_density": round(p.performance_density, 4),
            }
            for p in points
        ],
        "selected_cores": selected.pod.cores,
        "selected_llc_mb": selected.pod.llc_capacity_mb,
        "selected_pd": round(selected.performance_density, 4),
    }


def figure_3_6_pd_sweep_inorder(
    node: "TechnologyNode | str | int" = NODE_40NM,
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Performance density versus core count and LLC size for in-order pods."""
    methodology = ScaleOutDesignMethodology(node=coerce_node(node), suite=suite)
    rows = []
    for point in methodology.sweep_pods("inorder", interconnects=("ideal", "crossbar", "mesh")):
        rows.append(
            {
                "interconnect": point.pod.interconnect,
                "llc_mb": point.pod.llc_capacity_mb,
                "cores": point.pod.cores,
                "performance_density": round(point.performance_density, 4),
            }
        )
    return rows


def table_3_2_design_comparison(
    node: "TechnologyNode | str | int" = NODE_40NM,
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Full design comparison including Scale-Out Processors (Table 3.2)."""
    suite = suite or default_suite()
    model = AnalyticPerformanceModel()
    designs = standard_designs(coerce_node(node), model, suite)
    return compare_designs(designs, model, suite).as_dicts()


def table_3_2_both_nodes(suite: "WorkloadSuite | None" = None) -> "list[dict[str, object]]":
    """Table 3.2 at both 40nm and 20nm."""
    return table_3_2_design_comparison(NODE_40NM, suite) + table_3_2_design_comparison(
        NODE_20NM, suite
    )
