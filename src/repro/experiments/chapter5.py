"""Chapter 5 experiments: Scale-Out Processors with large dies (datacenter TCO).

Covers Table 5.1 (server chip characteristics), Figures 5.1 / 5.2 (datacenter
performance and TCO normalized to the conventional design), Figures 5.3 / 5.4
(performance/TCO and performance/Watt across memory capacities), and Figure 5.5
(sensitivity to processor price / production volume).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chip import ScaleOutChip
from repro.core.designs import (
    build_conventional,
    build_scale_out,
    build_single_pod,
    build_tiled,
)
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.runtime.executor import SERIAL_EXECUTOR, SweepExecutor
from repro.tco.datacenter import DatacenterDesign, DatacenterResult
from repro.tco.params import DEFAULT_TCO_PARAMETERS
from repro.tco.pricing import ChipPricingModel
from repro.technology.node import NODE_40NM
from repro.workloads.suite import WorkloadSuite, default_suite


def _datacenter_point(
    datacenter: DatacenterDesign,
    chip: ScaleOutChip,
    memory_gb: int,
    processor_price: "float | None" = None,
) -> DatacenterResult:
    return datacenter.evaluate(chip, memory_gb=memory_gb, processor_price=processor_price)


def chapter5_chip_set(
    suite: "WorkloadSuite | None" = None,
) -> "list[ScaleOutChip]":
    """The seven server chips of Table 5.1 (all at 40nm)."""
    suite = suite or default_suite()
    model = AnalyticPerformanceModel()
    return [
        build_conventional(NODE_40NM, model, suite),
        build_tiled("ooo", NODE_40NM, model, suite),
        build_single_pod("ooo", NODE_40NM, model, suite),
        build_scale_out("ooo", NODE_40NM, model, suite),
        build_tiled("inorder", NODE_40NM, model, suite),
        build_single_pod("inorder", NODE_40NM, model, suite),
        build_scale_out("inorder", NODE_40NM, model, suite),
    ]


def table_5_1_chip_characteristics(
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Server chip characteristics: cores, LLC, channels, power, area, price."""
    pricing = ChipPricingModel()
    rows = []
    for chip in chapter5_chip_set(suite):
        rows.append(
            {
                "design": chip.name,
                "cores": chip.total_cores,
                "llc_mb": chip.total_llc_mb,
                "memory_channels": chip.memory_channels,
                "power_w": round(chip.power_w, 0),
                "area_mm2": round(chip.die_area_mm2, 0),
                "price_usd": round(pricing.price(chip.name, chip.die_area_mm2), 0),
            }
        )
    return rows


def figures_5_1_5_2_performance_and_tco(
    memory_gb: int = 64,
    suite: "WorkloadSuite | None" = None,
) -> "list[dict[str, object]]":
    """Datacenter performance and TCO normalized to the conventional design."""
    suite = suite or default_suite()
    datacenter = DatacenterDesign(suite=suite)
    comparison = datacenter.compare(chapter5_chip_set(suite), memory_gb=memory_gb)
    return [
        {
            "design": name,
            "normalized_performance": round(row["performance"], 2),
            "normalized_tco": round(row["tco"], 2),
        }
        for name, row in comparison.items()
    ]


def figures_5_3_5_4_efficiency(
    memory_capacities_gb: Sequence[int] = (32, 64, 128),
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Performance/TCO and performance/Watt across server memory capacities."""
    suite = suite or default_suite()
    executor = executor or SERIAL_EXECUTOR
    datacenter = DatacenterDesign(suite=suite)
    chips = chapter5_chip_set(suite)
    points = [
        (datacenter, chip, memory_gb)
        for memory_gb in memory_capacities_gb
        for chip in chips
    ]
    rows = []
    for (_, chip, memory_gb), result in zip(points, executor.map(_datacenter_point, points)):
        rows.append(
            {
                "design": chip.name,
                "memory_gb": memory_gb,
                "performance_per_tco": round(result.performance_per_tco, 3),
                "performance_per_watt": round(result.performance_per_watt, 4),
            }
        )
    return rows


def figure_5_5_price_sensitivity(
    volumes: Sequence[int] = (40_000, 100_000, 200_000, 500_000, 1_000_000),
    memory_gb: int = 64,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """Performance/TCO as a function of processor price (production volume sweep)."""
    suite = suite or default_suite()
    executor = executor or SERIAL_EXECUTOR
    datacenter = DatacenterDesign(suite=suite)
    pricing = ChipPricingModel()
    sweep = [
        (chip, volume, pricing.price(chip.name, chip.die_area_mm2, volume))
        for chip in chapter5_chip_set(suite)
        for volume in volumes
    ]
    results = executor.map(
        _datacenter_point,
        [(datacenter, chip, memory_gb, price) for chip, _, price in sweep],
    )
    rows = []
    for (chip, volume, price), result in zip(sweep, results):
        rows.append(
            {
                "design": chip.name,
                "volume": volume,
                "price_usd": round(price, 0),
                "performance_per_tco": round(result.performance_per_tco, 3),
            }
        )
    return rows


def table_5_2_parameters() -> "list[dict[str, object]]":
    """TCO parameters (Table 5.2)."""
    p = DEFAULT_TCO_PARAMETERS
    return [
        {"parameter": "infrastructure_cost_per_m2", "value": p.infrastructure_cost_per_m2},
        {"parameter": "cooling_power_equipment_cost_per_w", "value": p.cooling_power_equipment_cost_per_w},
        {"parameter": "pue", "value": p.pue},
        {"parameter": "spue", "value": p.spue},
        {"parameter": "electricity_cost_per_kwh", "value": p.electricity_cost_per_kwh},
        {"parameter": "personnel_cost_per_rack_month", "value": p.personnel_cost_per_rack_month},
        {"parameter": "network_gear_cost_per_rack", "value": p.network_gear_cost_per_rack},
        {"parameter": "motherboard_cost", "value": p.motherboard_cost},
        {"parameter": "disk_cost", "value": p.disk_cost},
        {"parameter": "dram_cost_per_gb", "value": p.dram_cost_per_gb},
    ]
