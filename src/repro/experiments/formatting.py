"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: "str | None" = None) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    # Union of all row keys in first-appearance order, so heterogeneous rows
    # (e.g. a CLI sweep across different parameterizations) all stay visible.
    columns: "list[str]" = []
    for row in rows:
        for key in row.keys():
            if key not in columns:
                columns.append(str(key))
    widths = {c: len(str(c)) for c in columns}
    rendered_rows = []
    for row in rows:
        rendered = {c: _fmt(row.get(c, "")) for c in columns}
        rendered_rows.append(rendered)
        for c in columns:
            widths[c] = max(widths[c], len(rendered[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
