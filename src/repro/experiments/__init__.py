"""Experiment harness: one module per evaluation chapter.

Each function regenerates the data behind one of the paper's tables or figures
and returns plain dictionaries/lists that the benchmark harness prints.  The
mapping from experiment id to function is in :mod:`repro.experiments.registry`.
"""

from repro.experiments import chapter2, chapter3, chapter4, chapter5, chapter6
from repro.experiments.formatting import format_table
from repro.experiments.registry import CATALOG, DEFAULT_CACHE, EXPERIMENTS, run_experiment
from repro.runtime import ExperimentResult, ExperimentSpec, ResultCache, SweepExecutor

__all__ = [
    "chapter2",
    "chapter3",
    "chapter4",
    "chapter5",
    "chapter6",
    "format_table",
    "CATALOG",
    "DEFAULT_CACHE",
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "SweepExecutor",
    "run_experiment",
]
