"""Dependability studies: behavior of the service and NoC layers under faults.

Four beyond-the-paper studies (catalog chapter 9) make failures a first-class
experimental axis:

* :func:`service_fault_sweep` -- availability, goodput, and tail latency of a
  service cluster as the server crash intensity rises;
* :func:`service_mttr_sweep` -- the same cluster's dependability as repair
  time (MTTR) grows at fixed crash intensity;
* :func:`service_nk_sizing` -- N+k redundancy sizing per chip design:
  deployed servers, monthly TCO, and binomial cluster availability versus the
  number of tolerated concurrent failures;
* :func:`noc_fault_sweep` -- NoC latency and system performance as links fail
  and traffic reroutes around them.

Every fault schedule is drawn by a seeded
:class:`~repro.faults.generator.FaultLoadGenerator` in the parent process and
shipped to pool workers as frozen data, so serial and parallel sweeps are
bit-identical; the zero-fault sweep point carries an empty schedule and takes
exactly the un-faulted code path (byte-identical results).  The dict payloads
carry a ``"faults"`` block (generator seed plus the SHA-256 digest of every
schedule) that :func:`repro.experiments.registry.run_experiment` lifts into
envelope provenance and the CLI copies into the run ledger.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.faults.events import FaultSchedule
from repro.faults.generator import FaultLoadConfig, FaultLoadGenerator
from repro.faults.noc import apply_link_faults, undirected_links
from repro.noc.simulation import PodNocStudy, _cached_topology
from repro.runtime.executor import SweepExecutor
from repro.service.cluster import ClusterConfig, simulate_cluster
from repro.service.sizing import ClusterSizer
from repro.tco.datacenter import DatacenterDesign
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite, default_suite

from repro.experiments.service import SERVICE_DESIGNS, _server_capacity, build_service_chip

#: Default seed of the fault-load generator (independent of the request seed).
DEFAULT_FAULT_SEED = 7


def _combined_digest(schedules: "Sequence[FaultSchedule]") -> str:
    """One SHA-256 digest pinning every schedule of a sweep, in point order."""
    return hashlib.sha256(
        "\n".join(schedule.digest() for schedule in schedules).encode("ascii")
    ).hexdigest()


def _faults_block(seed: int, schedules: "Sequence[FaultSchedule]") -> "dict[str, object]":
    """The payload's ``"faults"`` provenance block."""
    return {
        "seed": seed,
        "digest": _combined_digest(schedules),
        "schedules": len(schedules),
        "events": sum(schedule.num_events for schedule in schedules),
    }


def _service_fault_point(
    axis: "dict[str, object]",
    num_servers: int,
    parallelism: int,
    service_mean_s: float,
    offered_qps: float,
    policy: str,
    num_requests: int,
    seed: int,
    schedule: FaultSchedule,
) -> "dict[str, object]":
    """One faulted cluster simulation (module-level: picklable).

    ``axis`` carries the sweep coordinates (crash intensity or MTTR fraction)
    verbatim into the row.  An empty schedule takes the un-faulted engine, so
    the zero-fault row is byte-identical to the pre-fault-subsystem result.
    """
    config = ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=offered_qps,
        policy=policy,
    )
    result = simulate_cluster(
        config, num_requests=num_requests, seed=seed, faults=schedule
    )
    summary = result.latency.summary()
    dep = result.dependability
    row: "dict[str, object]" = {
        **axis,
        "availability": 1.0 if dep is None else round(dep.availability, 6),
        "goodput_qps": round(
            result.achieved_qps if dep is None else dep.goodput_qps, 1
        ),
        "goodput_fraction": 1.0 if dep is None else round(dep.goodput_fraction, 6),
        "p99_ms": round(summary["p99"], 3),
        "mean_ms": round(summary["mean"], 3),
        "crashes": 0 if dep is None else dep.crashes,
        "lost_requests": 0 if dep is None else dep.lost_requests,
        "unrouted_requests": 0 if dep is None else dep.unrouted_requests,
        "mean_time_to_recover_ms": (
            0.0 if dep is None else round(dep.mean_time_to_recover_s * 1e3, 3)
        ),
        "max_time_to_recover_ms": (
            0.0 if dep is None else round(dep.max_time_to_recover_s * 1e3, 3)
        ),
        "fault_events": schedule.num_events,
    }
    return row


def _service_fault_schedules(
    configs: "Sequence[FaultLoadConfig]",
    fault_seed: int,
    num_servers: int,
    horizon_s: float,
) -> "list[FaultSchedule]":
    """Schedules for a service fault sweep, one per fault-load config."""
    return [
        FaultLoadGenerator(config, seed=fault_seed).schedule(num_servers, horizon_s)
        for config in configs
    ]


def service_fault_sweep(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    crash_intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    mttr_fraction: float = 0.1,
    straggler_intensity: float = 0.0,
    straggler_slowdown: float = 4.0,
    utilization: float = 0.7,
    num_servers: int = 8,
    policy: str = "jsq",
    num_requests: int = 8_000,
    seed: int = 42,
    fault_seed: int = DEFAULT_FAULT_SEED,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """Availability/goodput/tail latency versus server crash intensity.

    ``crash_intensity`` is the expected number of crashes per server over the
    run (the accelerated-clock fault load; see ``docs/faults.md``); each crash
    repairs after ``mttr_fraction`` of the run's horizon.  The zero-intensity
    point carries an empty schedule and is byte-identical to the un-faulted
    engine's result.
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    capacity, parallelism = _server_capacity(design, workload, suite)
    offered_qps = utilization * num_servers * parallelism / capacity.service_mean_s
    horizon_s = num_requests / offered_qps
    schedules = _service_fault_schedules(
        [
            FaultLoadConfig(
                crash_intensity=intensity,
                mttr_fraction=mttr_fraction,
                straggler_intensity=straggler_intensity if intensity > 0 else 0.0,
                straggler_slowdown=straggler_slowdown,
            )
            for intensity in crash_intensities
        ],
        fault_seed,
        num_servers,
        horizon_s,
    )
    points = [
        (
            {"crash_intensity": intensity, "mttr_fraction": mttr_fraction},
            num_servers,
            parallelism,
            capacity.service_mean_s,
            offered_qps,
            policy,
            num_requests,
            seed,
            schedule,
        )
        for intensity, schedule in zip(crash_intensities, schedules)
    ]
    rows = executor.map(_service_fault_point, points)
    return {
        "sweep": [
            {"design": capacity.design, "workload": capacity.workload, **row}
            for row in rows
        ],
        "faults": _faults_block(fault_seed, schedules),
    }


def service_mttr_sweep(
    design: str = "Scale-Out (OoO)",
    workload: str = "Web Search",
    mttr_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4),
    crash_intensity: float = 1.0,
    utilization: float = 0.7,
    num_servers: int = 8,
    policy: str = "jsq",
    num_requests: int = 8_000,
    seed: int = 42,
    fault_seed: int = DEFAULT_FAULT_SEED,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """MTTR sensitivity: dependability versus repair time at fixed crash rate.

    Longer repairs mean more accumulated downtime per crash, so availability
    falls monotonically as ``mttr_fraction`` grows (the crash clock pauses
    while a server is down, so crash *counts* shrink slightly -- downtime
    still wins).
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    capacity, parallelism = _server_capacity(design, workload, suite)
    offered_qps = utilization * num_servers * parallelism / capacity.service_mean_s
    horizon_s = num_requests / offered_qps
    schedules = _service_fault_schedules(
        [
            FaultLoadConfig(crash_intensity=crash_intensity, mttr_fraction=fraction)
            for fraction in mttr_fractions
        ],
        fault_seed,
        num_servers,
        horizon_s,
    )
    points = [
        (
            {"mttr_fraction": fraction, "crash_intensity": crash_intensity},
            num_servers,
            parallelism,
            capacity.service_mean_s,
            offered_qps,
            policy,
            num_requests,
            seed,
            schedule,
        )
        for fraction, schedule in zip(mttr_fractions, schedules)
    ]
    rows = executor.map(_service_fault_point, points)
    return {
        "sweep": [
            {"design": capacity.design, "workload": capacity.workload, **row}
            for row in rows
        ],
        "faults": _faults_block(fault_seed, schedules),
    }


def _nk_sizing_point(
    design: str,
    workload_name: str,
    k: int,
    target_qps: float,
    sla_p99_ms: float,
    server_mtbf_h: float,
    server_mttr_h: float,
    memory_gb: int,
    suite: WorkloadSuite,
) -> "dict[str, object]":
    """Size one design's N+k cluster (module-level: picklable)."""
    chip = build_service_chip(design, suite)
    sizer = ClusterSizer(DatacenterDesign(suite=suite), memory_gb=memory_gb)
    result = sizer.size_n_plus_k(
        chip,
        suite[workload_name],
        target_qps=target_qps,
        sla_p99_s=sla_p99_ms / 1e3,
        k=k,
        server_mtbf_h=server_mtbf_h,
        server_mttr_h=server_mttr_h,
    )
    return {
        "design": result.design,
        "workload": result.workload,
        "k": result.k,
        "base_servers": result.base_servers,
        "servers": result.servers,
        "racks": result.racks,
        "utilization": round(result.utilization, 3),
        "p99_ms": round(result.p99_s * 1e3, 3),
        "degraded_p99_ms": round(result.degraded_p99_s * 1e3, 3),
        "server_availability": round(result.server_availability, 6),
        "cluster_availability": round(result.cluster_availability, 9),
        "monthly_tco_usd": round(result.monthly_tco_usd, 0),
        "base_monthly_tco_usd": round(result.base_monthly_tco_usd, 0),
        "redundancy_overhead": round(result.redundancy_overhead, 4),
    }


def service_nk_sizing(
    target_qps: float = 1_000_000.0,
    sla_p99_ms: float = 25.0,
    workload: str = "Web Search",
    designs: Sequence[str] = SERVICE_DESIGNS,
    ks: Sequence[int] = (0, 1, 2, 4),
    server_mtbf_h: float = 4380.0,
    server_mttr_h: float = 4.0,
    memory_gb: int = 64,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "list[dict[str, object]]":
    """N+k redundancy sizing per design: TCO and availability versus ``k``.

    ``k = 0`` reduces to :func:`repro.experiments.service.service_cluster_sizing`'s
    answer exactly; each extra tolerated failure adds one server (monotone
    TCO) and multiplies down the probability of an SLA-violating outage.
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    points = [
        (
            design,
            workload,
            k,
            target_qps,
            sla_p99_ms,
            server_mtbf_h,
            server_mttr_h,
            memory_gb,
            suite,
        )
        for design in designs
        for k in ks
    ]
    return executor.map(_nk_sizing_point, points)


def _noc_fault_point(
    topology_name: str,
    cores: int,
    workload: WorkloadProfile,
    duration_cycles: int,
    seed: int,
    failed_links: int,
    degraded_links: int,
    schedule: FaultSchedule,
) -> "dict[str, object]":
    """Measure one faulted topology (module-level: picklable).

    The healthy topology comes from the shared per-process memo and is never
    mutated; :func:`apply_link_faults` returns it unchanged for the zero-fault
    point, so that row is byte-identical to the un-faulted NoC study.
    """
    study = PodNocStudy(cores=cores, duration_cycles=duration_cycles, seed=seed)
    topology = apply_link_faults(
        _cached_topology(topology_name, cores), schedule.link_faults
    )
    request_latency, packet_latency, hops, util = study.measure_latency(
        topology, workload
    )
    return {
        "topology": topology_name,
        "workload": workload.name,
        "failed_links": failed_links,
        "degraded_links": degraded_links,
        "links": topology.num_links,
        "request_latency_cycles": round(request_latency, 3),
        "packet_latency_cycles": round(packet_latency, 3),
        "average_hops": round(hops, 3),
        "system_ipc": round(study.system_performance(workload, request_latency), 3),
        "max_link_utilization": round(util, 4),
        "fault_events": schedule.num_events,
    }


def noc_fault_sweep(
    topology: str = "mesh",
    cores: int = 64,
    workload: str = "Web Search",
    failed_links: Sequence[int] = (0, 1, 2, 4, 8),
    degraded_links: int = 0,
    degradation_factor: float = 4.0,
    duration_cycles: int = 6_000,
    seed: int = 1,
    fault_seed: int = DEFAULT_FAULT_SEED,
    suite: "WorkloadSuite | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """NoC latency and system IPC as links fail and traffic reroutes.

    Each sweep point takes ``f`` links down (plus ``degraded_links`` slowed
    by ``degradation_factor``); the faulted topology drops the oblivious
    routing function and routes around missing links on weighted shortest
    paths.  A link whose removal would partition cores from LLC banks is
    heavily degraded instead of removed.
    """
    suite = suite or default_suite()
    executor = executor or SweepExecutor()
    profile = suite[workload]
    links = undirected_links(_cached_topology(topology, cores))
    schedules = [
        FaultLoadGenerator(
            FaultLoadConfig(
                num_failed_links=count,
                num_degraded_links=degraded_links if count > 0 else 0,
                link_degradation_factor=degradation_factor,
            ),
            seed=fault_seed,
        ).schedule(1, 1.0, links=links)
        for count in failed_links
    ]
    points = [
        (
            topology,
            cores,
            profile,
            duration_cycles,
            seed,
            count,
            degraded_links if count > 0 else 0,
            schedule,
        )
        for count, schedule in zip(failed_links, schedules)
    ]
    rows = executor.map(_noc_fault_point, points)
    return {
        "sweep": rows,
        "faults": _faults_block(fault_seed, schedules),
    }
