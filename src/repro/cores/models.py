"""Core microarchitecture models.

The paper evaluates three core types (Table 2.2):

* **conventional** -- an aggressive 4-wide server core with a 128-entry ROB,
  32-entry LSQ, and 64 KB L1 caches (Xeon class), 25 mm^2 and 11 W at 40nm;
* **ooo** -- a 3-wide out-of-order core with a 60-entry ROB and 16-entry LSQ,
  modelled after the ARM Cortex-A15, 4.5 mm^2 and 1 W at 40nm;
* **inorder** -- a 2-wide in-order core modelled after the ARM Cortex-A8,
  1.3 mm^2 and 0.48 W at 40nm.

All run at 2 GHz in every study.  The execution behaviour (base CPI, MLP) of a
core on a particular workload lives in the workload profiles; this module captures
the structural and physical attributes of the cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.components import ComponentCatalog
from repro.technology.node import NODE_40NM, TechnologyNode


@dataclass(frozen=True)
class CoreModel:
    """Structural description of a core microarchitecture.

    Attributes:
        name: short identifier used across the library ("conventional", "ooo",
            "inorder").
        display_name: human readable name for tables.
        issue_width: dispatch/retirement width.
        rob_entries: reorder-buffer capacity (0 for the in-order core).
        lsq_entries: load/store queue capacity.
        l1i_kb: L1 instruction cache capacity (KB).
        l1d_kb: L1 data cache capacity (KB).
        l1_latency_cycles: L1 load-to-use latency.
        l1_mshrs: outstanding-miss registers per L1.
        frequency_ghz: operating frequency.
        out_of_order: whether the core issues out of order.
    """

    name: str
    display_name: str
    issue_width: int
    rob_entries: int
    lsq_entries: int
    l1i_kb: int
    l1d_kb: int
    l1_latency_cycles: int
    l1_mshrs: int
    frequency_ghz: float = 2.0
    out_of_order: bool = True

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")

    # -------------------------------------------------------------- physical
    def area_mm2(self, node: TechnologyNode = NODE_40NM) -> float:
        """Core area (including L1 caches) at ``node``."""
        return ComponentCatalog(node).core(self.name).area_mm2

    def power_w(self, node: TechnologyNode = NODE_40NM) -> float:
        """Peak core power at ``node``."""
        return ComponentCatalog(node).core(self.name).power_w

    @property
    def max_outstanding_misses(self) -> int:
        """Maximum memory requests the core can have in flight (simulator limit)."""
        if not self.out_of_order:
            return max(1, self.l1_mshrs // 8)
        return max(1, self.lsq_entries // 2)


#: Aggressive conventional server core (Table 2.2, "Conventional").
CONVENTIONAL = CoreModel(
    name="conventional",
    display_name="Conventional (4-wide OoO)",
    issue_width=4,
    rob_entries=128,
    lsq_entries=32,
    l1i_kb=64,
    l1d_kb=64,
    l1_latency_cycles=3,
    l1_mshrs=32,
    out_of_order=True,
)

#: Cortex-A15-class out-of-order core (Table 2.2, "Out-of-order").
OOO = CoreModel(
    name="ooo",
    display_name="OoO (3-wide, A15-class)",
    issue_width=3,
    rob_entries=60,
    lsq_entries=16,
    l1i_kb=32,
    l1d_kb=32,
    l1_latency_cycles=2,
    l1_mshrs=32,
    out_of_order=True,
)

#: Cortex-A8-class in-order core (Table 2.2, "In-order").
INORDER = CoreModel(
    name="inorder",
    display_name="In-order (2-wide, A8-class)",
    issue_width=2,
    rob_entries=0,
    lsq_entries=8,
    l1i_kb=32,
    l1d_kb=32,
    l1_latency_cycles=2,
    l1_mshrs=32,
    out_of_order=False,
)

#: All core models keyed by canonical name.
CORE_TYPES: "dict[str, CoreModel]" = {
    "conventional": CONVENTIONAL,
    "ooo": OOO,
    "inorder": INORDER,
}

_ALIASES = {
    "conv": "conventional",
    "out-of-order": "ooo",
    "out_of_order": "ooo",
    "io": "inorder",
    "in-order": "inorder",
    "in_order": "inorder",
}


def core_model(name: "str | CoreModel") -> CoreModel:
    """Resolve a core model from a name or pass through an existing model."""
    if isinstance(name, CoreModel):
        return name
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return CORE_TYPES[key]
    except KeyError:
        raise KeyError(f"unknown core type {name!r}; known: {sorted(CORE_TYPES)}") from None
