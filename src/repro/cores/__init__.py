"""Core microarchitecture models (conventional, out-of-order, in-order)."""

from repro.cores.models import (
    CoreModel,
    CONVENTIONAL,
    OOO,
    INORDER,
    core_model,
    CORE_TYPES,
)

__all__ = ["CoreModel", "CONVENTIONAL", "OOO", "INORDER", "core_model", "CORE_TYPES"]
