"""Fleet-scale traffic simulation: geo-routing, diurnal load, autoscaling.

The fleet layer composes the single-cluster service engine into a
multi-datacenter simulation (chapter 10): :class:`Datacenter` sites pinned to
:class:`Region` coordinates, :mod:`geo-routing <repro.fleet.routing>` policies
splitting regional demand, :class:`LoadShape` diurnal/bursty modulation over
the day, prioritized :class:`RequestClass` mixes, and reactive
:mod:`autoscaling <repro.fleet.autoscale>` graded on monthly TCO vs SLA
attainment.  The fast and event engines stay bit-identical -- the property
suite in ``tests/test_fleet_equivalence.py`` enforces it.  Semantics and the
determinism contract are documented in ``docs/fleet.md``.
"""

from repro.fleet.autoscale import (
    AUTOSCALE_POLICIES,
    Autoscaler,
    EpochObservation,
    QueueDepthPolicy,
    ScalingPolicy,
    StaticPolicy,
    TargetUtilizationPolicy,
    make_policy,
)
from repro.fleet.engine import FleetConfig, FleetSimulation, simulate_fleet
from repro.fleet.geo import (
    DEFAULT_BASE_LATENCY_S,
    DEFAULT_LATENCY_PER_UNIT_S,
    Datacenter,
    Region,
    network_latency_s,
)
from repro.fleet.loadshape import DIURNAL_24, FLASH_CROWD_24, LoadShape
from repro.fleet.metrics import (
    MONTH_HOURS,
    EpochDatacenterStats,
    FleetResult,
    LatencyHistogram,
)
from repro.fleet.routing import (
    DEFAULT_CLASSES,
    DEFAULT_SPILL_THRESHOLD,
    ROUTING_POLICIES,
    RequestClass,
    latency_rank,
    route_demand,
)
from repro.fleet.traffic import (
    TrafficChunk,
    chunk_rng,
    generate_chunk,
    mmpp_arrival_times,
    poisson_arrival_times,
    routing_seed,
    service_times,
)

__all__ = [
    "AUTOSCALE_POLICIES",
    "Autoscaler",
    "DEFAULT_BASE_LATENCY_S",
    "DEFAULT_CLASSES",
    "DEFAULT_LATENCY_PER_UNIT_S",
    "DEFAULT_SPILL_THRESHOLD",
    "DIURNAL_24",
    "Datacenter",
    "EpochDatacenterStats",
    "EpochObservation",
    "FLASH_CROWD_24",
    "FleetConfig",
    "FleetResult",
    "FleetSimulation",
    "LatencyHistogram",
    "LoadShape",
    "MONTH_HOURS",
    "QueueDepthPolicy",
    "ROUTING_POLICIES",
    "Region",
    "RequestClass",
    "ScalingPolicy",
    "StaticPolicy",
    "TargetUtilizationPolicy",
    "TrafficChunk",
    "chunk_rng",
    "generate_chunk",
    "latency_rank",
    "make_policy",
    "mmpp_arrival_times",
    "network_latency_s",
    "poisson_arrival_times",
    "route_demand",
    "routing_seed",
    "service_times",
    "simulate_fleet",
]
