"""The fleet simulation engine: a multi-datacenter day over the service core.

A :class:`FleetSimulation` runs ``num_epochs`` epochs of a fleet day.  Each
epoch is a fluid-then-discrete step:

1. the :mod:`load shape <repro.fleet.loadshape>` sets the epoch's offered
   rate, and the :mod:`autoscaler <repro.fleet.autoscale>` (if any) picks
   each datacenter's server count from the previous epoch's observations;
2. the :mod:`routing policy <repro.fleet.routing>` splits each prioritized
   (class, origin) demand into per-datacenter fluid shares;
3. the :mod:`traffic generator <repro.fleet.traffic>` realizes each
   datacenter's merged request stream with seeded vectorized draws;
4. the service kernels simulate each datacenter-epoch chunk to completion.

**Determinism contract.** Both engines consume identical generated arrays and
compute completion times with identical float expressions, so results are
bitwise equal: the fast path runs the :func:`~repro.service.cluster.
fcfs_completion_times` / :func:`~repro.service.cluster.
balanced_completion_times` kernels, the event path replays the same chunks
through :class:`~repro.sim.engine.EventQueue`-driven servers.  Epochs are
*stateless*: each chunk starts from an empty cluster and runs to completion,
so overload shows up as intra-epoch queueing (utilization above 1.0) rather
than cross-epoch backlog -- the approximation is documented in
``docs/fleet.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.autoscale import Autoscaler, EpochObservation, make_policy
from repro.fleet.geo import Datacenter, Region, network_latency_s
from repro.fleet.loadshape import LoadShape
from repro.fleet.metrics import (
    EpochDatacenterStats,
    FleetResult,
    LatencyHistogram,
)
from repro.fleet.routing import (
    DEFAULT_CLASSES,
    DEFAULT_SPILL_THRESHOLD,
    ROUTING_POLICIES,
    RequestClass,
    route_demand,
)
from repro.fleet.traffic import TrafficChunk, generate_chunk, routing_seed
from repro.service.cluster import (
    FAST_POLICIES,
    STATE_FREE_POLICIES,
    balanced_completion_times,
    fcfs_completion_times,
)
from repro.service.queueing import Request, RequestServer
from repro.sim.engine import EventQueue

_ENGINES = ("auto", "fast", "event")


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of one fleet-day simulation.

    Attributes:
        datacenters: the fleet's sites (each a cluster pinned to a region).
        offered_qps: fleet-wide mean arrival rate (the load shape modulates
            it per epoch; shapes are mean-1.0 so this is the day's average).
        classes: the prioritized request mix (fractions must sum to 1).
        routing: geo-routing policy (see ``ROUTING_POLICIES``).
        load_shape: per-epoch rate multipliers; ``None`` (or the empty
            shape) is the stationary baseline.
        num_epochs: epochs to simulate; defaults to the shape's trace length
            (or 24 for the stationary baseline).
        arrival: per-share arrival process (``"poisson"`` or ``"mmpp"``).
        arrival_kwargs: extra MMPP parameters (burstiness, ...).
        origin_weights: share of fleet demand originating at each
            datacenter's region (normalized internally; default uniform).
        spill_threshold: capacity headroom fraction for ``spillover``.
        autoscale: autoscaling policy name (``AUTOSCALE_POLICIES``) or
            ``None`` for a statically provisioned day.
        autoscale_kwargs: policy parameters (target, band, ...).
        cooldown_epochs: autoscaler cooldown window.
        autoscale_floors: optional per-datacenter server floors (N+k).
    """

    datacenters: "tuple[Datacenter, ...]"
    offered_qps: float
    classes: "tuple[RequestClass, ...]" = DEFAULT_CLASSES
    routing: str = "nearest"
    load_shape: "LoadShape | None" = None
    num_epochs: "int | None" = None
    arrival: str = "poisson"
    arrival_kwargs: "dict[str, float]" = field(default_factory=dict)
    origin_weights: "tuple[float, ...] | None" = None
    spill_threshold: float = DEFAULT_SPILL_THRESHOLD
    autoscale: "str | None" = None
    autoscale_kwargs: "dict[str, float]" = field(default_factory=dict)
    cooldown_epochs: int = 2
    autoscale_floors: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        if not self.datacenters:
            raise ValueError("a fleet needs at least one datacenter")
        if self.offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        if not self.classes:
            raise ValueError("a fleet needs at least one request class")
        if abs(sum(cls.fraction for cls in self.classes) - 1.0) > 1e-6:
            raise ValueError("class fractions must sum to 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; known: {ROUTING_POLICIES}"
            )
        if any(dc.policy not in FAST_POLICIES for dc in self.datacenters):
            raise ValueError(
                f"datacenter policies must be fast-capable: {FAST_POLICIES}"
            )
        if self.origin_weights is not None:
            if len(self.origin_weights) != len(self.datacenters):
                raise ValueError("origin_weights must give one weight per datacenter")
            if any(w < 0 for w in self.origin_weights) or sum(self.origin_weights) <= 0:
                raise ValueError("origin_weights must be non-negative with mass")
        if self.num_epochs is not None and self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")

    @property
    def shape(self) -> LoadShape:
        """The effective load shape (the empty/stationary one when unset)."""
        return self.load_shape if self.load_shape is not None else LoadShape()

    @property
    def epochs(self) -> int:
        """Epochs the day simulates."""
        if self.num_epochs is not None:
            return self.num_epochs
        return self.shape.num_epochs or 24

    @property
    def epoch_s(self) -> float:
        """Epoch width in seconds (from the shape)."""
        return self.shape.epoch_s

    @property
    def origins(self) -> "tuple[Region, ...]":
        """Traffic origins: one per datacenter's region."""
        return tuple(dc.region for dc in self.datacenters)

    def normalized_origin_weights(self) -> "tuple[float, ...]":
        """Origin demand shares, normalized to sum to 1."""
        if self.origin_weights is None:
            return (1.0 / len(self.datacenters),) * len(self.datacenters)
        total = sum(self.origin_weights)
        return tuple(w / total for w in self.origin_weights)

    def capacity_qps(self) -> float:
        """Fleet-wide saturation throughput at the deployed server counts."""
        return sum(dc.capacity_qps() for dc in self.datacenters)


class FleetSimulation:
    """One simulated fleet day, runnable on the fast or the event engine.

    ``engine="auto"`` (default) always resolves to the fast kernels -- every
    datacenter policy is fast-capable by construction; ``engine="event"`` is
    the reference escape hatch the equivalence suite compares against.
    ``collect_samples=True`` additionally keeps exact per-class latency
    sample tuples (small runs only; the day-scale path sticks to histograms).
    """

    def __init__(
        self,
        config: FleetConfig,
        seed: int = 1,
        engine: str = "auto",
        collect_samples: bool = False,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.config = config
        self.seed = seed
        self.engine = engine
        self.collect_samples = collect_samples

    def resolved_engine(self) -> str:
        """The engine ("fast" or "event") this simulation will run on."""
        return "fast" if self.engine in ("auto", "fast") else "event"

    # ------------------------------------------------------------ allocation
    def _allocate_epoch(
        self, epoch_qps: float, capacities: "list[float]"
    ) -> "list[list[tuple[int, int, float]]]":
        """Fluid routing of one epoch's demand: shares per datacenter.

        Classes are processed in (priority, declaration) order and origins in
        declaration order, so ``spillover``'s running allocation -- and the
        order chunks are generated and merged in -- is deterministic.
        """
        config = self.config
        origins = config.origins
        weights = config.normalized_origin_weights()
        allocated = [0.0] * len(config.datacenters)
        shares: "list[list[tuple[int, int, float]]]" = [
            [] for _ in config.datacenters
        ]
        order = sorted(
            range(len(config.classes)),
            key=lambda c: (config.classes[c].priority, c),
        )
        for class_index in order:
            cls = config.classes[class_index]
            for origin_index, weight in enumerate(weights):
                demand = epoch_qps * cls.fraction * weight
                if demand <= 0:
                    continue
                for dc_index, qps in route_demand(
                    config.routing,
                    origins[origin_index],
                    demand,
                    config.datacenters,
                    capacities,
                    allocated,
                    config.spill_threshold,
                ):
                    shares[dc_index].append((class_index, origin_index, qps))
        return shares

    # ------------------------------------------------------------- kernels
    def _fast_chunk(
        self, chunk: TrafficChunk, datacenter: Datacenter, servers: int, rseed: int
    ) -> np.ndarray:
        """Completion times of one chunk on the fast kernels."""
        arrivals = chunk.arrivals.tolist()
        services = chunk.services.tolist()
        if datacenter.policy in STATE_FREE_POLICIES:
            if datacenter.policy == "round_robin":
                assignment = [i % servers for i in range(len(arrivals))]
            else:
                rng = random.Random(rseed)
                assignment = [rng.randrange(servers) for _ in arrivals]
            completions = fcfs_completion_times(
                arrivals, services, assignment, servers, datacenter.parallelism
            )
        else:
            completions, _ = balanced_completion_times(
                arrivals,
                services,
                datacenter.policy,
                servers,
                datacenter.parallelism,
                random.Random(rseed),
            )
        return np.array(completions, dtype=np.float64)

    def _event_chunk(
        self, chunk: TrafficChunk, datacenter: Datacenter, servers: int, rseed: int
    ) -> np.ndarray:
        """Completion-derived latencies of one chunk on the event engine.

        Returns completion times reconstructed as ``arrival + latency`` would
        be circular; instead the recorder captures the event engine's
        ``now - arrival`` at each completion, and the caller treats the
        returned array exactly like ``completions - arrivals`` -- the two are
        bitwise equal because the event engine's ``now`` at a completion *is*
        the fast recurrence's ``start + service`` float.
        """
        from repro.service.balancer import make_balancer

        engine = EventQueue()
        recorder = _ChunkRecorder(chunk.count)
        stations = [
            RequestServer(i, datacenter.parallelism, engine, recorder)
            for i in range(servers)
        ]
        balancer = make_balancer(datacenter.policy)
        routing_rng = random.Random(rseed)
        requests = [
            Request(index=index, arrival_s=arrival, service_s=service)
            for index, (arrival, service) in enumerate(
                zip(chunk.arrivals.tolist(), chunk.services.tolist())
            )
        ]
        for request in requests:
            engine.schedule_at(
                request.arrival_s,
                lambda request=request: stations[
                    balancer.select(stations, routing_rng)
                ].offer(request),
            )
        engine.run()
        return np.array(recorder.latencies, dtype=np.float64)

    # ------------------------------------------------------------------ run
    def run(self) -> FleetResult:
        """Simulate the configured day and aggregate its metrics."""
        from repro.obs.tracer import get_tracer

        config = self.config
        engine = self.resolved_engine()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter(f"fleet.engine.{engine}").add()
        with tracer.span(
            "fleet.day",
            category="fleet",
            engine=engine,
            datacenters=len(config.datacenters),
            epochs=config.epochs,
            routing=config.routing,
        ):
            return self._run(engine, tracer)

    def _run(self, engine: str, tracer) -> FleetResult:
        config = self.config
        shape = config.shape
        epoch_s = config.epoch_s
        datacenters = config.datacenters
        autoscaler = None
        if config.autoscale is not None:
            autoscaler = Autoscaler(
                make_policy(config.autoscale, **config.autoscale_kwargs),
                datacenters,
                cooldown_epochs=config.cooldown_epochs,
                floors=config.autoscale_floors,
            )
        # Network latency per (datacenter, origin), added to end-to-end
        # latency with one vectorized gather per chunk on both engines.
        net = [
            np.array(
                [
                    network_latency_s(origin, dc.region)
                    for origin in config.origins
                ],
                dtype=np.float64,
            )
            for dc in datacenters
        ]
        scales = tuple(cls.service_scale for cls in config.classes)

        servers = [dc.num_servers for dc in datacenters]
        observed: "list[EpochObservation | None]" = [None] * len(datacenters)
        epoch_stats: "list[EpochDatacenterStats]" = []
        class_hists = {cls.name: LatencyHistogram() for cls in config.classes}
        dc_hists = {dc.name: LatencyHistogram() for dc in datacenters}
        samples: "dict[str, list[np.ndarray]] | None" = (
            {cls.name: [] for cls in config.classes} if self.collect_samples else None
        )
        server_hours = {dc.name: 0.0 for dc in datacenters}
        scale_events = {dc.name: 0 for dc in datacenters}
        total_requests = 0
        network_sum_s = 0.0

        for epoch in range(config.epochs):
            if tracer.enabled:
                tracer.counter("fleet.epochs").add()
            epoch_qps = config.offered_qps * shape.multiplier(epoch)
            if autoscaler is not None and epoch > 0:
                for index, datacenter in enumerate(datacenters):
                    if observed[index] is None:
                        continue
                    planned = autoscaler.plan(
                        epoch, index, servers[index], observed[index]
                    )
                    if planned != servers[index]:
                        scale_events[datacenter.name] += 1
                        if tracer.enabled:
                            direction = "up" if planned > servers[index] else "down"
                            tracer.counter(f"fleet.scale_{direction}").add()
                        servers[index] = planned
            capacities = [
                dc.capacity_qps(servers[index])
                for index, dc in enumerate(datacenters)
            ]
            shares = self._allocate_epoch(epoch_qps, capacities)
            for index, datacenter in enumerate(datacenters):
                server_hours[datacenter.name] += servers[index] * epoch_s / 3600.0
                chunk = generate_chunk(
                    self.seed,
                    epoch,
                    index,
                    shares[index],
                    epoch_s,
                    config.arrival,
                    config.arrival_kwargs,
                    datacenter.service_mean_s,
                    datacenter.service_distribution,
                    scales,
                )
                stats = EpochDatacenterStats(
                    epoch=epoch,
                    datacenter=datacenter.name,
                    servers=servers[index],
                    offered_qps=chunk.offered_qps,
                    requests=chunk.count,
                    busy_s=float(chunk.services.sum()) if chunk.count else 0.0,
                )
                if chunk.count:
                    rseed = routing_seed(self.seed, epoch, index)
                    if engine == "fast":
                        completions = self._fast_chunk(
                            chunk, datacenter, servers[index], rseed
                        )
                        latencies = completions - chunk.arrivals
                    else:
                        latencies = self._event_chunk(
                            chunk, datacenter, servers[index], rseed
                        )
                    network = net[index][chunk.origin_ids]
                    network_sum_s += float(network.sum())
                    latencies = latencies + network
                    stats.histogram.add_batch(latencies)
                    dc_hists[datacenter.name].add_batch(latencies)
                    for class_index, cls in enumerate(config.classes):
                        mask = chunk.class_ids == class_index
                        if mask.any():
                            class_latencies = latencies[mask]
                            class_hists[cls.name].add_batch(class_latencies)
                            if samples is not None:
                                samples[cls.name].append(class_latencies)
                    total_requests += chunk.count
                    if tracer.enabled:
                        tracer.counter("fleet.requests").add(chunk.count)
                observed[index] = EpochObservation(
                    offered_qps=chunk.offered_qps,
                    completed_requests=chunk.count,
                    mean_latency_s=(
                        stats.histogram.mean_s if chunk.count else float("nan")
                    ),
                    utilization=stats.utilization(datacenter.parallelism, epoch_s),
                )
                epoch_stats.append(stats)

        class_samples = None
        if samples is not None:
            class_samples = {
                name: tuple(
                    np.sort(np.concatenate(parts)).tolist() if parts else ()
                )
                for name, parts in samples.items()
            }
        return FleetResult(
            total_requests=total_requests,
            epoch_stats=epoch_stats,
            class_histograms=class_hists,
            datacenter_histograms=dc_hists,
            class_samples=class_samples,
            server_hours=server_hours,
            scale_events=scale_events,
            network_sum_s=network_sum_s,
            engine=engine,
        )


class _ChunkRecorder:
    """Collector duck-type capturing per-request latency by request index."""

    def __init__(self, count: int):
        self.latencies = [0.0] * count

    def record(self, request_index: int, server_id: int, latency_s: float) -> None:
        """Store one completed request's latency (event-engine callback)."""
        self.latencies[request_index] = latency_s


def simulate_fleet(
    config: FleetConfig,
    seed: int = 1,
    engine: str = "auto",
    collect_samples: bool = False,
) -> FleetResult:
    """Convenience wrapper: build and run one fleet-day simulation."""
    return FleetSimulation(
        config, seed=seed, engine=engine, collect_samples=collect_samples
    ).run()
