"""Fleet geography: regions, datacenters, and inter-region network latency.

A :class:`Region` is a point on an abstract plane whose unit of distance is
"one thousand kilometres of fibre": the network latency between two regions is
a fixed per-hop base (serialization, last-mile) plus a propagation term linear
in the Euclidean distance.  A :class:`Datacenter` pins one service cluster --
the same (servers x parallelism x service-time) G/G/k fabric the chapter-7
studies simulate -- to a region and prices it for the monthly-TCO accounting
the autoscaling studies grade.

Everything here is frozen and float-deterministic: network latency is computed
once per (origin, datacenter) pair and added to request latencies with the
same numpy expression on both simulation engines, so it never perturbs the
fast-vs-event bit-identity contract (see ``docs/fleet.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Fixed per-request network overhead between any two distinct regions (s).
DEFAULT_BASE_LATENCY_S = 0.0005

#: Propagation latency per unit of inter-region distance (s / distance-unit).
DEFAULT_LATENCY_PER_UNIT_S = 0.004


@dataclass(frozen=True)
class Region:
    """A traffic origin / datacenter site on the fleet's latency plane.

    Attributes:
        name: human-readable region name (``"us-east"``).
        x: first plane coordinate (thousands of km).
        y: second plane coordinate (thousands of km).
    """

    name: str
    x: float = 0.0
    y: float = 0.0

    def distance_to(self, other: "Region") -> float:
        """Euclidean distance to ``other`` in plane units."""
        return math.hypot(self.x - other.x, self.y - other.y)


def network_latency_s(
    origin: Region,
    destination: Region,
    base_s: float = DEFAULT_BASE_LATENCY_S,
    per_unit_s: float = DEFAULT_LATENCY_PER_UNIT_S,
) -> float:
    """One-way request network latency between two regions (seconds).

    Zero within a region (the request never leaves the building's fabric);
    otherwise ``base_s + per_unit_s * distance``.
    """
    if origin == destination:
        return 0.0
    return base_s + per_unit_s * origin.distance_to(destination)


@dataclass(frozen=True)
class Datacenter:
    """One datacenter: a service cluster pinned to a region, with a price tag.

    Attributes:
        name: datacenter name (``"dc-east"``).
        region: the region the datacenter (and its egress latency) lives in.
        num_servers: initially deployed servers (autoscaling moves this
            between ``min_servers`` and ``max_servers`` at epoch boundaries).
        parallelism: service units per server (usable cores).
        service_mean_s: mean per-request service time of one unit.
        policy: intra-datacenter load-balancing policy (any fast-engine
            policy: ``jsq``, ``po2``, ``random``, ``round_robin``).
        service_distribution: per-request work distribution
            (``"exponential"`` or ``"deterministic"``).
        server_cost_monthly_usd: fully burdened monthly cost of one server
            (capex amortization + power + cooling), for the TCO grading.
        min_servers: autoscaling floor (the scale-to-zero guard clamps this
            to at least 1 -- a datacenter never disappears mid-day).
        max_servers: autoscaling ceiling; ``None`` means unbounded.
    """

    name: str
    region: Region
    num_servers: int
    parallelism: int
    service_mean_s: float
    policy: str = "jsq"
    service_distribution: str = "exponential"
    server_cost_monthly_usd: float = 280.0
    min_servers: int = 1
    max_servers: "int | None" = None

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.service_mean_s <= 0:
            raise ValueError("service_mean_s must be positive")
        if self.server_cost_monthly_usd < 0:
            raise ValueError("server_cost_monthly_usd must be >= 0")
        if self.min_servers < 1:
            raise ValueError("min_servers must be >= 1 (scale-to-zero guard)")
        if self.max_servers is not None and self.max_servers < self.min_servers:
            raise ValueError("max_servers must be >= min_servers")
        if self.num_servers < self.min_servers:
            raise ValueError("num_servers must be >= min_servers")

    def capacity_qps(self, servers: "int | None" = None) -> float:
        """Saturation throughput with ``servers`` deployed (default current)."""
        count = self.num_servers if servers is None else servers
        return count * self.parallelism / self.service_mean_s
