"""Geo-routing: splitting regional demand across the fleet's datacenters.

Routing is a per-epoch *fluid* decision: given each (request class, origin
region) demand in QPS and the capacity each datacenter deploys this epoch,
a policy produces the share of that demand each datacenter serves.  The
simulated arrival streams are then generated per (datacenter, class, origin)
share, so routing never touches the per-request fast/event kernels -- the
determinism contract stays intact.

Three policies cover the design space:

* ``nearest`` -- every region sends all traffic to its lowest-latency
  datacenter; minimal network latency, no load awareness.
* ``latency_weighted`` -- demand splits across all datacenters proportionally
  to inverse network latency (plus one base hop so the local site stays
  finite); load-oblivious but spreads work.
* ``spillover`` -- fill the nearest datacenter up to a headroom threshold of
  its capacity, overflow to the next nearest, and so on; request classes are
  processed in priority order, so interactive traffic claims the close-by
  capacity before batch does.

:class:`RequestClass` declares the traffic mix: each class carries a share of
the offered load, a scheduling priority (routing order), a service-time
scale, and the p99 SLA it is graded against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.geo import Datacenter, Region, network_latency_s

#: The geo-routing policies the fleet engine accepts.
ROUTING_POLICIES = ("nearest", "latency_weighted", "spillover")

#: Headroom fraction of a datacenter's capacity that ``spillover`` fills
#: before overflowing to the next-nearest site.
DEFAULT_SPILL_THRESHOLD = 0.75


@dataclass(frozen=True)
class RequestClass:
    """One prioritized traffic class in the fleet's request mix.

    Attributes:
        name: class name (``"interactive"``).
        fraction: share of the fleet's offered load this class carries.
        priority: routing order -- lower values claim capacity first under
            ``spillover`` (ties broken by declaration order).
        service_scale: multiplier on the datacenter's mean service time
            (batch work is heavier than an interactive lookup).
        sla_p99_ms: the p99 latency objective the class is graded against.
    """

    name: str
    fraction: float
    priority: int = 0
    service_scale: float = 1.0
    sla_p99_ms: float = 100.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.service_scale <= 0:
            raise ValueError("service_scale must be positive")
        if self.sla_p99_ms <= 0:
            raise ValueError("sla_p99_ms must be positive")


#: The default two-class mix: latency-sensitive interactive traffic plus a
#: lower-priority batch tail with 4x the per-request work.
DEFAULT_CLASSES = (
    RequestClass("interactive", fraction=0.8, priority=0, service_scale=1.0,
                 sla_p99_ms=60.0),
    RequestClass("batch", fraction=0.2, priority=1, service_scale=4.0,
                 sla_p99_ms=400.0),
)


def latency_rank(origin: Region, datacenters: "tuple[Datacenter, ...]") -> "list[int]":
    """Datacenter indices sorted by network latency from ``origin``.

    Ties (two sites in the same region) break by datacenter index, so the
    ranking -- and everything routed through it -- is deterministic.
    """
    return sorted(
        range(len(datacenters)),
        key=lambda i: (network_latency_s(origin, datacenters[i].region), i),
    )


def route_demand(
    policy: str,
    origin: Region,
    demand_qps: float,
    datacenters: "tuple[Datacenter, ...]",
    capacities_qps: "list[float]",
    allocated_qps: "list[float]",
    spill_threshold: float = DEFAULT_SPILL_THRESHOLD,
) -> "list[tuple[int, float]]":
    """Split one (class, origin) demand across datacenters under ``policy``.

    Args:
        policy: one of :data:`ROUTING_POLICIES`.
        origin: the region the demand originates from.
        demand_qps: the demand to place (QPS).
        datacenters: the fleet's sites.
        capacities_qps: this epoch's deployed capacity per datacenter.
        allocated_qps: running per-datacenter allocation for this epoch;
            ``spillover`` reads *and updates* it, so earlier (higher-
            priority) calls shape later ones.  The other policies leave
            their accounting to the caller-visible update done here too.
        spill_threshold: headroom fraction ``spillover`` fills per site.

    Returns:
        ``(datacenter_index, qps)`` pairs with positive shares summing to
        ``demand_qps`` (to float rounding).
    """
    if policy not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {policy!r}; known: {ROUTING_POLICIES}"
        )
    if demand_qps < 0:
        raise ValueError("demand_qps must be >= 0")
    shares: "list[tuple[int, float]]" = []
    if demand_qps == 0:
        return shares
    rank = latency_rank(origin, datacenters)
    if policy == "nearest":
        shares = [(rank[0], demand_qps)]
    elif policy == "latency_weighted":
        # One base-hop offset keeps the local (zero-latency) site finite.
        weights = [
            1.0 / (network_latency_s(origin, datacenters[i].region) + 0.0005)
            for i in range(len(datacenters))
        ]
        total = sum(weights)
        shares = [
            (i, demand_qps * weights[i] / total) for i in range(len(datacenters))
        ]
    else:  # spillover
        remaining = demand_qps
        for position, index in enumerate(rank):
            if remaining <= 0:
                break
            headroom = spill_threshold * capacities_qps[index] - allocated_qps[index]
            last = position == len(rank) - 1
            # The farthest site absorbs whatever is left: demand is open-loop
            # and must land somewhere, threshold or not.
            take = remaining if last else min(remaining, max(0.0, headroom))
            if take > 0:
                shares.append((index, take))
                remaining -= take
    for index, qps in shares:
        allocated_qps[index] += qps
    return shares
