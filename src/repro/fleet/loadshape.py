"""Trace-driven load shapes: diurnal and flash-crowd arrival modulation.

A :class:`LoadShape` is a piecewise-constant multiplier trace over fixed-width
epochs: epoch ``e`` of a fleet day offers ``offered_qps * multiplier(e)``.
Shapes built through :meth:`LoadShape.from_trace` are normalized so the
multipliers average exactly 1.0 -- a shaped day offers the same total load as
the stationary baseline, so cost comparisons across shapes are apples to
apples.

The *empty* shape is the stationary baseline: ``multiplier()`` is 1.0 for
every epoch, and the fleet engine's contract (enforced byte-for-byte by the
equivalence suite) is that an empty shape produces results identical to a
flat all-ones trace of any length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LoadShape:
    """A per-epoch arrival-rate multiplier trace.

    Attributes:
        multipliers: one non-negative multiplier per epoch; empty means the
            stationary baseline (every epoch at exactly 1.0).
        epoch_s: width of one epoch in seconds.
    """

    multipliers: "tuple[float, ...]" = ()
    epoch_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if any(m < 0 or not math.isfinite(m) for m in self.multipliers):
            raise ValueError("multipliers must be finite and non-negative")

    @classmethod
    def from_trace(
        cls, values: "Sequence[float]", epoch_s: float = 3600.0
    ) -> "LoadShape":
        """Build a shape from a raw trace, normalized to mean exactly 1.0.

        ``values`` can be any non-negative load signal (requests per epoch
        from a production log, a synthetic curve); only its *shape* survives
        normalization, so the fleet's ``offered_qps`` stays the day's mean.
        """
        values = tuple(float(v) for v in values)
        if not values:
            raise ValueError("a trace needs at least one epoch")
        mean = sum(values) / len(values)
        if mean <= 0:
            raise ValueError("a trace must carry some load")
        return cls(
            multipliers=tuple(v / mean for v in values), epoch_s=epoch_s
        )

    @classmethod
    def flat(cls, num_epochs: int, epoch_s: float = 3600.0) -> "LoadShape":
        """An explicit all-ones trace (equals the empty shape byte-for-byte)."""
        if num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        return cls(multipliers=(1.0,) * num_epochs, epoch_s=epoch_s)

    @property
    def num_epochs(self) -> int:
        """Trace length; 0 for the stationary (empty) shape."""
        return len(self.multipliers)

    def multiplier(self, epoch: int) -> float:
        """The rate multiplier of ``epoch`` (1.0 beyond or without a trace)."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        if epoch < len(self.multipliers):
            return self.multipliers[epoch]
        return 1.0

    @property
    def peak_epoch(self) -> int:
        """Epoch index with the largest multiplier (0 for the empty shape)."""
        if not self.multipliers:
            return 0
        return max(range(len(self.multipliers)), key=lambda e: (self.multipliers[e], -e))

    @property
    def trough_epoch(self) -> int:
        """Epoch index with the smallest multiplier (0 for the empty shape)."""
        if not self.multipliers:
            return 0
        return min(range(len(self.multipliers)), key=lambda e: (self.multipliers[e], e))


#: A 24-epoch diurnal curve: quiet overnight trough, morning ramp, evening
#: peak near 2x the mean -- the classic consumer-service daily cycle.
DIURNAL_24 = LoadShape.from_trace(
    tuple(
        1.0 + 0.75 * math.sin((hour - 8.0) * math.pi / 12.0)
        for hour in range(24)
    )
)

#: A 24-epoch flash-crowd trace: a stationary day with a 3-hour spike at
#: ~2.6x the mean (epochs 12-14) -- the event the spillover and autoscaling
#: policies exist for.
FLASH_CROWD_24 = LoadShape.from_trace(
    tuple(0.85 if not 12 <= hour <= 14 else 3.0 for hour in range(24))
)
