"""Fleet metrics: mergeable log-binned latency histograms and day results.

A simulated high-load day holds ~10^8 request latencies -- far too many to
keep as samples.  :class:`LatencyHistogram` bins latencies on a logarithmic
grid (64 bins per decade from 10 microseconds to 1000 seconds), which bounds
the percentile error to under ~1.9% of the value per query while costing a
fixed ~45 KB regardless of request count.  Histograms merge associatively,
so per-chunk accumulation is order-independent and the fast and event engines
-- which feed identical latency arrays -- produce identical histograms.

:class:`FleetResult` aggregates a day: per-(epoch, datacenter) rows with
deployed servers and tail latency, per-class SLA attainment, autoscaling
activity, and the monthly-TCO projection the cost-vs-SLA studies grade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Histogram grid: log-spaced bin edges covering 1e-5 s .. 1e3 s.
_DECADE_LOW = -5
_DECADE_HIGH = 3
_BINS_PER_DECADE = 64


def _edges() -> np.ndarray:
    """The shared log-spaced bin-edge grid (computed once)."""
    return np.logspace(
        _DECADE_LOW,
        _DECADE_HIGH,
        (_DECADE_HIGH - _DECADE_LOW) * _BINS_PER_DECADE + 1,
    )


_EDGES = _edges()


class LatencyHistogram:
    """A mergeable log-binned latency distribution.

    Counts land in fixed log-spaced bins (plus underflow/overflow slots);
    the exact sum, maximum, and count ride along so the mean is exact and
    only the percentiles are binned approximations.
    """

    __slots__ = ("counts", "underflow", "overflow", "total", "sum_s", "max_s")

    def __init__(self) -> None:
        self.counts = np.zeros(_EDGES.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def add_batch(self, latencies: np.ndarray) -> None:
        """Accumulate one latency array (seconds, non-negative)."""
        if latencies.size == 0:
            return
        counts, _ = np.histogram(latencies, bins=_EDGES)
        self.counts += counts
        self.underflow += int(np.count_nonzero(latencies < _EDGES[0]))
        self.overflow += int(np.count_nonzero(latencies >= _EDGES[-1]))
        self.total += int(latencies.size)
        self.sum_s += float(latencies.sum())
        self.max_s = max(self.max_s, float(latencies.max()))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (associative, commutative)."""
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total += other.total
        self.sum_s += other.sum_s
        self.max_s = max(self.max_s, other.max_s)

    @property
    def count(self) -> int:
        """Total recorded latencies."""
        return self.total

    @property
    def mean_s(self) -> float:
        """Exact mean latency (``nan`` when empty)."""
        if self.total == 0:
            return float("nan")
        return self.sum_s / self.total

    def percentile(self, fraction: float) -> float:
        """Approximate latency quantile (``nan`` when empty).

        Locates the bin holding the target order statistic and interpolates
        linearly within it; underflow resolves to the grid floor and overflow
        to the exact maximum.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.total == 0:
            return float("nan")
        target = fraction * self.total
        if target <= self.underflow:
            return float(_EDGES[0])
        position = target - self.underflow
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, position))
        if index >= self.counts.size:
            return self.max_s
        below = cumulative[index - 1] if index > 0 else 0
        inside = self.counts[index]
        weight = (position - below) / inside if inside > 0 else 0.0
        low, high = _EDGES[index], _EDGES[index + 1]
        return float(low + (high - low) * weight)

    def fraction_below(self, threshold_s: float) -> float:
        """Fraction of recorded latencies at or below ``threshold_s``.

        The SLA-attainment metric; exact to bin resolution (``nan`` empty).
        """
        if self.total == 0:
            return float("nan")
        if threshold_s >= self.max_s:
            return 1.0
        index = int(np.searchsorted(_EDGES, threshold_s, side="right")) - 1
        if index < 0:
            return 0.0
        below = self.underflow + int(self.counts[:index].sum())
        if index < self.counts.size:
            low, high = _EDGES[index], _EDGES[index + 1]
            weight = (threshold_s - low) / (high - low)
            below += weight * int(self.counts[index])
        return min(1.0, below / self.total)

    def summary_ms(self) -> "dict[str, float]":
        """Headline metrics in milliseconds (p50/p95/p99/mean/max)."""
        return {
            "mean": self.mean_s * 1e3,
            "p50": self.percentile(0.50) * 1e3,
            "p95": self.percentile(0.95) * 1e3,
            "p99": self.percentile(0.99) * 1e3,
            "max": self.max_s * 1e3 if self.total else float("nan"),
        }


@dataclass
class EpochDatacenterStats:
    """One (epoch, datacenter) cell of a fleet day.

    ``utilization`` is busy-time over deployed capacity for the epoch width;
    it can exceed 1.0 when an overloaded epoch's backlog drains into the
    next (the stateless-epoch approximation documented in ``docs/fleet.md``).
    """

    epoch: int
    datacenter: str
    servers: int
    offered_qps: float
    requests: int
    busy_s: float
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def utilization(self, parallelism: int, epoch_s: float) -> float:
        """Busy time as a fraction of the epoch's deployed unit-seconds."""
        deployed = self.servers * parallelism * epoch_s
        return self.busy_s / deployed if deployed > 0 else 0.0


#: Hours in the TCO model's month (the standard 730-hour convention).
MONTH_HOURS = 730.0


@dataclass
class FleetResult:
    """Outcome of one simulated fleet day.

    Attributes:
        total_requests: requests simulated across the whole day.
        epoch_stats: per-(epoch, datacenter) cells in epoch-major order.
        class_histograms: end-to-end latency distribution per request class.
        datacenter_histograms: end-to-end latency distribution per site.
        class_samples: exact per-class sorted latency tuples -- only filled
            when the engine runs with ``collect_samples=True`` (small runs,
            equivalence tests); ``None`` at day scale.
        server_hours: deployed server-hours per datacenter over the day.
        scale_events: autoscaling changes per datacenter (up + down).
        network_sum_s: summed per-request network latency over the day.
        engine: the engine that produced the result (``fast``/``event``).
    """

    total_requests: int
    epoch_stats: "list[EpochDatacenterStats]"
    class_histograms: "dict[str, LatencyHistogram]"
    datacenter_histograms: "dict[str, LatencyHistogram]"
    class_samples: "dict[str, tuple[float, ...]] | None"
    server_hours: "dict[str, float]"
    scale_events: "dict[str, int]"
    network_sum_s: float
    engine: str

    @property
    def network_mean_ms(self) -> float:
        """Mean per-request network latency in ms (``nan`` with no traffic)."""
        if self.total_requests == 0:
            return float("nan")
        return self.network_sum_s / self.total_requests * 1e3

    def datacenter_utilization(self, datacenters, epoch_s: float) -> "dict[str, float]":
        """Day-level utilization per datacenter: busy over deployed unit-time."""
        busy = {dc.name: 0.0 for dc in datacenters}
        deployed = {dc.name: 0.0 for dc in datacenters}
        parallelism = {dc.name: dc.parallelism for dc in datacenters}
        for stats in self.epoch_stats:
            busy[stats.datacenter] += stats.busy_s
            deployed[stats.datacenter] += (
                stats.servers * parallelism[stats.datacenter] * epoch_s
            )
        return {
            name: busy[name] / deployed[name] if deployed[name] > 0 else 0.0
            for name in busy
        }

    def monthly_cost_usd(self, datacenters, horizon_hours: float) -> float:
        """Monthly TCO projection from the simulated horizon.

        The mean deployed server count over the horizon (server-hours divided
        by horizon hours) is billed at each datacenter's monthly server cost
        -- a month of identical days.  A fleet that scales down overnight is
        billed for exactly the capacity it kept.
        """
        if horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        total = 0.0
        for datacenter in datacenters:
            hours = self.server_hours.get(datacenter.name, 0.0)
            total += (hours / horizon_hours) * datacenter.server_cost_monthly_usd
        return total

    def sla_attainment(self, classes) -> "dict[str, float]":
        """Fraction of each class's requests inside its p99 SLA target."""
        return {
            cls.name: self.class_histograms[cls.name].fraction_below(
                cls.sla_p99_ms / 1e3
            )
            for cls in classes
            if cls.name in self.class_histograms
        }
