"""Reactive autoscaling: epoch-boundary capacity decisions with cooldowns.

Autoscaling in the fleet engine is *reactive*: at each epoch boundary a
policy looks at the previous epoch's observations (offered load, mean
latency) for one datacenter and proposes a server count for the next epoch.
The :class:`Autoscaler` wraps the policy with the operational guard rails
production autoscalers need:

* **cooldown** -- after a change, the count is frozen for ``cooldown_epochs``
  epochs, preventing flapping on oscillating load;
* **hysteresis** -- the target-utilization policy keeps the current count
  while measured utilization sits inside its dead band;
* **bounds** -- per-datacenter ``min_servers``/``max_servers``, with a
  scale-to-zero guard (never below one server);
* **N+k floors** -- optional per-datacenter lower bounds, typically from
  :meth:`repro.service.sizing.ClusterSizer.size_n_plus_k`, so reactive
  scaling never undercuts the dependability-sized deployment.

Decisions are pure functions of observations, so a fleet day is bit-for-bit
reproducible on either simulation engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.fleet.geo import Datacenter

#: The autoscaling policy names the fleet studies accept.
AUTOSCALE_POLICIES = ("static", "target_utilization", "queue_depth")


@dataclass(frozen=True)
class EpochObservation:
    """What one datacenter observed over one epoch.

    Attributes:
        offered_qps: fluid demand routed to the datacenter.
        completed_requests: requests simulated in the epoch.
        mean_latency_s: mean end-to-end latency (``nan`` with no traffic).
        utilization: busy time over deployed unit-seconds.
    """

    offered_qps: float
    completed_requests: int
    mean_latency_s: float
    utilization: float


class ScalingPolicy(Protocol):
    """The decision interface: observations in, desired server count out."""

    name: str

    def desired_servers(
        self, datacenter: Datacenter, current: int, observed: EpochObservation
    ) -> int:
        """Proposed server count for the next epoch (pre-clamping)."""
        ...  # pragma: no cover - protocol signature


@dataclass(frozen=True)
class StaticPolicy:
    """No scaling: every epoch keeps the deployed count (the baseline)."""

    name: str = "static"

    def desired_servers(
        self, datacenter: Datacenter, current: int, observed: EpochObservation
    ) -> int:
        """Always the current count."""
        return current


@dataclass(frozen=True)
class TargetUtilizationPolicy:
    """Track a utilization setpoint with a hysteresis dead band.

    Sizes the next epoch for ``observed.offered_qps`` at ``target``
    utilization; while the measured utilization stays within ``band`` of the
    setpoint the current count is kept, so small load noise does not churn
    capacity.

    Attributes:
        target: utilization setpoint in (0, 1).
        band: half-width of the no-action dead band around ``target``.
    """

    target: float = 0.65
    band: float = 0.10
    name: str = "target_utilization"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if not 0.0 <= self.band < self.target:
            raise ValueError("band must be in [0, target)")

    def desired_servers(
        self, datacenter: Datacenter, current: int, observed: EpochObservation
    ) -> int:
        """Demand over per-server capacity at the setpoint, with dead band."""
        if abs(observed.utilization - self.target) <= self.band:
            return current
        per_server_qps = datacenter.parallelism / datacenter.service_mean_s
        return max(1, math.ceil(observed.offered_qps / (per_server_qps * self.target)))


@dataclass(frozen=True)
class QueueDepthPolicy:
    """Bound the mean in-system requests per service unit (Little's law).

    The previous epoch's mean depth per unit is estimated as
    ``offered_qps * mean_latency / (servers * parallelism)``; the next epoch
    is sized so that depth lands at ``target_depth`` assuming latency stays
    put -- a queue-pressure trigger that reacts to latency, not just load.

    Attributes:
        target_depth: desired mean in-system requests per service unit.
        trigger_ratio: no-action band -- scaling only fires when the
            observed depth is above ``target_depth * trigger_ratio`` or
            below ``target_depth / trigger_ratio``.
    """

    target_depth: float = 0.8
    trigger_ratio: float = 1.25
    name: str = "queue_depth"

    def __post_init__(self) -> None:
        if self.target_depth <= 0:
            raise ValueError("target_depth must be positive")
        if self.trigger_ratio < 1.0:
            raise ValueError("trigger_ratio must be >= 1")

    def desired_servers(
        self, datacenter: Datacenter, current: int, observed: EpochObservation
    ) -> int:
        """Little's-law resize when depth leaves the trigger band."""
        if observed.completed_requests == 0 or not math.isfinite(
            observed.mean_latency_s
        ):
            return current
        in_system = observed.offered_qps * observed.mean_latency_s
        depth = in_system / (current * datacenter.parallelism)
        if self.target_depth / self.trigger_ratio <= depth <= (
            self.target_depth * self.trigger_ratio
        ):
            return current
        return max(
            1, math.ceil(in_system / (datacenter.parallelism * self.target_depth))
        )


def make_policy(name: str, **kwargs) -> ScalingPolicy:
    """Build a named autoscaling policy (see :data:`AUTOSCALE_POLICIES`)."""
    factories = {
        "static": StaticPolicy,
        "target_utilization": TargetUtilizationPolicy,
        "queue_depth": QueueDepthPolicy,
    }
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown autoscaling policy {name!r}; known: {AUTOSCALE_POLICIES}"
        ) from None
    return factory(**kwargs)


class Autoscaler:
    """A policy plus the guard rails: cooldown, bounds, and N+k floors.

    Args:
        policy: the scaling decision policy.
        datacenters: the fleet's sites (per-site min/max bounds).
        cooldown_epochs: epochs a datacenter's count is frozen after any
            change (0 disables the cooldown).
        floors: optional per-datacenter lower bounds -- e.g. the ``servers``
            of a :class:`~repro.service.sizing.RedundantSizingResult` from
            ``size_n_plus_k`` -- applied after the policy and bounds.
    """

    def __init__(
        self,
        policy: ScalingPolicy,
        datacenters: "tuple[Datacenter, ...]",
        cooldown_epochs: int = 2,
        floors: "Sequence[int] | None" = None,
    ):
        if cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be >= 0")
        if floors is not None and len(floors) != len(datacenters):
            raise ValueError("floors must give one bound per datacenter")
        self.policy = policy
        self.datacenters = datacenters
        self.cooldown_epochs = cooldown_epochs
        self.floors = tuple(int(f) for f in floors) if floors is not None else None
        self._frozen_until = [0] * len(datacenters)

    def clamp(self, index: int, servers: int) -> int:
        """Apply bounds, the N+k floor, and the scale-to-zero guard."""
        datacenter = self.datacenters[index]
        servers = max(servers, datacenter.min_servers, 1)
        if self.floors is not None:
            servers = max(servers, self.floors[index])
        if datacenter.max_servers is not None:
            servers = min(servers, datacenter.max_servers)
        return servers

    def plan(
        self, epoch: int, index: int, current: int, observed: EpochObservation
    ) -> int:
        """The server count datacenter ``index`` deploys for ``epoch``.

        Inside the cooldown window the current count is kept untouched;
        otherwise the policy's (clamped) proposal applies and, if it changed
        the count, starts a new cooldown window.
        """
        if epoch < self._frozen_until[index]:
            return current
        desired = self.clamp(
            index,
            self.policy.desired_servers(self.datacenters[index], current, observed),
        )
        if desired != current:
            self._frozen_until[index] = epoch + self.cooldown_epochs
        return desired
