"""Reproduction report subsystem: claims, validation, and report rendering.

This package turns the experiment catalog into a *verifiable* artifact:

* :mod:`repro.report.paths` -- the metric-path mini-language addressing
  values inside experiment results.
* :mod:`repro.report.claims` -- :class:`PaperClaim` records (published value
  or qualitative relation + tolerance) and the pass/warn/fail grader.
* :mod:`repro.report.registry` -- the paper-expected-values registry
  (:data:`PAPER_CLAIMS`) and its wiring into the spec catalog.
* :mod:`repro.report.validate` -- :class:`ReportValidator`, fanning claimed
  experiments through the sweep executor and the result cache.
* :mod:`repro.report.render` -- Markdown/ASCII/SVG renderers behind
  ``python -m repro report`` and the committed ``docs/REPORT.md``.
"""

from repro.report.claims import Grade, GradedClaim, PaperClaim, Tolerance, grade_claim
from repro.report.paths import AGGREGATES, MetricPathError, resolve_path
from repro.report.registry import PAPER_CLAIMS, claimed_catalog, register_claims
from repro.report.render import ascii_sketch, render_markdown, render_svg
from repro.report.validate import ReportValidator, ValidationRun, select_claims

__all__ = [
    "AGGREGATES",
    "Grade",
    "GradedClaim",
    "MetricPathError",
    "PAPER_CLAIMS",
    "PaperClaim",
    "ReportValidator",
    "Tolerance",
    "ValidationRun",
    "ascii_sketch",
    "claimed_catalog",
    "grade_claim",
    "register_claims",
    "render_markdown",
    "render_svg",
    "resolve_path",
    "select_claims",
]
