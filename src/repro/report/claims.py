"""Paper claims: declarative expected values with tolerance-checked grading.

A :class:`PaperClaim` records one statement the source paper makes about an
artifact -- a published number ("fbfly improves geomean performance 1.25x over
mesh") or a qualitative relation ("the flattened butterfly outperforms the
mesh at 64 cores") -- together with the experiment that reproduces it, the
:mod:`metric path <repro.report.paths>` locating the reproduced value, and the
tolerance within which the reproduction counts as faithful.

Grading (see :func:`grade_claim`) is three-valued:

* ``pass`` -- the value is inside the tolerance band (or the relation holds).
* ``warn`` -- a value claim is outside the band but within
  ``warn_factor x`` the band: the reproduction tracks the paper but has
  drifted; worth a look, not a red build.
* ``fail`` -- the value is beyond the warn band, a relation is violated, or
  the metric path does not resolve at all.

Relations may be graded ``warn`` instead of ``fail`` on violation by
constructing the claim with ``on_violation="warn"`` (used for soft,
calibration-sensitive statements).
"""

from __future__ import annotations

import enum
import numbers
import operator
from dataclasses import dataclass, field
from typing import Mapping

from repro.report.paths import MetricPathError, resolve_path

#: Comparison operators accepted by relation claims.
RELATION_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Tolerance:
    """Tolerance band for a value claim.

    Attributes:
        rel: relative bound as a fraction of the expected value (``0.05`` =
            within 5%); ``None`` disables the relative bound.
        abs: absolute bound in the metric's own unit; ``None`` disables it.
        warn_factor: multiplier widening the pass band into the warn band; a
            deviation beyond ``warn_factor x bound`` grades ``fail``.

    When both bounds are given the *wider* one applies (a reproduction passes
    if it is inside either).  With neither set the claim demands an exact
    match (useful for integers such as a selected core count).
    """

    rel: "float | None" = None
    abs: "float | None" = None
    warn_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.rel is not None and self.rel < 0:
            raise ValueError("rel tolerance must be >= 0")
        if self.abs is not None and self.abs < 0:
            raise ValueError("abs tolerance must be >= 0")
        if self.warn_factor < 1.0:
            raise ValueError("warn_factor must be >= 1")

    def bound(self, expected: float) -> float:
        """The half-width of the pass band around ``expected``."""
        candidates = [0.0]
        if self.rel is not None:
            candidates.append(self.rel * abs(expected))
        if self.abs is not None:
            candidates.append(self.abs)
        return max(candidates)

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``±5% rel`` or ``exact``."""
        parts = []
        if self.rel is not None:
            parts.append(f"±{format_value(self.rel * 100)}% rel")
        if self.abs is not None:
            parts.append(f"±{format_value(self.abs)} abs")
        return " or ".join(parts) if parts else "exact"


@dataclass(frozen=True)
class PaperClaim:
    """One expected-value or relation statement from the source paper.

    Attributes:
        claim_id: unique slug, e.g. ``"ch4-fbfly-speedup"``.
        experiment_id: catalog id of the experiment reproducing the value.
        source: the paper artifact making the statement ("Figure 4.6").
        description: one-line prose statement of the claim.
        metric: metric path (see :mod:`repro.report.paths`) of the reproduced
            value inside the experiment's result envelope.
        kind: ``"value"`` (numeric expectation with a tolerance band) or
            ``"relation"`` (comparison against a literal or a second metric).
        expected: the published value (``kind="value"``), or the literal
            right-hand side of a relation without ``rhs_metric``.
        op: relation operator, one of ``< <= > >= == !=``.
        rhs_metric: metric path for the relation's right-hand side; mutually
            exclusive with a literal ``expected``.
        tolerance: the pass/warn band (value claims, and ``==`` relations on
            floats).
        on_violation: grade for a violated relation -- ``"fail"`` (default)
            or ``"warn"`` for soft claims.
        parameters: experiment parameter overrides this claim is stated under
            (defaults to the spec's own defaults).
    """

    claim_id: str
    experiment_id: str
    source: str
    description: str
    metric: str
    kind: str = "value"
    expected: object = None
    op: str = "=="
    rhs_metric: "str | None" = None
    tolerance: Tolerance = field(default_factory=Tolerance)
    on_violation: str = "fail"
    parameters: "Mapping[str, object]" = field(default_factory=dict)

    KINDS = ("value", "relation")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {self.kind!r}")
        if self.kind == "value":
            if not isinstance(self.expected, numbers.Real) or isinstance(self.expected, bool):
                raise ValueError(
                    f"value claim {self.claim_id!r} needs a numeric expected value"
                )
        else:
            if self.op not in RELATION_OPS:
                raise ValueError(
                    f"relation op must be one of {sorted(RELATION_OPS)}, got {self.op!r}"
                )
            if (self.rhs_metric is None) == (self.expected is None):
                raise ValueError(
                    f"relation claim {self.claim_id!r} needs exactly one of "
                    "expected (literal) or rhs_metric"
                )
        if self.on_violation not in ("fail", "warn"):
            raise ValueError("on_violation must be 'fail' or 'warn'")

    def expected_display(self) -> str:
        """The claim's right-hand side as compact text for reports."""
        if self.kind == "value":
            return f"{format_value(self.expected)} ({self.tolerance.describe()})"
        rhs = self.rhs_metric if self.rhs_metric is not None else format_value(self.expected)
        return f"{self.op} {rhs}"


class Grade(enum.Enum):
    """Outcome of checking one claim against its reproduced value."""

    PASS = "pass"
    WARN = "warn"
    FAIL = "fail"


@dataclass(frozen=True)
class GradedClaim:
    """A claim together with its reproduced value and grade.

    Attributes:
        claim: the graded :class:`PaperClaim`.
        grade: pass/warn/fail outcome.
        actual: the value the metric path resolved to (``None`` if resolution
            failed).
        detail: one-line explanation of the grade (deviation vs band, the
            relation instantiated with both sides, or the resolution error).
    """

    claim: PaperClaim
    grade: Grade
    actual: object = None
    detail: str = ""


def format_value(value: object) -> str:
    """Deterministic compact rendering of claim values for reports.

    Integers print bare, floats with ``.6g`` precision, and everything else
    (bools, strings) via ``repr`` -- shared by the grader's detail strings and
    the Markdown/ASCII/SVG renderers so a value never renders two ways.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        return repr(value)
    if isinstance(value, numbers.Integral):
        return str(int(value))
    return format(float(value), ".6g")


def _grade_value(claim: PaperClaim, actual: object) -> GradedClaim:
    if not isinstance(actual, numbers.Real) or isinstance(actual, bool):
        return GradedClaim(
            claim, Grade.FAIL, actual,
            f"expected a number, metric resolved to {actual!r}",
        )
    expected = float(claim.expected)  # type: ignore[arg-type]
    deviation = abs(float(actual) - expected)
    bound = claim.tolerance.bound(expected)
    if deviation <= bound:
        grade = Grade.PASS
    elif deviation <= claim.tolerance.warn_factor * bound:
        grade = Grade.WARN
    else:
        grade = Grade.FAIL
    detail = f"Δ={format_value(deviation)} vs band ±{format_value(bound)}"
    if bound == 0.0:
        detail = "exact match" if deviation == 0.0 else f"Δ={format_value(deviation)} vs exact"
    return GradedClaim(claim, grade, actual, detail)


def _grade_relation(claim: PaperClaim, actual: object, rhs: object) -> GradedClaim:
    op_fn = RELATION_OPS[claim.op]
    # Float equality honours the tolerance band so `==` relations on measured
    # values do not demand bit-identical arithmetic.
    if (
        claim.op in ("==", "!=")
        and isinstance(actual, numbers.Real) and not isinstance(actual, bool)
        and isinstance(rhs, numbers.Real) and not isinstance(rhs, bool)
    ):
        within = abs(float(actual) - float(rhs)) <= claim.tolerance.bound(float(rhs))
        holds = within if claim.op == "==" else not within
    else:
        try:
            holds = bool(op_fn(actual, rhs))
        except TypeError:
            return GradedClaim(
                claim, Grade.FAIL, actual,
                f"cannot compare {actual!r} {claim.op} {rhs!r}",
            )
    detail = f"{format_value(actual)} {claim.op} {format_value(rhs)}"
    if holds:
        return GradedClaim(claim, Grade.PASS, actual, detail + " holds")
    violation = Grade.WARN if claim.on_violation == "warn" else Grade.FAIL
    return GradedClaim(claim, violation, actual, detail + " is violated")


def grade_claim(claim: PaperClaim, envelope: "Mapping[str, object]") -> GradedClaim:
    """Grade one claim against an experiment result envelope.

    Args:
        claim: the claim to check.
        envelope: ``{"rows": [...], "data": ...}`` view of the experiment's
            :class:`~repro.runtime.ExperimentResult`.

    Returns:
        A :class:`GradedClaim`; metric-path resolution failures grade
        ``fail`` with the error message as detail instead of raising.
    """
    try:
        actual = resolve_path(envelope, claim.metric)
    except MetricPathError as error:
        return GradedClaim(claim, Grade.FAIL, None, error.reason)
    if claim.kind == "value":
        return _grade_value(claim, actual)
    rhs: object = claim.expected
    if claim.rhs_metric is not None:
        try:
            rhs = resolve_path(envelope, claim.rhs_metric)
        except MetricPathError as error:
            return GradedClaim(claim, Grade.FAIL, actual, error.reason)
    return _grade_relation(claim, actual, rhs)
