"""Tolerance-checked validation of every registered paper claim.

:class:`ReportValidator` collects the claims attached to a spec catalog,
deduplicates the experiments behind them into jobs, fans the uncached jobs out
through a :class:`~repro.runtime.SweepExecutor`, and grades each claim against
its experiment's result.  Caching is owned entirely by the validator's (parent
process) :class:`~repro.runtime.ResultCache`, so serial and parallel execution
produce identical grades and a warm cache re-renders the report without
re-running a single model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping, Sequence

from repro.report.claims import Grade, GradedClaim, PaperClaim, grade_claim
from repro.runtime.cache import ResultCache, result_key
from repro.runtime.executor import SweepExecutor


def _evaluate_job(spec, overrides: "Mapping[str, object]") -> "dict[str, object]":
    """Run one experiment spec for the validator (module-level: pool-picklable).

    The worker computes the raw payload only; cache lookups and stores happen
    in the parent process so results and grades never depend on the backend.
    Taking the spec itself (rather than an id resolved against the global
    registry) keeps custom catalogs working.
    """
    start = perf_counter()
    data = spec.run(**dict(overrides))
    return {"data": data, "wall_time_s": perf_counter() - start}


@dataclass(frozen=True)
class ExperimentCheck:
    """Execution record of one experiment the validator ran (or fetched).

    Attributes:
        experiment_id: catalog id of the experiment.
        chapter: the spec's chapter.
        cache_status: ``"hit"``, ``"miss"``, or ``"disabled"``.
        wall_time_s: seconds spent producing (or fetching) the payload.
        claim_ids: ids of the claims graded against this run.
    """

    experiment_id: str
    chapter: int
    cache_status: str
    wall_time_s: float
    claim_ids: "tuple[str, ...]"


@dataclass
class ValidationRun:
    """All graded claims of one validator invocation, plus run metadata.

    Attributes:
        graded: one :class:`~repro.report.claims.GradedClaim` per claim, in
            registry order.
        experiments: one :class:`ExperimentCheck` per distinct experiment job.
        chapters: claim chapter by claim id (from the owning spec).
    """

    graded: "list[GradedClaim]" = field(default_factory=list)
    experiments: "list[ExperimentCheck]" = field(default_factory=list)
    chapters: "dict[str, int]" = field(default_factory=dict)

    def count(self, grade: Grade) -> int:
        """Number of claims with the given grade."""
        return sum(1 for item in self.graded if item.grade is grade)

    @property
    def ok(self) -> bool:
        """True when no claim graded ``fail``."""
        return self.count(Grade.FAIL) == 0

    def by_chapter(self) -> "dict[int, list[GradedClaim]]":
        """Graded claims grouped by chapter, in ascending chapter order."""
        grouped: "dict[int, list[GradedClaim]]" = {}
        for item in self.graded:
            grouped.setdefault(self.chapters[item.claim.claim_id], []).append(item)
        return dict(sorted(grouped.items()))

    def summary(self) -> "dict[str, object]":
        """Headline counts for JSON envelopes and CI gates."""
        return {
            "claims": len(self.graded),
            "pass": self.count(Grade.PASS),
            "warn": self.count(Grade.WARN),
            "fail": self.count(Grade.FAIL),
            "experiments": len(self.experiments),
            "chapters": sorted({self.chapters[g.claim.claim_id] for g in self.graded}),
        }

    def payload(self) -> "dict[str, object]":
        """Full machine-readable envelope (the CLI's ``--json`` output)."""
        return {
            "summary": self.summary(),
            "claims": [
                {
                    "claim_id": item.claim.claim_id,
                    "experiment_id": item.claim.experiment_id,
                    "chapter": self.chapters[item.claim.claim_id],
                    "source": item.claim.source,
                    "kind": item.claim.kind,
                    "metric": item.claim.metric,
                    "expected": item.claim.expected_display(),
                    "actual": item.actual,
                    "grade": item.grade.value,
                    "detail": item.detail,
                }
                for item in self.graded
            ],
            "experiments": [
                {
                    "experiment_id": check.experiment_id,
                    "chapter": check.chapter,
                    "cache_status": check.cache_status,
                    "wall_time_s": round(check.wall_time_s, 6),
                    "claims": len(check.claim_ids),
                }
                for check in self.experiments
            ],
        }


def select_claims(
    catalog, only: "Sequence[str] | None" = None
) -> "list[PaperClaim]":
    """The catalog's claims, filtered by ``--only``-style tokens.

    Args:
        catalog: a claim-carrying :class:`~repro.runtime.SpecCatalog`.
        only: tokens, each either ``chapterN`` (or ``chN``/``N``), an
            experiment id, or a claim id; the union of matches is kept.

    Raises:
        ValueError: on a token matching no chapter, experiment, or claim.
    """
    claims = list(catalog.claims())
    if not only:
        return claims
    chapters: "set[int]" = set()
    ids: "set[str]" = set()
    claim_ids = {claim.claim_id for claim in claims}
    for token in only:
        text = str(token).strip().lower()
        for prefix in ("chapter", "ch"):
            if text.startswith(prefix) and text[len(prefix):].isdigit():
                text = text[len(prefix):]
                break
        if text.isdigit():
            if int(text) not in catalog.chapters():
                raise ValueError(
                    f"--only token {token!r} names no catalogued chapter "
                    f"(known: {catalog.chapters()})"
                )
            chapters.add(int(text))
        elif token in catalog:
            ids.add(str(token))
        elif token in claim_ids:
            ids.add(str(token))
        else:
            raise ValueError(
                f"--only token {token!r} matches no chapter, experiment, or claim"
            )
    return [
        claim
        for claim in claims
        if claim.claim_id in ids
        or claim.experiment_id in ids
        or catalog.get(claim.experiment_id).chapter in chapters
    ]


class ReportValidator:
    """Grades registered paper claims by running their experiments.

    Args:
        catalog: claim-carrying spec catalog; defaults to the shared
            experiment catalog with :data:`~repro.report.registry.PAPER_CLAIMS`
            attached.
        cache: result cache for experiment payloads; defaults to the
            process-wide cache shared with ``run_experiment``.
        use_cache: disable to force every experiment to recompute.
        executor: sweep executor fanning experiment jobs out; defaults to
            auto mode (process pool for enough jobs, serial otherwise).
    """

    def __init__(
        self,
        catalog=None,
        cache: "ResultCache | None" = None,
        use_cache: bool = True,
        executor: "SweepExecutor | None" = None,
    ):
        if catalog is None:
            from repro.report.registry import claimed_catalog

            catalog = claimed_catalog()
        if cache is None:
            from repro.experiments.registry import DEFAULT_CACHE

            cache = DEFAULT_CACHE
        self.catalog = catalog
        self.cache = cache
        self.use_cache = use_cache
        self.executor = executor or SweepExecutor()

    def _job_overrides(
        self, spec, parameters: "Mapping[str, object]"
    ) -> "dict[str, object]":
        """Claim parameters plus the cache flags cache-aware experiments honour.

        The explore studies memoize their per-candidate model evaluations in
        their own cache; forward ``use_cache=False`` / the disk-backed cache
        to those internal tiers too, so a no-cache report really recomputes
        (mirrors the CLI's ``--no-cache`` / ``--cache-dir`` forwarding).
        """
        from repro.runtime.cache import evaluation_overrides

        overrides = dict(parameters)
        forwarded = evaluation_overrides(spec.function, self.use_cache, self.cache)
        for name, value in forwarded.items():
            overrides.setdefault(name, value)
        return overrides

    def validate(self, only: "Sequence[str] | None" = None) -> ValidationRun:
        """Run the claimed experiments and grade every selected claim.

        Args:
            only: optional ``--only``-style filter tokens (see
                :func:`select_claims`).

        Returns:
            A :class:`ValidationRun`; claim order follows the registry, and
            grades are independent of the executor backend.
        """
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        claims = select_claims(self.catalog, only)
        # One job per distinct (experiment, parameters) pair, in first-use order.
        jobs: "dict[str, tuple[str, dict[str, object], list[PaperClaim]]]" = {}
        for claim in claims:
            spec = self.catalog.get(claim.experiment_id)
            overrides = self._job_overrides(spec, claim.parameters)
            merged = spec.merged_kwargs(overrides)
            key = result_key(spec.cache_token, merged)
            if key not in jobs:
                jobs[key] = (claim.experiment_id, overrides, [])
            jobs[key][2].append(claim)

        with tracer.span(
            "report.validate", category="report", claims=len(claims), jobs=len(jobs)
        ) as validate_span:
            envelopes: "dict[str, dict[str, object]]" = {}
            checks: "list[ExperimentCheck]" = []
            pending: "list[tuple[str, str, dict[str, object]]]" = []
            for key, (experiment_id, overrides, job_claims) in jobs.items():
                data = self.cache.get(key, category="report") if self.use_cache else None
                if data is not None:
                    envelopes[key] = {"data": data, "cache_status": "hit", "wall_time_s": 0.0}
                else:
                    pending.append((key, experiment_id, overrides))
            computed = self.executor.map(
                _evaluate_job,
                [
                    (self.catalog.get(experiment_id), overrides)
                    for _, experiment_id, overrides in pending
                ],
            )
            for (key, _, _), outcome in zip(pending, computed):
                status = "miss" if self.use_cache else "disabled"
                if self.use_cache:
                    self.cache.put(key, outcome["data"], category="report")
                envelopes[key] = {
                    "data": outcome["data"],
                    "cache_status": status,
                    "wall_time_s": outcome["wall_time_s"],
                }

            run = ValidationRun()
            for key, (experiment_id, _, job_claims) in jobs.items():
                spec = self.catalog.get(experiment_id)
                outcome = envelopes[key]
                view = _result_view(outcome["data"])
                checks.append(
                    ExperimentCheck(
                        experiment_id=experiment_id,
                        chapter=spec.chapter,
                        cache_status=str(outcome["cache_status"]),
                        wall_time_s=float(outcome["wall_time_s"]),  # type: ignore[arg-type]
                        claim_ids=tuple(claim.claim_id for claim in job_claims),
                    )
                )
                for claim in job_claims:
                    with tracer.span(
                        "report.claim",
                        category="report",
                        claim=claim.claim_id,
                        experiment=experiment_id,
                    ) as claim_span:
                        graded = grade_claim(claim, view)
                        claim_span.annotate(grade=graded.grade.value)
                    run.graded.append(graded)
                    run.chapters[claim.claim_id] = spec.chapter
            # Report claims in registry order regardless of job completion order.
            order = {claim.claim_id: index for index, claim in enumerate(claims)}
            run.graded.sort(key=lambda item: order[item.claim.claim_id])
            run.experiments = checks
            validate_span.annotate(
                computed=len(pending), cached=len(jobs) - len(pending)
            )
        return run


def _result_view(data: object) -> "dict[str, object]":
    """Normalize a raw experiment payload into the metric-path envelope."""
    from repro.runtime.spec import ExperimentResult

    return {"rows": ExperimentResult(experiment_id="", data=data).rows, "data": data}
