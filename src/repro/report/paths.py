"""Metric-path mini-language addressing values inside experiment results.

A *metric path* names one value (or one aggregate of values) inside the
envelope produced by running an experiment, so a paper claim can say *where*
its number lives without writing code.  Paths are resolved against the
normalized view ``{"rows": result.rows, "data": result.data}``:

* ``rows[topology=mesh].total_mm2`` -- the ``total_mm2`` column of the unique
  row whose ``topology`` equals ``mesh``.
* ``rows[cores=64,interconnect=mesh].ipc`` -- multi-key row selection; values
  are parsed as Python literals (``64`` is an int, ``4.0`` a float, ``True`` a
  bool), anything unparsable is matched as a string.
* ``rows.performance_density:max`` -- the column over *all* rows, reduced by
  an aggregate (``mean``, ``geomean``, ``min``, ``max``, ``sum``, ``count``,
  ``mean_abs``, ``max_abs``).
* ``data.selected_cores`` / ``data.stats.frontier_size`` -- traversal into a
  dict payload; quoted segments (``data.knees["40nm / ooo"].candidate``)
  reach keys containing spaces or dots, and integer segments (``data.sweep[0]``)
  index into lists.

Resolution failures -- unknown root, no matching row, an ambiguous
multi-row selection without an aggregate, a missing column or key -- raise
:class:`MetricPathError` with a message naming the offending path, which the
validator turns into a ``fail`` grade rather than a crash.
"""

from __future__ import annotations

import ast
import math
from typing import Mapping, Sequence


class MetricPathError(KeyError):
    """A metric path could not be resolved against an experiment result."""

    def __init__(self, path: str, reason: str):
        super().__init__(f"cannot resolve metric path {path!r}: {reason}")
        self.path = path
        self.reason = reason


def _literal(text: str) -> object:
    """Parse ``text`` as a Python literal, falling back to the bare string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _geomean(values: "Sequence[float]") -> float:
    if any(v <= 0 for v in values):
        raise ValueError("geomean needs strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Aggregate reducers usable as a ``:name`` path suffix.
AGGREGATES = {
    "mean": lambda vs: sum(vs) / len(vs),
    "geomean": _geomean,
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
    "mean_abs": lambda vs: sum(abs(v) for v in vs) / len(vs),
    "max_abs": lambda vs: max(abs(v) for v in vs),
}


def _split_top_level(text: str, sep: str) -> "list[str]":
    """Split on ``sep`` outside brackets and quotes."""
    parts, depth, quote, current = [], 0, "", []
    for char in text:
        if quote:
            current.append(char)
            if char == quote:
                quote = ""
            continue
        if char in "'\"":
            quote = char
        elif char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == sep and depth == 0 and not quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _parse_selector(text: str, path: str) -> "dict[str, object] | None":
    """``k=v,k2=v2`` into a filter dict; ``*`` (or empty) selects every row."""
    body = text.strip()
    if body in ("", "*"):
        return None
    selector: "dict[str, object]" = {}
    for pair in _split_top_level(body, ","):
        if "=" not in pair:
            raise MetricPathError(path, f"selector pair {pair!r} is not key=value")
        key, _, value = pair.partition("=")
        selector[key.strip()] = _literal(value.strip())
    return selector


def _tokenize(path: str) -> "list[tuple[str, object]]":
    """Scan ``path`` into ``(kind, payload)`` tokens.

    Kinds are ``name`` (a dotted segment), ``bracket`` (the raw text between
    ``[`` and ``]``), and ``aggregate`` (the name after a trailing ``:``).
    """
    tokens: "list[tuple[str, object]]" = []
    i, n = 0, len(path)
    current: "list[str]" = []

    def _flush() -> None:
        if current:
            tokens.append(("name", "".join(current)))
            current.clear()

    while i < n:
        char = path[i]
        if char == ".":
            _flush()
            i += 1
        elif char == "[":
            _flush()
            depth, quote, j = 1, "", i + 1
            while j < n and depth:
                c = path[j]
                if quote:
                    if c == quote:
                        quote = ""
                elif c in "'\"":
                    quote = c
                elif c == "[":
                    depth += 1
                elif c == "]":
                    depth -= 1
                j += 1
            if depth:
                raise MetricPathError(path, "unbalanced '['")
            tokens.append(("bracket", path[i + 1 : j - 1]))
            i = j
        elif char == ":":
            _flush()
            tokens.append(("aggregate", path[i + 1 :].strip()))
            i = n
        else:
            current.append(char)
            i += 1
    _flush()
    if not tokens:
        raise MetricPathError(path, "empty path")
    return tokens


def _bracket_key(text: str, path: str) -> object:
    """A ``["quoted key"]`` / ``[3]`` bracket segment as a dict key or index."""
    body = text.strip()
    if len(body) >= 2 and body[0] in "'\"" and body[-1] == body[0]:
        return body[1:-1]
    value = _literal(body)
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise MetricPathError(path, f"bracket segment {text!r} is neither quoted nor an index")


def _select_rows(
    rows: "Sequence[Mapping[str, object]]",
    selector: "Mapping[str, object] | None",
    path: str,
) -> "list[Mapping[str, object]]":
    if selector is None:
        return list(rows)
    matched = [
        row
        for row in rows
        if all(row.get(key, _MISSING) == value for key, value in selector.items())
    ]
    if not matched:
        raise MetricPathError(path, f"no row matches selector {selector!r}")
    return matched


def _column(rows: "Sequence[Mapping[str, object]]", name: str, path: str) -> "list[object]":
    values = []
    for row in rows:
        if name not in row:
            raise MetricPathError(path, f"row {sorted(row)[:6]}... has no column {name!r}")
        values.append(row[name])
    return values


_MISSING = object()


def resolve_path(envelope: "Mapping[str, object]", path: str) -> object:
    """Resolve ``path`` against ``{"rows": [...], "data": ...}``.

    Returns a scalar: row selections must be narrowed to a single value either
    by a unique selector match or by a ``:aggregate`` suffix.

    Raises:
        MetricPathError: on any unknown root, missing row/column/key,
            ambiguous multi-row result, or malformed path.
    """
    tokens = _tokenize(path)
    aggregate: "str | None" = None
    if tokens and tokens[-1][0] == "aggregate":
        aggregate = str(tokens.pop()[1])
        if aggregate not in AGGREGATES:
            raise MetricPathError(
                path, f"unknown aggregate {aggregate!r}; known: {sorted(AGGREGATES)}"
            )
    if not tokens or tokens[0][0] != "name":
        raise MetricPathError(path, "path must start with 'rows' or 'data'")
    root = tokens[0][1]
    rest = tokens[1:]

    if root == "rows":
        rows = envelope.get("rows")
        if not isinstance(rows, Sequence):
            raise MetricPathError(path, "result has no row list")
        selector = None
        if rest and rest[0][0] == "bracket":
            selector = _parse_selector(str(rest[0][1]), path)
            rest = rest[1:]
        selected = _select_rows(rows, selector, path)
        if not rest:
            value: object = list(selected)
        else:
            if len(rest) != 1 or rest[0][0] != "name":
                raise MetricPathError(path, "rows paths end with one .column segment")
            values = _column(selected, str(rest[0][1]), path)
            value = values if len(values) > 1 else values[0]
    elif root == "data":
        value = envelope.get("data")
        for kind, payload in rest:
            key = _bracket_key(str(payload), path) if kind == "bracket" else payload
            if isinstance(value, Mapping):
                if key not in value:
                    raise MetricPathError(path, f"no key {key!r} under {sorted(value)[:8]}")
                value = value[key]
            elif isinstance(value, Sequence) and not isinstance(value, str):
                if not isinstance(key, int):
                    raise MetricPathError(path, f"list segment {key!r} must be an index")
                try:
                    value = value[key]
                except IndexError:
                    raise MetricPathError(path, f"index {key} out of range") from None
            else:
                raise MetricPathError(path, f"cannot descend into {type(value).__name__}")
    else:
        raise MetricPathError(path, f"unknown root {root!r} (expected 'rows' or 'data')")

    if aggregate is not None:
        if not isinstance(value, list):
            value = [value]
        if not value:
            raise MetricPathError(path, "aggregate over an empty selection")
        try:
            return AGGREGATES[aggregate](value)
        except (TypeError, ValueError) as error:
            raise MetricPathError(path, f"aggregate {aggregate!r} failed: {error}") from None
    if isinstance(value, list):
        raise MetricPathError(
            path, f"selection is ambiguous ({len(value)} values); add a :aggregate"
        )
    return value
