"""The paper-expected-values registry: every claim the report grades.

Chapters 2-6 claims pin the reproduction to statements the Scale-Out
Processors paper makes about its figures and tables -- published speedups,
the selected pod configuration, qualitative orderings between designs.
Chapters 7-11 cover the repo's beyond-paper studies (service simulation,
design-space exploration, fault injection, fleet simulation, the
technology-node family); their claims attest internal consistency with the
paper's conclusions -- e.g. that the exploration's knee points are exactly
the paper's chosen Scale-Out designs (the check that used to live in
``explore_pod_40nm``'s ad-hoc ``paper_designs`` payload), that the
dependability studies respond to fault load in the physically required
direction (crashes cut availability, redundancy buys it back), or that the
derived node family keeps the paper's anchor node byte-exact while the
Pareto frontier shifts monotonically with technology.

:func:`register_claims` wires the registry into a
:class:`~repro.runtime.SpecCatalog` so specs carry their claims;
:func:`claimed_catalog` returns the shared experiment catalog with every
registered claim attached (idempotently).
"""

from __future__ import annotations

from repro.report.claims import PaperClaim, Tolerance


def _value(claim_id, experiment_id, source, description, metric, expected,
           rel=None, abs=None, **kwargs) -> PaperClaim:
    """Shorthand for a numeric expected-value claim."""
    return PaperClaim(
        claim_id=claim_id, experiment_id=experiment_id, source=source,
        description=description, metric=metric, kind="value", expected=expected,
        tolerance=Tolerance(rel=rel, abs=abs), **kwargs,
    )


def _relation(claim_id, experiment_id, source, description, metric, op,
              expected=None, rhs_metric=None, rel=None, **kwargs) -> PaperClaim:
    """Shorthand for a qualitative relation claim."""
    return PaperClaim(
        claim_id=claim_id, experiment_id=experiment_id, source=source,
        description=description, metric=metric, kind="relation", op=op,
        expected=expected, rhs_metric=rhs_metric,
        tolerance=Tolerance(rel=rel), **kwargs,
    )


#: Every registered claim, in report order (grouped by chapter).
PAPER_CLAIMS: "tuple[PaperClaim, ...]" = (
    # ----------------------------------------------------------- chapter 2
    _value(
        "ch2-websearch-ipc", "figure_2_1", "Figure 2.1",
        "Web Search reaches an application IPC of ~1.56 on the aggressive OoO core",
        "rows[workload=Web Search].application_ipc", 1.56, rel=0.05,
    ),
    _relation(
        "ch2-ipc-below-peak", "figure_2_1", "Figure 2.1",
        "No scale-out workload comes close to the 4-wide core's peak IPC",
        "rows.application_ipc:max", "<=", expected=2.0,
    ),
    _relation(
        "ch2-llc-saturates", "figure_2_2", "Figure 2.2",
        "Growing the LLC beyond 8 MB stops helping Data Serving",
        "rows[workload=Data Serving].16MB", "<",
        rhs_metric="rows[workload=Data Serving].8MB",
    ),
    _relation(
        "ch2-core-scaling-sublinear", "figure_2_3", "Figure 2.3",
        "At 64 cores the mesh-based chip falls short of ideal aggregate scaling",
        "rows[cores=64].mesh_aggregate", "<",
        rhs_metric="rows[cores=64].ideal_aggregate",
    ),
    _value(
        "ch2-ideal-inorder-pd", "table_2_3", "Table 2.3",
        "The ideal in-order organization tops the 40 nm designs at PD ~0.193",
        "rows[design=Ideal (In-order)].PD", 0.193, rel=0.03,
    ),
    # ----------------------------------------------------------- chapter 3
    _value(
        "ch3-model-mae", "figure_3_3", "Figure 3.3",
        "Mean absolute model-vs-simulation error across all design points",
        "rows[workload=MEAN].relative_error", 0.26, abs=0.05,
    ),
    _relation(
        "ch3-model-worst", "figure_3_3", "Figure 3.3",
        "Worst-case model error stays bounded over the validated design points",
        "rows.relative_error:max_abs", "<=", expected=0.40,
    ),
    _relation(
        "ch3-pod-cores", "figure_3_5", "Figure 3.5",
        "The performance-density sweep selects a 16-core pod",
        "data.selected_cores", "==", expected=16,
    ),
    _value(
        "ch3-pod-pd", "figure_3_5", "Figure 3.5",
        "Performance density of the selected crossbar pod",
        "data.selected_pd", 0.1488, rel=0.02,
    ),
    _relation(
        "ch3-scaleout-beats-tiled", "table_3_2", "Table 3.2",
        "Scale-Out (In-order) outperforms the tiled in-order design on PD",
        "rows[design=Scale-Out (In-order)].PD", ">",
        rhs_metric="rows[design=Tiled (In-order)].PD",
    ),
    _value(
        "ch3-scaleout-ooo-pd", "table_3_2", "Table 3.2",
        "Scale-Out (OoO) lands within ~6% of the ideal OoO performance density",
        "rows[design=Scale-Out (OoO)].PD", 0.103, rel=0.03,
    ),
    # ----------------------------------------------------------- chapter 4
    _relation(
        "ch4-fbfly-beats-mesh", "figure_4_6", "Figure 4.6",
        "The flattened butterfly outperforms the mesh at 64 cores",
        "rows[topology=fbfly].geomean", ">",
        rhs_metric="rows[topology=mesh].geomean",
    ),
    _value(
        "ch4-fbfly-speedup", "figure_4_6", "Figure 4.6",
        "Geomean system speedup of the flattened butterfly over the mesh",
        "rows[topology=fbfly].geomean", 1.246, rel=0.02,
    ),
    _value(
        "ch4-nocout-speedup", "figure_4_6", "Figure 4.6",
        "Geomean system speedup of NOC-Out over the mesh",
        "rows[topology=nocout].geomean", 1.178, rel=0.02,
    ),
    _relation(
        "ch4-nocout-cheapest", "figure_4_7", "Figure 4.7",
        "NOC-Out needs less NoC area than even the mesh",
        "rows[topology=nocout].total_mm2", "<",
        rhs_metric="rows[topology=mesh].total_mm2",
    ),
    _relation(
        "ch4-area-normalized-nocout", "figure_4_8", "Figure 4.8",
        "Under an equal-area budget NOC-Out beats the flattened butterfly",
        "rows[topology=nocout].geomean", ">",
        rhs_metric="rows[topology=fbfly].geomean",
    ),
    _relation(
        "ch4-snoops-rare", "figure_4_3", "Figure 4.3",
        "On average snoops are triggered by under 2% of LLC accesses",
        "rows[workload=MEAN].snoop_fraction_percent", "<=", expected=2.0,
    ),
    # ----------------------------------------------------------- chapter 5
    _value(
        "ch5-scaleout-ooo-perf", "figure_5_1", "Figure 5.1",
        "Datacenter performance of Scale-Out (OoO) vs the conventional baseline",
        "rows[design=Scale-Out (OoO)].normalized_performance", 5.25, rel=0.03,
    ),
    _relation(
        "ch5-scaleout-tco", "figure_5_2", "Figure 5.2",
        "Scale-Out (In-order) lowers datacenter TCO below the conventional baseline",
        "rows[design=Scale-Out (In-order)].normalized_tco", "<", expected=1.0,
    ),
    _relation(
        "ch5-inorder-best-efficiency", "figure_5_3", "Figure 5.3",
        "At 32 GB, Scale-Out (In-order) has the best performance per TCO dollar",
        "rows[design=Scale-Out (In-order),memory_gb=32].performance_per_tco", ">=",
        rhs_metric="rows[memory_gb=32].performance_per_tco:max",
    ),
    _relation(
        "ch5-price-robust", "figure_5_5", "Figure 5.5",
        "Scale-Out (In-order) beats the conventional design at every processor price",
        "rows[design=Scale-Out (In-order)].performance_per_tco:min", ">",
        rhs_metric="rows[design=Conventional].performance_per_tco:max",
    ),
    # ----------------------------------------------------------- chapter 6
    _relation(
        "ch6-3d-gain-ooo", "table_6_2", "Table 6.2",
        "Four-die fixed-distance stacking raises OoO performance density over 2D",
        "rows[configuration=Fixed-Distance,core_type=ooo,dies=4].performance_density",
        ">", rhs_metric="rows[configuration=2D Pod,core_type=ooo].performance_density",
    ),
    _relation(
        "ch6-fixed-distance-wins", "figure_6_5", "Figure 6.5",
        "At four dies the fixed-distance strategy beats fixed-pod scaling",
        "rows[strategy=fixed-distance,dies=4].performance_density", ">",
        rhs_metric="rows[strategy=fixed-pod,dies=4].performance_density",
    ),
    _value(
        "ch6-3d-pd-inorder", "table_6_2", "Table 6.2",
        "Performance density of the three-die fixed-distance in-order stack",
        "rows[configuration=Fixed-Distance,core_type=inorder,dies=3].performance_density",
        0.311, rel=0.02,
    ),
    # ------------------------------------------- chapter 7 (beyond paper)
    _relation(
        "ch7-latency-grows-with-load", "service_latency_sweep", "Study: latency sweep",
        "Tail latency rises as the offered load saturates the cluster",
        "rows[utilization=1.1].p99_ms", ">", rhs_metric="rows[utilization=0.2].p99_ms",
    ),
    _relation(
        "ch7-erlang-agreement", "service_latency_sweep", "Study: latency sweep",
        "At low load the measured p99 agrees with the Erlang M/M/k prediction",
        "rows[utilization=0.2].p99_ms", "==",
        rhs_metric="rows[utilization=0.2].mmk_p99_ms", rel=0.05,
    ),
    _relation(
        "ch7-jsq-tail", "service_policy_comparison", "Study: policy comparison",
        "Join-shortest-queue does not lose to random load balancing on p99",
        "rows[policy=jsq].p99_ms", "<=", rhs_metric="rows[policy=random].p99_ms",
    ),
    _relation(
        "ch7-scaleout-fewer-servers", "service_cluster_sizing", "Study: cluster sizing",
        "Scale-Out (OoO) serves the QPS target with far fewer servers",
        "rows[design=Scale-Out (OoO)].servers", "<",
        rhs_metric="rows[design=Conventional].servers",
    ),
    _relation(
        "ch7-scaleout-cheaper", "service_cluster_sizing", "Study: cluster sizing",
        "Scale-Out (OoO) meets the SLA at a lower monthly TCO",
        "rows[design=Scale-Out (OoO)].monthly_tco_usd", "<",
        rhs_metric="rows[design=Conventional].monthly_tco_usd",
    ),
    # ------------------------------------------- chapter 8 (beyond paper)
    _relation(
        "ch8-paper-ooo-on-frontier", "explore_pod_40nm", "Section 2.3 / exploration",
        "The paper's 2x16-core/4 MB OoO design is on its family's Pareto frontier",
        "rows[core_type=ooo,cores_per_pod=16,llc_per_pod_mb=4.0,pods_per_chip=2].on_frontier",
        "==", expected=True,
    ),
    _relation(
        "ch8-paper-inorder-on-frontier", "explore_pod_40nm", "Section 2.3 / exploration",
        "The paper's 3x32-core/2 MB in-order design is on its family's frontier",
        "rows[core_type=inorder,cores_per_pod=32,llc_per_pod_mb=2.0,pods_per_chip=3].on_frontier",
        "==", expected=True,
    ),
    _relation(
        "ch8-knee-ooo", "explore_pod_40nm", "Section 2.3 / exploration",
        "The OoO knee point is exactly the paper's chosen Scale-Out (OoO) chip",
        "data.knees.ooo.candidate", "==", expected="ooo/16/4.0/crossbar/2/40nm",
    ),
    _relation(
        "ch8-knee-inorder", "explore_pod_40nm", "Section 2.3 / exploration",
        "The in-order knee point is exactly the paper's chosen Scale-Out (In-order) chip",
        "data.knees.inorder.candidate", "==", expected="inorder/32/2.0/crossbar/3/40nm",
    ),
    _relation(
        "ch8-scaling-raises-pd", "explore_scaling_20nm", "Section 2.4.1 / exploration",
        "Moving from 40 nm to 20 nm raises the OoO knee's performance density",
        'data.knees["20nm / ooo"].performance_density', ">",
        rhs_metric='data.knees["40nm / ooo"].performance_density',
    ),
    _relation(
        "ch8-sla-frontier-feasible", "explore_sla_sizing", "Study: SLA sizing",
        "Every frontier deployment meets the p99 service-level objective",
        "rows[on_frontier=True].p99_ms:max", "<=", rhs_metric="data.sla_p99_ms",
    ),
    # ------------------------------------------- chapter 9 (beyond paper)
    _relation(
        "ch9-zero-fault-full-availability", "fault_service_sweep", "Study: fault sweep",
        "The zero-intensity point runs the un-faulted engine at full availability",
        "rows[crash_intensity=0.0].availability", "==", expected=1.0,
    ),
    _relation(
        "ch9-crashes-cut-availability", "fault_service_sweep", "Study: fault sweep",
        "Raising the crash intensity lowers cluster availability",
        "rows[crash_intensity=4.0].availability", "<",
        rhs_metric="rows[crash_intensity=0.0].availability",
    ),
    _relation(
        "ch9-crashes-cut-goodput", "fault_service_sweep", "Study: fault sweep",
        "Crashes lose queued and in-flight requests, cutting the goodput fraction",
        "rows[crash_intensity=4.0].goodput_fraction", "<",
        rhs_metric="rows[crash_intensity=0.0].goodput_fraction",
    ),
    _relation(
        "ch9-mttr-hurts-availability", "fault_mttr_sensitivity", "Study: MTTR sensitivity",
        "Slower repairs accumulate more downtime per crash, lowering availability",
        "rows[mttr_fraction=0.4].availability", "<",
        rhs_metric="rows[mttr_fraction=0.02].availability",
    ),
    _relation(
        "ch9-mttr-slows-recovery", "fault_mttr_sensitivity", "Study: MTTR sensitivity",
        "Mean time to recover grows with the repair time",
        "rows[mttr_fraction=0.4].mean_time_to_recover_ms", ">",
        rhs_metric="rows[mttr_fraction=0.02].mean_time_to_recover_ms",
    ),
    _relation(
        "ch9-nk-zero-reduces", "fault_nk_sizing", "Study: N+k sizing",
        "k = 0 reduces N+k sizing to the base SLA sizing answer exactly",
        "rows[design=Scale-Out (OoO),k=0].servers", "==",
        rhs_metric="rows[design=Scale-Out (OoO),k=0].base_servers",
    ),
    _relation(
        "ch9-nk-tco-monotone", "fault_nk_sizing", "Study: N+k sizing",
        "Each tolerated failure adds a server, so monthly TCO is monotone in k",
        "rows[design=Scale-Out (OoO),k=4].monthly_tco_usd", ">=",
        rhs_metric="rows[design=Scale-Out (OoO),k=0].monthly_tco_usd",
    ),
    _relation(
        "ch9-nk-availability-gain", "fault_nk_sizing", "Study: N+k sizing",
        "Redundancy buys availability: k = 2 survives outages k = 0 cannot",
        "rows[design=Scale-Out (OoO),k=2].cluster_availability", ">",
        rhs_metric="rows[design=Scale-Out (OoO),k=0].cluster_availability",
    ),
    _relation(
        "ch9-link-failures-raise-latency", "fault_noc_links", "Study: NoC link faults",
        "Routing around eight failed mesh links lengthens request latency",
        "rows[failed_links=8].request_latency_cycles", ">",
        rhs_metric="rows[failed_links=0].request_latency_cycles",
    ),
    _relation(
        "ch9-link-failures-cut-ipc", "fault_noc_links", "Study: NoC link faults",
        "The longer faulted-network round trips depress system IPC",
        "rows[failed_links=8].system_ipc", "<",
        rhs_metric="rows[failed_links=0].system_ipc",
    ),
    # ------------------------------------------ chapter 10 (beyond paper)
    _value(
        "ch10-diurnal-peak-multiplier", "fleet_diurnal_day", "Study: diurnal day",
        "The diurnal shape peaks at 1.75x the day's mean rate (hour 14)",
        "rows[epoch=14,datacenter=fleet].multiplier", 1.75, rel=0.01,
    ),
    _relation(
        "ch10-diurnal-peak-tail", "fleet_diurnal_day", "Study: diurnal day",
        "Peak-hour queueing stretches fleet p99 well beyond the trough hour's",
        "rows[epoch=14,datacenter=fleet].p99_ms", ">",
        rhs_metric="rows[epoch=2,datacenter=fleet].p99_ms",
    ),
    _relation(
        "ch10-static-never-scales", "fleet_autoscale_policies", "Study: autoscaling",
        "The statically provisioned baseline records zero scaling events",
        "rows[autoscale=static].scale_events", "==", expected=0,
    ),
    _relation(
        "ch10-autoscale-cuts-tco", "fleet_autoscale_policies", "Study: autoscaling",
        "Target-utilization autoscaling sheds off-peak capacity and cuts monthly TCO",
        "rows[autoscale=target_utilization].monthly_cost_usd", "<",
        rhs_metric="rows[autoscale=static].monthly_cost_usd",
    ),
    _relation(
        "ch10-queue-depth-cuts-tco", "fleet_autoscale_policies", "Study: autoscaling",
        "Queue-depth autoscaling also undercuts static provisioning on TCO",
        "rows[autoscale=queue_depth].monthly_cost_usd", "<",
        rhs_metric="rows[autoscale=static].monthly_cost_usd",
    ),
    _relation(
        "ch10-nearest-min-network", "fleet_geo_routing", "Study: geo-routing",
        "Nearest routing minimizes mean network latency across the policies",
        "rows[routing=nearest].network_ms_mean", "<=",
        rhs_metric="rows.network_ms_mean:min",
    ),
    _relation(
        "ch10-spillover-sheds-hotspot", "fleet_geo_routing", "Study: geo-routing",
        "Under skewed demand, spillover sheds the hot site's load that nearest piles on",
        "rows[routing=spillover].max_utilization", "<",
        rhs_metric="rows[routing=nearest].max_utilization",
    ),
    _relation(
        "ch10-spillover-tail-win", "fleet_geo_routing", "Study: geo-routing",
        "Trading network hops for queueing headroom cuts the fleet p99 under skew",
        "rows[routing=spillover].p99_ms", "<",
        rhs_metric="rows[routing=nearest].p99_ms",
    ),
    _relation(
        "ch10-interactive-beats-batch", "fleet_class_priorities", "Study: request classes",
        "The prioritized interactive class holds a lower p99 than the 4x-heavier batch class",
        "rows[request_class=interactive].p99_ms", "<",
        rhs_metric="rows[request_class=batch].p99_ms",
    ),
    _relation(
        "ch10-both-classes-within-sla", "fleet_class_priorities", "Study: request classes",
        "Both request classes keep at least 95% of requests inside their own SLA",
        "rows.sla_attainment:min", ">=", expected=0.95,
    ),
    # ------------------------------------------ chapter 11 (beyond paper)
    _relation(
        "ch11-anchor-area-unity", "node_family_table", "Study: node family",
        "The derived 40 nm node is the paper's anchor: logic area scale exactly 1",
        "rows[node=40nm].logic_area_scale", "==", expected=1.0,
    ),
    _relation(
        "ch11-anchor-power-unity", "node_family_table", "Study: node family",
        "The derived 40 nm node is the paper's anchor: logic power scale exactly 1",
        "rows[node=40nm].logic_power_scale", "==", expected=1.0,
    ),
    _relation(
        "ch11-dennard-vdd-stalls", "node_family_table", "Study: node family",
        "Dennard breakdown: Vdd sits flat at 0.9 V from 40 nm down through 28 nm",
        "rows[node=28nm].vdd", "==", rhs_metric="rows[node=40nm].vdd",
    ),
    _relation(
        "ch11-analog-never-shrinks-max", "node_family_table", "Study: node family",
        "Analog/PHY area does not scale with feature size at any family node",
        "rows.analog_area_scale:max", "==", expected=1.0,
    ),
    _relation(
        "ch11-analog-never-shrinks-min", "node_family_table", "Study: node family",
        "Analog/PHY area does not scale with feature size at any family node",
        "rows.analog_area_scale:min", "==", expected=1.0,
    ),
    _relation(
        "ch11-calibrated-band", "node_family_table", "Study: node family",
        "Exactly the four 40-20 nm nodes sit inside the calibrated scaling band",
        "rows[calibrated=True].node:count", "==", expected=4,
    ),
    _relation(
        "ch11-extrapolation-flagged", "node_family_table", "Study: node family",
        "Nodes outside the calibrated band carry an explicit extrapolation flag",
        "rows[node=7nm].calibrated", "==", expected=False,
    ),
    _relation(
        "ch11-conventional-dies-at-90nm", "node_design_scaling", "Study: design scaling",
        "At 90 nm no conventional-core chip fits the fixed socket at any size",
        "rows[node=90nm,design=Conventional].feasible", "==", expected=False,
    ),
    _relation(
        "ch11-tco-improves-with-node", "node_design_scaling", "Study: design scaling",
        "Shrinking 40 nm to 20 nm raises Scale-Out (OoO) performance per TCO dollar",
        "rows[node=20nm,design=Scale-Out (OoO)].performance_per_tco", ">",
        rhs_metric="rows[node=40nm,design=Scale-Out (OoO)].performance_per_tco",
    ),
    _value(
        "ch11-pod-selection-consistent", "node_pod_selection", "Figure 3.5 / node sweep",
        "The per-node methodology reproduces Figure 3.5's 40 nm OoO pod density",
        "rows[node=40nm,core_type=ooo].performance_density", 0.1488, rel=0.02,
    ),
    _relation(
        "ch11-sram-density-scales", "node_sram_scaling", "Study: SRAM scaling",
        "A 16 MB LLC bank at 7 nm occupies a small fraction of its 90 nm area",
        "rows[node=7nm,capacity_mb=16.0].area_mm2", "<",
        rhs_metric="rows[node=90nm,capacity_mb=16.0].area_mm2",
    ),
    _relation(
        "ch11-family-knee-matches-paper", "explore_node_family", "Section 2.3 / family exploration",
        "The family-wide exploration's 40 nm OoO knee is still the paper's chip",
        'data.knees["40nm / ooo"].candidate', "==",
        expected="ooo/16/4.0/crossbar/2/40nm",
    ),
    _relation(
        "ch11-frontier-shift-20nm", "explore_node_family", "Section 2.4.1 / family exploration",
        "The OoO knee's performance density keeps rising from 40 nm to 20 nm",
        'data.knees["20nm / ooo"].performance_density', ">",
        rhs_metric='data.knees["40nm / ooo"].performance_density',
    ),
    _relation(
        "ch11-frontier-shift-7nm", "explore_node_family", "Study: family exploration",
        "The frontier keeps shifting up past the paper: 7 nm beats the 20 nm knee",
        'data.knees["7nm / ooo"].performance_density', ">",
        rhs_metric='data.knees["20nm / ooo"].performance_density',
    ),
    _relation(
        "ch11-90nm-trails-anchor", "explore_node_family", "Study: family exploration",
        "Walking the family backwards, the 90 nm knee trails the 40 nm anchor",
        'data.knees["90nm / ooo"].performance_density', "<",
        rhs_metric='data.knees["40nm / ooo"].performance_density',
    ),
)


def register_claims(catalog) -> None:
    """Attach :data:`PAPER_CLAIMS` to ``catalog`` (idempotent).

    Args:
        catalog: a :class:`~repro.runtime.SpecCatalog`; claims already
            attached (by id) are skipped so repeated registration is safe.
    """
    known = {claim.claim_id for claim in catalog.claims()}
    fresh = [claim for claim in PAPER_CLAIMS if claim.claim_id not in known]
    if fresh:
        catalog.attach_claims(fresh)


def claimed_catalog():
    """The shared experiment catalog with every registered claim attached."""
    from repro.experiments.registry import CATALOG

    register_claims(CATALOG)
    return CATALOG
