"""Renderers turning a validation run into report artifacts.

:func:`render_markdown` emits the committed, diff-able ``docs/REPORT.md``:
a summary table, then one section per chapter with a claim table and an ASCII
sketch of the numeric claims (actual value bars with the expected value in
text).  The output is deliberately free of timestamps, wall times, and cache
statuses so regenerating the report on a warm cache is byte-identical.

:func:`render_svg` draws the same per-chapter sketch as a small standalone
SVG bar figure for web rendering (``python -m repro report --svg-dir``).
"""

from __future__ import annotations

import numbers

from repro.report.claims import Grade, GradedClaim, format_value
from repro.report.validate import ValidationRun

#: Section titles per chapter of the report.
CHAPTER_TITLES = {
    2: "Scale-out workloads and baseline designs",
    3: "The performance-density methodology",
    4: "NOC-Out: the scale-out interconnect",
    5: "Datacenter performance and TCO",
    6: "3D-stacked scale-out processors",
    7: "Service-level studies (beyond the paper)",
    8: "Design-space exploration (beyond the paper)",
    9: "Dependability under faults (beyond the paper)",
    10: "Fleet-scale traffic simulation (beyond the paper)",
    11: "The technology-node family (beyond the paper)",
}

_GRADE_MARK = {Grade.PASS: "✅ pass", Grade.WARN: "⚠️ warn", Grade.FAIL: "❌ fail"}

#: Width, in characters, of the longest ASCII sketch bar.
BAR_WIDTH = 40


def _fmt(value: object) -> str:
    """:func:`~repro.report.claims.format_value`, with strings kept unquoted.

    Table cells and sketch labels show strings bare; numbers share the
    grader's ``.6g`` formatting so a value never renders two ways.
    """
    if isinstance(value, str):
        return value
    return format_value(value)


def _numeric_claims(items: "list[GradedClaim]") -> "list[GradedClaim]":
    return [
        item
        for item in items
        if isinstance(item.actual, numbers.Real) and not isinstance(item.actual, bool)
    ]


def ascii_sketch(items: "list[GradedClaim]", width: int = BAR_WIDTH) -> str:
    """ASCII bar sketch of the numeric claims' actual values.

    Bars are scaled to the largest absolute actual value in the group; each
    line carries the claim id, the bar, the value, and -- for value claims --
    the expected target.
    """
    numeric = _numeric_claims(items)
    if not numeric:
        return ""
    label_width = max(len(item.claim.claim_id) for item in numeric)
    scale = max(abs(float(item.actual)) for item in numeric) or 1.0  # type: ignore[arg-type]
    lines = []
    for item in numeric:
        value = float(item.actual)  # type: ignore[arg-type]
        bar = "#" * max(1, round(abs(value) / scale * width))
        suffix = f" {_fmt(item.actual)}"
        if item.claim.kind == "value":
            suffix += f" (expected {_fmt(item.claim.expected)})"
        lines.append(f"{item.claim.claim_id.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def render_svg(chapter: int, items: "list[GradedClaim]", width: int = 560) -> str:
    """A standalone SVG bar figure of one chapter's numeric claims."""
    numeric = _numeric_claims(items)
    bar_h, gap, left, top = 18, 6, 220, 34
    height = top + len(numeric) * (bar_h + gap) + 12
    scale = max((abs(float(i.actual)) for i in numeric), default=1.0) or 1.0  # type: ignore[arg-type]
    fill = {Grade.PASS: "#2e7d32", Grade.WARN: "#f9a825", Grade.FAIL: "#c62828"}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="monospace" font-size="12">',
        f'<text x="8" y="20" font-size="14">Chapter {chapter} — '
        f"{CHAPTER_TITLES.get(chapter, '')}</text>",
    ]
    for index, item in enumerate(numeric):
        y = top + index * (bar_h + gap)
        value = float(item.actual)  # type: ignore[arg-type]
        bar = max(2, round(abs(value) / scale * (width - left - 90)))
        parts.append(
            f'<text x="8" y="{y + 13}">{item.claim.claim_id}</text>'
            f'<rect x="{left}" y="{y}" width="{bar}" height="{bar_h}" '
            f'fill="{fill[item.grade]}"/>'
            f'<text x="{left + bar + 6}" y="{y + 13}">{_fmt(item.actual)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _claim_table(items: "list[GradedClaim]") -> "list[str]":
    lines = [
        "| claim | source | expected | actual | grade | note |",
        "|---|---|---|---|---|---|",
    ]
    escape = lambda text: text.replace("|", "\\|")  # noqa: E731
    for item in items:
        lines.append(
            "| `{id}` | {source} | {expected} | {actual} | {grade} | {note} |".format(
                id=item.claim.claim_id,
                source=escape(item.claim.source),
                expected=escape(item.claim.expected_display()),
                actual=escape(_fmt(item.actual)),
                grade=_GRADE_MARK[item.grade],
                note=escape(item.detail),
            )
        )
    return lines


def render_markdown(run: ValidationRun) -> str:
    """The full reproduction report as deterministic Markdown.

    Args:
        run: a :class:`~repro.report.validate.ValidationRun` to render.

    Returns:
        The report text, ending in a single newline; regenerating from the
        same experiment outputs reproduces it byte for byte.
    """
    summary = run.summary()
    lines = [
        "# Reproduction report — Scale-Out Processors (ISCA 2012)",
        "",
        "<!-- Generated by `python -m repro report --out docs/REPORT.md`."
        " Do not edit by hand: tests/test_docs.py checks this file against"
        " regeneration. -->",
        "",
        "Every registered claim from the paper-expected-values registry"
        " (see [docs/report.md](report.md)), graded against a fresh run of the"
        " experiment that reproduces it.",
        "",
        "## Summary",
        "",
        f"**{summary['claims']} claims — {summary['pass']} pass,"
        f" {summary['warn']} warn, {summary['fail']} fail**"
        f" across {summary['experiments']} experiments"
        f" (chapters {', '.join(str(c) for c in summary['chapters'])}).",
        "",
        "| chapter | claims | pass | warn | fail |",
        "|---|---|---|---|---|",
    ]
    by_chapter = run.by_chapter()
    for chapter, items in by_chapter.items():
        passes = sum(1 for i in items if i.grade is Grade.PASS)
        warns = sum(1 for i in items if i.grade is Grade.WARN)
        fails = sum(1 for i in items if i.grade is Grade.FAIL)
        title = CHAPTER_TITLES.get(chapter, f"Chapter {chapter}")
        lines.append(f"| {chapter} — {title} | {len(items)} | {passes} | {warns} | {fails} |")
    for chapter, items in by_chapter.items():
        lines += [
            "",
            f"## Chapter {chapter} — {CHAPTER_TITLES.get(chapter, '')}",
            "",
        ]
        lines += _claim_table(items)
        sketch = ascii_sketch(items)
        if sketch:
            lines += ["", "```text", sketch, "```"]
    lines += [
        "",
        "---",
        "",
        "Experiments behind the claims: "
        + ", ".join(f"`{check.experiment_id}`" for check in run.experiments)
        + ".",
        "",
        "Tolerance semantics, the metric-path language, and the"
        " figure→claim→module map are documented in"
        " [docs/report.md](report.md).",
    ]
    return "\n".join(lines) + "\n"
