"""Off-chip memory system models: DRAM channels and bandwidth provisioning."""

from repro.memory.dram import DramChannel, DDR3_1667, DDR4_2133, channel_for_standard
from repro.memory.provisioning import (
    BandwidthDemand,
    channels_required,
    worst_case_demand_gbps,
)

__all__ = [
    "DramChannel",
    "DDR3_1667",
    "DDR4_2133",
    "channel_for_standard",
    "BandwidthDemand",
    "channels_required",
    "worst_case_demand_gbps",
]
