"""Memory-channel provisioning.

Section 2.1.6: the number of memory interfaces must be chosen based on the
worst-case off-chip traffic of the workloads.  The paper measures per-design
bandwidth demand via simulation and provisions channels accordingly (e.g. a
16-core OoO pod demands 9.4 GB/s; a 32-core in-order pod demands 15 GB/s).  Here
the demand is computed from the workload profiles' off-chip bytes per instruction
and the analytic per-core performance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.memory.dram import DramChannel
from repro.technology.node import TechnologyNode
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class BandwidthDemand:
    """Off-chip bandwidth demand of one workload on one configuration.

    Attributes:
        workload: workload name.
        gbps: demanded DRAM bandwidth in GB/s.
    """

    workload: str
    gbps: float


def demand_gbps(
    workload: WorkloadProfile,
    cores: int,
    llc_capacity_mb: float,
    per_core_ipc: float,
    node: TechnologyNode,
    core_type: str = "ooo",
) -> float:
    """Off-chip bandwidth demand (GB/s) of ``workload`` on the given configuration.

    demand = cores * IPC * frequency * bytes-per-instruction.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if per_core_ipc < 0:
        raise ValueError("per_core_ipc must be non-negative")
    bytes_per_instr = workload.offchip_bytes_per_instruction(llc_capacity_mb, cores, core_type)
    instr_per_second = per_core_ipc * node.frequency_ghz * 1e9 * cores
    return instr_per_second * bytes_per_instr / 1e9


def worst_case_demand_gbps(
    workloads: Iterable[WorkloadProfile],
    cores: int,
    llc_capacity_mb: float,
    per_core_ipc_by_workload: "dict[str, float]",
    node: TechnologyNode,
    core_type: str = "ooo",
) -> BandwidthDemand:
    """Worst-case off-chip demand across the workload suite."""
    worst: "BandwidthDemand | None" = None
    for workload in workloads:
        ipc = per_core_ipc_by_workload[workload.name]
        gbps = demand_gbps(workload, cores, llc_capacity_mb, ipc, node, core_type)
        if worst is None or gbps > worst.gbps:
            worst = BandwidthDemand(workload=workload.name, gbps=gbps)
    if worst is None:
        raise ValueError("no workloads supplied")
    return worst


def channels_required(demand_gbps_value: float, channel: DramChannel, minimum: int = 1) -> int:
    """Number of DRAM channels needed to sustain ``demand_gbps_value``."""
    if demand_gbps_value < 0:
        raise ValueError("demand must be non-negative")
    needed = int(math.ceil(demand_gbps_value / channel.useful_bandwidth_gbps))
    return max(minimum, needed)
