"""DRAM channel models.

Section 2.4.1 measures a DDR3-1667 channel at 12.8 GB/s peak, 5.7 W, with an
effective utilization of 70 % (9 GB/s of useful bandwidth).  The 20nm projection
and the 3D study (Chapter 6) assume DDR4, which doubles per-channel bandwidth at
the same interface cost.  Main memory access latency is 45 ns in all studies
(Table 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.node import TechnologyNode


@dataclass(frozen=True)
class DramChannel:
    """One DRAM channel (PHY + controller + DIMMs behind it).

    Attributes:
        standard: DRAM standard name ("DDR3-1667", "DDR4-2133", ...).
        peak_bandwidth_gbps: peak transfer rate in GB/s.
        effective_utilization: fraction of peak usable in steady state.
        power_w: interface power (PHY + controller).
        access_latency_ns: idle DRAM access latency.
    """

    standard: str
    peak_bandwidth_gbps: float
    effective_utilization: float = 0.70
    power_w: float = 5.7
    access_latency_ns: float = 45.0

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError("peak_bandwidth_gbps must be positive")
        if not 0 < self.effective_utilization <= 1:
            raise ValueError("effective_utilization must be in (0, 1]")

    @property
    def useful_bandwidth_gbps(self) -> float:
        """Sustainable bandwidth after accounting for DRAM inefficiencies."""
        return self.peak_bandwidth_gbps * self.effective_utilization

    def access_latency_cycles(self, node: TechnologyNode) -> int:
        """Idle access latency in core clock cycles at ``node``'s frequency."""
        return max(1, int(round(self.access_latency_ns * node.frequency_ghz)))

    def queueing_delay_cycles(self, demand_gbps: float, node: TechnologyNode) -> float:
        """Extra queueing delay when the channel runs close to saturation.

        An M/D/1-flavoured penalty on top of the idle latency; the paper
        provisions channels for worst-case demand, so this stays small in all of
        the evaluated designs but lets oversubscribed what-if configurations
        degrade gracefully.
        """
        if demand_gbps < 0:
            raise ValueError("demand_gbps must be non-negative")
        rho = min(0.999, demand_gbps / self.useful_bandwidth_gbps)
        service_cycles = 4.0
        return 0.5 * rho / (1.0 - rho) * service_cycles * node.frequency_ghz / 2.0


#: DDR3-1667 single channel (Section 2.4.1): 12.8 GB/s peak, 9 GB/s useful, 5.7 W.
DDR3_1667 = DramChannel(standard="DDR3-1667", peak_bandwidth_gbps=12.8)

#: DDR4 channel used at 20nm and in Chapter 6: double the DDR3 per-channel bandwidth.
DDR4_2133 = DramChannel(standard="DDR4-2133", peak_bandwidth_gbps=25.6)


def channel_for_standard(standard: str) -> DramChannel:
    """Return the channel model for a DRAM ``standard`` string ("DDR3" / "DDR4")."""
    key = standard.upper()
    if key.startswith("DDR3"):
        return DDR3_1667
    if key.startswith("DDR4"):
        return DDR4_2133
    raise KeyError(f"unknown DRAM standard {standard!r}")
