"""repro -- a reproduction of "Scale-Out Processors" (ISCA 2012 / EPFL thesis).

The library implements the paper's performance-density design methodology, the
pod-based Scale-Out Processor family, the NOC-Out pod microarchitecture, the
datacenter TCO analysis, and the 3D stacking extensions, together with every
substrate the evaluation depends on (workload models, core/cache/memory/NoC
models, an analytic chip performance model, and reduced-fidelity cycle-level
simulators).

Quick start::

    from repro import design_scale_out_processor
    from repro.technology import NODE_40NM

    chip = design_scale_out_processor(core_type="ooo", node=NODE_40NM)
    print(chip.summary())

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
per-experiment index.
"""

from repro.core import (
    Pod,
    ScaleOutChip,
    ScaleOutDesignMethodology,
    design_scale_out_processor,
)
from repro.perfmodel import AnalyticPerformanceModel, PerformanceEstimate, performance_density
from repro.workloads import CLOUDSUITE, default_suite, get_workload

__version__ = "1.0.0"

__all__ = [
    "Pod",
    "ScaleOutChip",
    "ScaleOutDesignMethodology",
    "design_scale_out_processor",
    "AnalyticPerformanceModel",
    "PerformanceEstimate",
    "performance_density",
    "CLOUDSUITE",
    "default_suite",
    "get_workload",
    "__version__",
]
