"""System assembly: cores + NUCA LLC + directory + memory channels.

:class:`SimulatedSystem` wires together the simulation components for one pod (or
one whole-die coherence domain), runs the synthetic traces, and reports the same
aggregate statistics the paper extracts from Flexus: aggregate IPC, LLC miss
rates, snoop fractions, and memory traffic.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.caches.nuca import NucaLLC
from repro.cores.models import core_model
from repro.memory.dram import channel_for_standard
from repro.perfmodel.analytic import SystemConfig
from repro.sim.cache import SetAssociativeCache
from repro.sim.core import TraceDrivenCore
from repro.sim.directory import Directory
from repro.sim.memctrl import MemoryChannelSim
from repro.sim.stats import SimulationStats
from repro.workloads.profile import WorkloadProfile
from repro.workloads.traces import SyntheticTraceGenerator


class SimulatedSystem:
    """A simulated pod: cores sharing a banked LLC behind an interconnect.

    Args:
        workload: workload profile driving the synthetic traces.
        config: system configuration (cores, core type, LLC, interconnect, node).
        memory_channels: number of DRAM channels; defaults to one per eight cores.
        seed: RNG seed for trace generation.
    """

    #: LLC bank service time (cycles a bank is occupied per access).
    BANK_SERVICE_CYCLES = 2.0

    def __init__(
        self,
        workload: WorkloadProfile,
        config: SystemConfig,
        memory_channels: "int | None" = None,
        seed: int = 1,
    ):
        self.workload = workload
        self.config = config
        self.seed = seed
        self.node = config.node
        self.core = core_model(config.core_type)

        llc = config.llc()
        self.num_banks = llc.num_banks
        bank_bytes = int(llc.bank_capacity_mb * 1024 * 1024)
        self.banks = [
            SetAssociativeCache(bank_bytes, llc.associativity, llc.line_bytes, name=f"llc{b}")
            for b in range(self.num_banks)
        ]
        self._bank_next_free = [0.0] * self.num_banks
        self.bank_latency = llc.bank_access_latency_cycles
        self.network_latency = config.resolved_interconnect().latency_cycles(
            config.floorplan(), self.node
        )
        self.directory = Directory(line_bytes=llc.line_bytes)

        if memory_channels is None:
            memory_channels = max(1, config.cores // 8)
        dram = channel_for_standard(self.node.memory_standard)
        self.channels = [
            MemoryChannelSim(dram, self.node, llc.line_bytes) for _ in range(memory_channels)
        ]

        self.stats = SimulationStats()
        self._line_bytes = llc.line_bytes

    # ----------------------------------------------------------------- routing
    def _bank_for(self, address: int) -> int:
        return (address // self._line_bytes) % self.num_banks

    def _bank_local_address(self, address: int) -> int:
        """Address as seen by the selected bank (bank-interleaving bits stripped).

        Without stripping the interleaving bits, every line routed to bank ``b``
        would also index the same subset of the bank's sets, wasting most of the
        bank's capacity.
        """
        line = address // self._line_bytes
        return (line // self.num_banks) * self._line_bytes + (address % self._line_bytes)

    def _channel_for(self, address: int) -> int:
        # Interleave channels on the line bits above the bank-select bits; using
        # the same low bits as _bank_for would tie channel choice to bank choice
        # (e.g. with channels dividing banks, each bank's lines would all land
        # on one channel), serializing that bank's misses behind one channel.
        line = address // self._line_bytes
        return (line // self.num_banks) % len(self.channels)

    # ------------------------------------------------------------ LLC servicing
    def llc_request(
        self, core_id: int, address: int, is_write: bool, is_instruction: bool, now: float
    ) -> float:
        """Service one L1 miss; returns the total latency seen by the core."""
        self.stats.llc_accesses += 1
        self.stats.network_latency_cycles_total += self.network_latency

        bank_id = self._bank_for(address)
        bank = self.banks[bank_id]
        local_address = self._bank_local_address(address)

        # Bank contention: the access occupies the bank for a fixed service time.
        start = max(now + self.network_latency, self._bank_next_free[bank_id])
        self._bank_next_free[bank_id] = start + self.BANK_SERVICE_CYCLES
        queue_delay = start - (now + self.network_latency)

        snoops = self.directory.access(core_id, address, is_write)
        self.stats.snoops += snoops
        snoop_delay = snoops * self.network_latency if snoops and is_write else 0.0

        hit = bank.access(local_address, is_write)
        latency = self.network_latency + queue_delay + self.bank_latency + snoop_delay
        if not hit:
            self.stats.llc_misses += 1
            self.stats.memory_reads += 1
            channel = self.channels[self._channel_for(address)]
            completion = channel.request(start + self.bank_latency)
            latency = (completion - now) + self.network_latency  # response traversal
            evicted = bank.fill(local_address, dirty=is_write)
            if evicted is not None:
                self.directory.evict(evicted)
        return latency

    # ----------------------------------------------------------------- warmup
    def warm_caches(self, generator: SyntheticTraceGenerator) -> None:
        """Pre-fill the LLC with the warm working set (the paper's warmed checkpoints).

        The measurement methodology of Sections 3.3 and 4.3.4 launches simulations
        from checkpoints with warmed caches; without warmup a short measurement
        window would see compulsory misses for the entire instruction footprint and
        secondary working set.  Regions are installed in criticality order
        (instructions, shared OS data, hot shared lines, secondary working set)
        until the LLC is nearly full, so smaller LLCs naturally hold less of the
        capturable content.
        """
        total_lines = sum(bank.num_sets * bank.associativity for bank in self.banks)
        budget = int(total_lines * 0.95)
        filled = 0
        for region_name in ("instructions", "shared_small", "shared_hot", "capturable"):
            region = generator.regions[region_name]
            lines_in_region = max(1, region.size_bytes // self._line_bytes)
            for i in range(lines_in_region):
                if filled >= budget:
                    return
                address = region.base + i * self._line_bytes
                bank = self.banks[self._bank_for(address)]
                bank.fill(self._bank_local_address(address))
                filled += 1

    # -------------------------------------------------------------------- run
    def run(self, instructions_per_core: int = 20_000, warmup: bool = True) -> SimulationStats:
        """Generate traces, run every core, and aggregate the statistics."""
        if instructions_per_core <= 0:
            raise ValueError("instructions_per_core must be positive")
        generator = SyntheticTraceGenerator(
            self.workload,
            cores=self.config.cores,
            seed=self.seed,
            core_type=self.core.name,
        )
        if warmup:
            self.warm_caches(generator)
        cores = [
            TraceDrivenCore(
                core_id=c,
                core_model=self.core,
                workload=self.workload,
                trace=generator.events_for_core(c, instructions_per_core),
                llc_request=self.llc_request,
            )
            for c in range(self.config.cores)
        ]
        # Interleave the cores in global time order: always advance the core with
        # the earliest local clock, so shared bank/channel contention state sees
        # requests in (approximately) the order concurrent hardware would.
        heap: "list[tuple[float, int]]" = [(0.0, c) for c in range(len(cores))]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            new_clock = cores[core_id].step()
            if new_clock is not None:
                heapq.heappush(heap, (new_clock, core_id))
        for core in cores:
            self.stats.per_core_cycles.append(core.stats.cycles)
            self.stats.per_core_instructions.append(core.stats.instructions)
            self.stats.instructions += core.stats.instructions
        self.stats.cycles = max(self.stats.per_core_cycles) if self.stats.per_core_cycles else 0.0
        return self.stats


def simulate_system(
    workload: WorkloadProfile,
    config: SystemConfig,
    instructions_per_core: int = 20_000,
    seed: int = 1,
    memory_channels: "int | None" = None,
) -> SimulationStats:
    """Convenience wrapper: build a :class:`SimulatedSystem`, run it, return stats."""
    system = SimulatedSystem(workload, config, memory_channels=memory_channels, seed=seed)
    return system.run(instructions_per_core)
