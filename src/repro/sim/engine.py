"""Minimal discrete-event simulation engine."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A time-ordered event queue driving the simulation.

    Events are (time, callback) pairs; ties are broken by insertion order so the
    simulation is fully deterministic.
    """

    def __init__(self) -> None:
        self._heap: "list[tuple[float, int, Callable[[], None]]]" = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    @property
    def pending(self) -> int:
        """Number of events waiting to run."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        callback()
        self._processed += 1
        return True

    def run(self, until: "float | None" = None, max_events: "int | None" = None) -> float:
        """Run events until the queue empties, ``until`` is reached, or the budget runs out.

        Returns the simulation time when the run stopped.  When ``until`` is
        given and the run is not cut short by ``max_events``, ``now`` advances
        to ``until`` even if the heap drained early (or was empty to begin
        with): the caller asked to simulate that much time, and a later
        ``schedule_at`` must not see a stale clock.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                # Budget exhausted mid-run: report the time actually reached.
                return self.now
            self.step()
            executed += 1
        if until is not None and until > self.now:
            self.now = until
        return self.now
