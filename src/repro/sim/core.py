"""Trace-driven core model.

Each core consumes the synthetic reference trace produced by
:class:`repro.workloads.traces.SyntheticTraceGenerator`.  Between references the
core retires instructions at the workload's base CPI; references that reach the
LLC incur the LLC (or memory) latency.  Instruction fetches stall the core for the
full latency (front-end stall); data references are tracked in a bounded
outstanding-miss window whose size comes from the core microarchitecture, so
memory-level parallelism emerges from the window rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cores.models import CoreModel
from repro.workloads.profile import WorkloadProfile
from repro.workloads.traces import TraceEvent


#: Signature of the system callback servicing an LLC request:
#: (core_id, address, is_write, is_instruction, issue_time) -> completion latency.
LlcRequestFn = Callable[[int, int, bool, bool, float], float]


@dataclass
class CoreStats:
    """Per-core execution counters."""

    instructions: int = 0
    cycles: float = 0.0
    llc_requests: int = 0
    fetch_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0


class TraceDrivenCore:
    """One simulated core executing a pre-generated reference trace."""

    def __init__(
        self,
        core_id: int,
        core_model: CoreModel,
        workload: WorkloadProfile,
        trace: Sequence[TraceEvent],
        llc_request: LlcRequestFn,
    ):
        self.core_id = core_id
        self.core_model = core_model
        self.workload = workload
        self.trace = trace
        self.llc_request = llc_request
        self.base_cpi = workload.behavior(core_model.name).base_cpi
        self.max_outstanding = max(1, core_model.max_outstanding_misses)
        self.stats = CoreStats()
        #: Completion times of data requests currently in flight.
        self._outstanding: "list[float]" = []
        self._clock: float = 0.0
        self._next_event: int = 0

    # -------------------------------------------------------------- execution
    def run(self) -> CoreStats:
        """Execute the whole trace (single-core convenience; see :meth:`step`)."""
        while self.step() is not None:
            pass
        return self.stats

    @property
    def clock(self) -> float:
        """The core's current local time in cycles."""
        return self._clock

    @property
    def done(self) -> bool:
        """Whether the core has consumed its whole trace."""
        return self._next_event >= len(self.trace) and not self._outstanding

    def step(self) -> "float | None":
        """Process the next trace event; returns the new clock, or None when done.

        The system scheduler always steps the core with the earliest clock, which
        interleaves the cores' LLC and memory accesses in global time order so
        bank and channel contention are shared correctly.
        """
        if self._next_event >= len(self.trace):
            # Drain outstanding data requests, then finish.
            if self._outstanding:
                drain_until = max(self._outstanding)
                if drain_until > self._clock:
                    self.stats.data_stall_cycles += drain_until - self._clock
                    self._clock = drain_until
                self._outstanding.clear()
                self.stats.cycles = self._clock
            self.stats.cycles = self._clock
            return None
        event = self.trace[self._next_event]
        self._next_event += 1
        clock = self._clock

        # Retire the instructions between the previous reference and this one.
        clock += event.instruction_gap * self.base_cpi
        self.stats.instructions += event.instruction_gap

        self.stats.llc_requests += 1
        if event.is_instruction:
            # L1-I misses stall the front end until the line returns.
            latency = self.llc_request(self.core_id, event.address, False, True, clock)
            clock += latency
            self.stats.fetch_stall_cycles += latency
        else:
            clock = self._issue_data_request(event, clock)

        self._clock = clock
        self.stats.cycles = clock
        return clock

    def _issue_data_request(self, event: TraceEvent, clock: float) -> float:
        """Issue a data reference, stalling only when the miss window is full."""
        # Retire completed requests.
        self._outstanding = [t for t in self._outstanding if t > clock]
        if len(self._outstanding) >= self.max_outstanding:
            # The window is full: stall until the oldest outstanding miss returns.
            earliest = min(self._outstanding)
            self.stats.data_stall_cycles += earliest - clock
            clock = earliest
            self._outstanding = [t for t in self._outstanding if t > clock]
        latency = self.llc_request(
            self.core_id, event.address, event.is_write, False, clock
        )
        self._outstanding.append(clock + latency)
        return clock

    # ------------------------------------------------------------------ stats
    @property
    def ipc(self) -> float:
        """Application IPC of this core over its execution window."""
        if self.stats.cycles <= 0:
            return 0.0
        return self.stats.instructions / self.stats.cycles
