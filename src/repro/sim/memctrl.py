"""DRAM channel timing model for the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.dram import DramChannel, DDR3_1667
from repro.technology.node import NODE_40NM, TechnologyNode


class MemoryChannelSim:
    """One DRAM channel with fixed access latency and bandwidth-limited service.

    Requests are serviced in arrival order; each 64-byte transfer occupies the
    channel for ``service_cycles`` (derived from the channel's useful bandwidth),
    on top of the fixed DRAM access latency.  Requests that arrive while the
    channel is busy queue behind it, so oversubscribed configurations see rising
    memory latency -- the behaviour the paper's bandwidth provisioning avoids.
    """

    def __init__(
        self,
        channel: DramChannel = DDR3_1667,
        node: TechnologyNode = NODE_40NM,
        line_bytes: int = 64,
    ):
        self.channel = channel
        self.node = node
        self.line_bytes = line_bytes
        self.access_latency_cycles = channel.access_latency_cycles(node)
        bytes_per_cycle = channel.useful_bandwidth_gbps / (node.frequency_ghz)
        self.service_cycles = max(1.0, line_bytes / max(1e-9, bytes_per_cycle))
        self._next_free: float = 0.0
        self.requests = 0
        self.busy_cycles = 0.0

    def request(self, now: float) -> float:
        """Issue a line fetch at time ``now``; returns the completion time."""
        if now < 0:
            raise ValueError("now must be non-negative")
        start = max(now, self._next_free)
        self._next_free = start + self.service_cycles
        self.requests += 1
        self.busy_cycles += self.service_cycles
        return start + self.service_cycles + self.access_latency_cycles

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of elapsed time the channel's data bus was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)
