"""Directory coherence model.

Each LLC slice has a co-located directory slice (Figure 4.1b) tracking which
cores hold each line in their L1s.  On an LLC access the directory decides
whether a snoop must be sent: an invalidation when a writer needs exclusivity
while other cores share the line, or a forwarding request when another core holds
the only up-to-date copy.  Scale-out workloads trigger such snoops on only ~2.7 %
of LLC accesses (Figure 4.3), which is the property NOC-Out exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DirectoryStats:
    """Counters kept by the directory."""

    lookups: int = 0
    invalidation_snoops: int = 0
    forward_snoops: int = 0

    @property
    def total_snoops(self) -> int:
        """All snoop messages sent to cores."""
        return self.invalidation_snoops + self.forward_snoops

    @property
    def snoop_fraction(self) -> float:
        """Fraction of directory lookups that generated at least one snoop."""
        if self.lookups == 0:
            return 0.0
        return self.total_snoops / self.lookups


class Directory:
    """Sharer-tracking directory for one coherence domain (one pod)."""

    def __init__(self, line_bytes: int = 64):
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.line_bytes = line_bytes
        #: line address -> set of core ids holding the line in their L1.
        self._sharers: "dict[int, set[int]]" = {}
        #: line address -> core id holding the line modified (or None).
        self._owner: "dict[int, int]" = {}
        self.stats = DirectoryStats()

    def _line(self, address: int) -> int:
        return (address // self.line_bytes) * self.line_bytes

    # ----------------------------------------------------------------- access
    def access(self, core_id: int, address: int, is_write: bool) -> int:
        """Record an LLC access by ``core_id`` and return the number of snoops sent."""
        line = self._line(address)
        self.stats.lookups += 1
        sharers = self._sharers.setdefault(line, set())
        owner = self._owner.get(line)
        snoops = 0

        if is_write:
            # Invalidate every other sharer; the writer becomes the owner.
            others = sharers - {core_id}
            if others:
                snoops += len(others)
                self.stats.invalidation_snoops += len(others)
            sharers.clear()
            sharers.add(core_id)
            self._owner[line] = core_id
        else:
            # A read of a line owned (modified) by another core forwards from its L1.
            if owner is not None and owner != core_id:
                snoops += 1
                self.stats.forward_snoops += 1
                self._owner.pop(line, None)
            sharers.add(core_id)
        return snoops

    # ------------------------------------------------------------- eviction
    def evict(self, address: int) -> None:
        """Drop directory state for a line evicted from the LLC (inclusive LLC)."""
        line = self._line(address)
        self._sharers.pop(line, None)
        self._owner.pop(line, None)

    def sharers_of(self, address: int) -> "frozenset[int]":
        """Cores currently recorded as sharing ``address``."""
        return frozenset(self._sharers.get(self._line(address), set()))
