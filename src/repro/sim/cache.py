"""Set-associative cache model with LRU replacement and MSHR accounting."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache structure."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed (0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class CacheLine:
    """State of one resident cache line."""

    tag: int
    dirty: bool = False


class SetAssociativeCache:
    """A set-associative, LRU-replacement cache.

    Used both for per-core L1 caches and for individual LLC banks.  The model
    tracks residency and dirtiness only; data values are irrelevant to the
    studies.

    Args:
        capacity_bytes: total cache capacity in bytes.
        associativity: ways per set.
        line_bytes: cache line size.
        name: human-readable name used in debugging output.
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int = 16,
        line_bytes: int = 64,
        name: str = "cache",
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.name = name
        lines = max(1, capacity_bytes // line_bytes)
        self.num_sets = max(1, lines // associativity)
        # Each set is an OrderedDict tag -> CacheLine in LRU order (last = MRU).
        self._sets: "list[OrderedDict[int, CacheLine]]" = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # --------------------------------------------------------------- indexing
    def _index_and_tag(self, address: int) -> "tuple[int, int]":
        line_addr = address // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def line_address(self, address: int) -> int:
        """Line-aligned address for ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    # ----------------------------------------------------------------- lookup
    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no LRU update, no stats)."""
        index, tag = self._index_and_tag(address)
        return tag in self._sets[index]

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access the cache; returns True on a hit.

        Misses do *not* allocate -- call :meth:`fill` when the refill arrives so
        the timing model controls allocation order.
        """
        self.stats.accesses += 1
        index, tag = self._index_and_tag(address)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is None:
            self.stats.misses += 1
            return False
        cache_set.move_to_end(tag)
        if is_write:
            line.dirty = True
        self.stats.hits += 1
        return True

    # ------------------------------------------------------------------- fill
    def fill(self, address: int, dirty: bool = False) -> "int | None":
        """Install the line holding ``address``; returns the evicted line address, if any."""
        index, tag = self._index_and_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            if dirty:
                cache_set[tag].dirty = True
            return None
        evicted_address: "int | None" = None
        if len(cache_set) >= self.associativity:
            victim_tag, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
            evicted_address = (victim_tag * self.num_sets + index) * self.line_bytes
        cache_set[tag] = CacheLine(tag=tag, dirty=dirty)
        return evicted_address

    def invalidate(self, address: int) -> bool:
        """Remove the line holding ``address``; returns True if it was resident."""
        index, tag = self._index_and_tag(address)
        return self._sets[index].pop(tag, None) is not None

    # ------------------------------------------------------------------ sizes
    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)
