"""Aggregated simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationStats:
    """Results of one simulated measurement window.

    Attributes:
        cycles: length of the measurement window in cycles (the slowest core's
            completion time, mirroring the paper's system-level IPC metric).
        instructions: total application instructions committed by all cores.
        llc_accesses: accesses that reached the LLC.
        llc_misses: accesses that missed the LLC and went to memory.
        snoops: coherence snoop messages sent to cores.
        memory_reads: line fetches issued to DRAM.
        per_core_cycles: completion time of each core.
        per_core_instructions: instructions committed by each core.
        network_latency_cycles_total: cumulative one-way network latency incurred.
    """

    cycles: float = 0.0
    instructions: int = 0
    llc_accesses: int = 0
    llc_misses: int = 0
    snoops: int = 0
    memory_reads: int = 0
    per_core_cycles: "list[float]" = field(default_factory=list)
    per_core_instructions: "list[int]" = field(default_factory=list)
    network_latency_cycles_total: float = 0.0

    @property
    def aggregate_ipc(self) -> float:
        """Aggregate application instructions per cycle (the paper's performance)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def per_core_ipc(self) -> float:
        """Average per-core IPC."""
        if not self.per_core_cycles:
            return 0.0
        ipcs = [
            instr / cyc if cyc > 0 else 0.0
            for instr, cyc in zip(self.per_core_instructions, self.per_core_cycles)
        ]
        return sum(ipcs) / len(ipcs)

    @property
    def llc_miss_ratio(self) -> float:
        """Fraction of LLC accesses that missed."""
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_misses / self.llc_accesses

    @property
    def snoop_fraction(self) -> float:
        """Fraction of LLC accesses that triggered a snoop to a core (Figure 4.3)."""
        if self.llc_accesses == 0:
            return 0.0
        return self.snoops / self.llc_accesses

    @property
    def llc_mpki(self) -> float:
        """LLC (off-chip) misses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return self.llc_misses / self.instructions * 1000.0

    @property
    def network_latency_avg(self) -> float:
        """Average one-way network latency per LLC access (zero when idle)."""
        if self.llc_accesses == 0:
            return 0.0
        return self.network_latency_cycles_total / self.llc_accesses

    @property
    def average_network_latency(self) -> float:
        """Alias of :attr:`network_latency_avg` kept for older callers."""
        return self.network_latency_avg
