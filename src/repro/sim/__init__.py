"""Reduced-fidelity cycle-level simulation substrate.

The original study used Flexus (cycle-accurate, full-system SPARC simulation).
This package provides the substitution described in DESIGN.md: a discrete-event,
trace-driven multi-core simulator with

* trace-driven cores with a bounded outstanding-miss window (emergent
  memory-level parallelism),
* set-associative L1 and banked NUCA LLC models with LRU replacement and MSHRs,
* a directory that tracks L1 sharers and generates invalidation / forwarding
  snoops,
* bandwidth-limited DRAM channels with a fixed access latency, and
* interconnect latency supplied by the analytic topology models.

It exists to exercise the full cache/coherence/NoC code path and to validate the
analytic model's trends (Figure 3.3), not to re-derive microarchitecture.
"""

from repro.sim.engine import EventQueue
from repro.sim.cache import SetAssociativeCache, CacheStats
from repro.sim.directory import Directory, DirectoryStats
from repro.sim.memctrl import MemoryChannelSim
from repro.sim.core import TraceDrivenCore
from repro.sim.stats import SimulationStats
from repro.sim.system import SimulatedSystem, simulate_system

__all__ = [
    "EventQueue",
    "SetAssociativeCache",
    "CacheStats",
    "Directory",
    "DirectoryStats",
    "MemoryChannelSim",
    "TraceDrivenCore",
    "SimulationStats",
    "SimulatedSystem",
    "simulate_system",
]
