"""3D logic-on-logic Scale-Out Processors (Chapter 6).

Chapter 6 extends pods to stacks of 2-4 logic dies connected by TSVs.  Two
strategies exploit the negligible vertical distance:

* **fixed-pod** -- keep the pod's core count and LLC capacity constant and spread
  it across the stacked dies, shrinking its per-die footprint and the on-chip
  distance between cores and LLC;
* **fixed-distance** -- keep the per-die footprint constant and grow the pod's
  core count and LLC capacity with the number of dies, keeping the on-chip
  distance unchanged while the larger LLC filters more memory traffic.

3D performance density is throughput per unit volume -- equivalently, throughput
per footprint area divided by the number of stacked dies.
"""

from repro.three_d.stacking import StackingStrategy, StackedPod, stack_fixed_pod, stack_fixed_distance
from repro.three_d.designer import ThreeDDesignStudy, ThreeDDesignPoint

__all__ = [
    "StackingStrategy",
    "StackedPod",
    "stack_fixed_pod",
    "stack_fixed_distance",
    "ThreeDDesignStudy",
    "ThreeDDesignPoint",
]
