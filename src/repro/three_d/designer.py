"""3D design-space exploration (Figures 6.4-6.7 and Table 6.2).

The study sweeps pod configurations and stacked-die counts under the Chapter 6
budgets (250-280 mm^2 per logic die, 250 W, up to six DDR4 channels), evaluates
3D performance density for both stacking strategies, and composes chip-level
3D Scale-Out Processors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.chip import ScaleOutChip
from repro.core.pod import Pod
from repro.memory.dram import DDR4_2133
from repro.memory.provisioning import channels_required
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import NODE_40NM, ChipConstraints, TechnologyNode
from repro.three_d.stacking import StackedPod, StackingStrategy, stack_fixed_distance, stack_fixed_pod
from repro.workloads.suite import WorkloadSuite, default_suite

#: Chapter 6 chip budgets: liquid-cooled 3D stacks allow 250 W; DDR4 interfaces.
CONSTRAINTS_3D = ChipConstraints(max_area_mm2=280.0, max_power_w=250.0, max_memory_channels=6)


@dataclass(frozen=True)
class ThreeDDesignPoint:
    """One evaluated 3D configuration."""

    stacked_pod: StackedPod
    performance: float
    performance_density: float
    footprint_mm2: float

    @property
    def label(self) -> str:
        """Figure 6.5 / 6.7 style label."""
        return self.stacked_pod.describe()


class ThreeDDesignStudy:
    """Sweeps and composes 3D Scale-Out Processors."""

    def __init__(
        self,
        node: TechnologyNode = NODE_40NM,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
        constraints: ChipConstraints = CONSTRAINTS_3D,
    ):
        self.node = node
        self.model = model or AnalyticPerformanceModel()
        self.suite = suite or default_suite()
        self.constraints = constraints

    # ------------------------------------------------------------------ sweep
    def evaluate(self, stacked_pod: StackedPod) -> ThreeDDesignPoint:
        """Evaluate one stacked-pod configuration."""
        performance = stacked_pod.performance(self.model, self.suite)
        return ThreeDDesignPoint(
            stacked_pod=stacked_pod,
            performance=performance,
            performance_density=performance
            / (stacked_pod.footprint_mm2 * stacked_pod.num_dies),
            footprint_mm2=stacked_pod.footprint_mm2,
        )

    def sweep(
        self,
        core_type: str = "ooo",
        core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
        llc_sizes_mb: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0),
        num_dies: int = 1,
        interconnect: str = "crossbar",
    ) -> "list[ThreeDDesignPoint]":
        """PD sweep for Figures 6.4 / 6.6: fixed-pod stacks of every configuration."""
        points: "list[ThreeDDesignPoint]" = []
        for llc_mb in llc_sizes_mb:
            for cores in core_counts:
                pod = Pod(
                    cores=cores,
                    core_type=core_type,
                    llc_capacity_mb=llc_mb,
                    interconnect=interconnect,
                    node=self.node,
                )
                points.append(self.evaluate(stack_fixed_pod(pod, num_dies)))
        return points

    def compare_strategies(
        self,
        base_pod: Pod,
        die_counts: Sequence[int] = (1, 2, 4),
    ) -> "list[ThreeDDesignPoint]":
        """Fixed-pod versus fixed-distance comparison (Figures 6.5 / 6.7)."""
        points: "list[ThreeDDesignPoint]" = []
        for dies in die_counts:
            points.append(self.evaluate(stack_fixed_pod(base_pod, dies)))
            if dies > 1:
                points.append(self.evaluate(stack_fixed_distance(base_pod, dies)))
        return points

    def best_strategy(self, base_pod: Pod, num_dies: int) -> ThreeDDesignPoint:
        """The better of the two strategies for ``num_dies`` stacked dies.

        Bandwidth-infeasible configurations (worst-case demand beyond six DDR4
        channels per chip even for a single pod) are discarded first, which is
        what pushes in-order designs toward the fixed-distance strategy at three
        or more dies (Section 6.6.2).
        """
        candidates = []
        for strategy_builder in (stack_fixed_pod, stack_fixed_distance):
            stacked = strategy_builder(base_pod, num_dies)
            demand = stacked.bandwidth_demand_gbps(self.model, self.suite)
            channels = channels_required(demand, DDR4_2133)
            if channels > self.constraints.max_memory_channels:
                continue
            candidates.append(self.evaluate(stacked))
        if not candidates:
            # Every option is bandwidth-bound; return the fixed-pod stack anyway.
            return self.evaluate(stack_fixed_pod(base_pod, num_dies))
        return max(candidates, key=lambda p: p.performance_density)

    # ----------------------------------------------------------- chip assembly
    def compose_chip(self, stacked_pod: StackedPod, name: "str | None" = None) -> ScaleOutChip:
        """Fill one logic-die footprint with as many stacked pods as the budgets allow."""
        from repro.technology.components import ComponentCatalog

        catalog = ComponentCatalog(self.node)
        label = name or f"3D Scale-Out ({stacked_pod.base_pod.core_type}, L={stacked_pod.num_dies})"
        pod_performance = stacked_pod.performance(self.model, self.suite) / max(
            1, stacked_pod.num_dies
        )
        best: "ScaleOutChip | None" = None
        demand_per_pod = stacked_pod.bandwidth_demand_gbps(self.model, self.suite)
        for num_pods in range(1, 33):
            channels = channels_required(demand_per_pod * num_pods, DDR4_2133)
            if channels > self.constraints.max_memory_channels:
                break
            footprint = (
                stacked_pod.footprint_mm2 * num_pods
                + catalog.memory_interface_area_mm2(channels)
                + catalog.soc_misc.area_mm2
            )
            power = (
                stacked_pod.pod.power_w * num_pods
                + catalog.memory_interface_power_w(channels)
                + catalog.soc_misc.power_w
            )
            if footprint > self.constraints.max_area_mm2 or power > self.constraints.max_power_w:
                break
            best = ScaleOutChip(
                name=label,
                pod=stacked_pod.pod,
                num_pods=num_pods,
                memory_channels=channels,
                num_dies=stacked_pod.num_dies,
                pod_performance=stacked_pod.performance(self.model, self.suite),
            )
        if best is None:
            best = ScaleOutChip(
                name=label,
                pod=stacked_pod.pod,
                num_pods=1,
                memory_channels=min(
                    self.constraints.max_memory_channels,
                    channels_required(demand_per_pod, DDR4_2133),
                ),
                num_dies=stacked_pod.num_dies,
                pod_performance=stacked_pod.performance(self.model, self.suite),
            )
        return best

    def specification_table(
        self,
        core_type: str = "ooo",
        base_pod: "Pod | None" = None,
        die_counts: Sequence[int] = (1, 2, 4),
    ) -> "list[dict[str, float | int | str]]":
        """Table 6.2 style rows: 2D pod plus fixed-pod / fixed-distance stacks."""
        if base_pod is None:
            from repro.core.methodology import ScaleOutDesignMethodology

            methodology = ScaleOutDesignMethodology(
                node=self.node, model=self.model, suite=self.suite
            )
            base_pod = methodology.pd_optimal_pod(core_type=core_type).pod
        rows: "list[dict[str, float | int | str]]" = []
        for dies in die_counts:
            configs = [("2D Pod" if dies == 1 else "Fixed-Pod", stack_fixed_pod(base_pod, dies))]
            if dies > 1:
                configs.append(("Fixed-Distance", stack_fixed_distance(base_pod, dies)))
            for label, stacked in configs:
                point = self.evaluate(stacked)
                chip = self.compose_chip(stacked)
                rows.append(
                    {
                        "core_type": core_type,
                        "dies": dies,
                        "configuration": label,
                        "pods": chip.num_pods,
                        "pod_cores": stacked.cores,
                        "pod_llc_mb": stacked.llc_capacity_mb,
                        "memory_channels": chip.memory_channels,
                        "performance_density": round(point.performance_density, 4),
                    }
                )
        return rows
