"""3D pod stacking strategies (fixed-pod and fixed-distance)."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.pod import Pod
from repro.perfmodel.amat import LlcAccessLatency
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.workloads.suite import WorkloadSuite, default_suite


class StackingStrategy(enum.Enum):
    """How a pod exploits additional stacked logic dies (Section 6.2)."""

    FIXED_POD = "fixed-pod"
    FIXED_DISTANCE = "fixed-distance"


@dataclass(frozen=True)
class StackedPod:
    """A pod implemented across ``num_dies`` stacked logic dies.

    Attributes:
        base_pod: the per-die (2D) pod organization the stack is built from.
        num_dies: number of stacked logic dies (1 = planar).
        strategy: fixed-pod (same pod, smaller footprint / shorter distance) or
            fixed-distance (pod grows with the dies at constant footprint).
    """

    base_pod: Pod
    num_dies: int = 1
    strategy: StackingStrategy = StackingStrategy.FIXED_POD

    def __post_init__(self) -> None:
        if self.num_dies < 1:
            raise ValueError("num_dies must be >= 1")

    # ------------------------------------------------------------ organization
    @property
    def pod(self) -> Pod:
        """The logical pod of the stack (scaled up under fixed-distance)."""
        if self.strategy is StackingStrategy.FIXED_DISTANCE and self.num_dies > 1:
            return self.base_pod.scaled(self.num_dies, float(self.num_dies))
        return self.base_pod

    @property
    def cores(self) -> int:
        """Total cores in the stacked pod."""
        return self.pod.cores

    @property
    def llc_capacity_mb(self) -> float:
        """Total LLC capacity in the stacked pod."""
        return self.pod.llc_capacity_mb

    @property
    def footprint_mm2(self) -> float:
        """Per-die footprint of the stacked pod.

        Under fixed-pod the 2D pod is spread across the dies; under fixed-distance
        every die carries one copy of the base pod's resources.
        """
        if self.strategy is StackingStrategy.FIXED_POD:
            return self.base_pod.area_mm2 / self.num_dies
        return self.base_pod.area_mm2

    @property
    def total_silicon_mm2(self) -> float:
        """Total silicon across all dies (footprint times dies)."""
        return self.footprint_mm2 * self.num_dies

    # ----------------------------------------------------------------- timing
    def network_latency_cycles(self, model: "AnalyticPerformanceModel | None" = None) -> float:
        """Average core-to-LLC network latency of the stacked pod.

        Vertical (TSV) hops are free; the horizontal wire-distance component of
        the 2D latency shrinks with the per-die footprint, so the excess over the
        4-cycle arbitration floor scales with ``sqrt(footprint ratio)``.  Under
        fixed-distance the latency equals the base (single-die) pod's latency by
        construction.
        """
        model = model or AnalyticPerformanceModel()
        base_latency = model.llc_access_latency(self.base_pod.config()).network_cycles
        if self.strategy is StackingStrategy.FIXED_DISTANCE or self.num_dies == 1:
            return base_latency
        floor = 4.0
        excess = max(0.0, base_latency - floor)
        return floor + excess / math.sqrt(self.num_dies)

    # ------------------------------------------------------------ performance
    def performance(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Average aggregate IPC of the stacked pod across the workload suite."""
        model = model or AnalyticPerformanceModel()
        suite = suite or default_suite()
        config = self.pod.config()
        network = self.network_latency_cycles(model)
        total = 0.0
        for workload in suite:
            base = model.llc_access_latency(config)
            latency = LlcAccessLatency(
                bank_cycles=base.bank_cycles,
                network_cycles=network,
                contention_cycles=base.contention_cycles,
            )
            cpi = model.cpi_breakdown(workload, config, latency)
            total += cpi.ipc * config.cores
        return total / len(suite)

    def performance_density(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """3D performance density: throughput per footprint area per stacked die."""
        return self.performance(model, suite) / (self.footprint_mm2 * self.num_dies)

    def bandwidth_demand_gbps(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Worst-case off-chip demand of the stacked pod."""
        return self.pod.bandwidth_demand_gbps(model, suite)

    def describe(self) -> str:
        """Short label used in Figure 6.5 / 6.7 style outputs."""
        return f"{self.cores}c-{self.llc_capacity_mb:g}MB (L={self.num_dies}, {self.strategy.value})"


def stack_fixed_pod(base_pod: Pod, num_dies: int) -> StackedPod:
    """Stack ``base_pod`` across ``num_dies`` dies keeping its resources constant."""
    return StackedPod(base_pod=base_pod, num_dies=num_dies, strategy=StackingStrategy.FIXED_POD)


def stack_fixed_distance(base_pod: Pod, num_dies: int) -> StackedPod:
    """Grow ``base_pod`` with the die count at a constant per-die footprint."""
    return StackedPod(
        base_pod=base_pod, num_dies=num_dies, strategy=StackingStrategy.FIXED_DISTANCE
    )
