"""Analytic on-chip interconnect models.

These models supply the *average* core-to-LLC latency, area, and power figures the
design-space studies (Chapters 2 and 3) need.  The cycle-level packet simulator in
:mod:`repro.noc` provides the detailed NOC-Out evaluation of Chapter 4; the
analytic models here are calibrated to the same per-hop/per-traversal latencies
(Table 2.2 / Table 3.1).
"""

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.interconnect.ideal import IdealInterconnect
from repro.interconnect.crossbar import CrossbarInterconnect
from repro.interconnect.mesh import MeshInterconnect
from repro.interconnect.flattened_butterfly import FlattenedButterflyInterconnect
from repro.interconnect.nocout import NocOutInterconnect

INTERCONNECTS = {
    "ideal": IdealInterconnect,
    "crossbar": CrossbarInterconnect,
    "mesh": MeshInterconnect,
    "fbfly": FlattenedButterflyInterconnect,
    "flattened_butterfly": FlattenedButterflyInterconnect,
    "nocout": NocOutInterconnect,
    "noc-out": NocOutInterconnect,
}


def interconnect_model(name: "str | InterconnectModel") -> InterconnectModel:
    """Instantiate an interconnect model from its name (or pass one through)."""
    if isinstance(name, InterconnectModel):
        return name
    try:
        return INTERCONNECTS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown interconnect {name!r}; known: {sorted(set(INTERCONNECTS))}"
        ) from None


__all__ = [
    "InterconnectModel",
    "Floorplan",
    "IdealInterconnect",
    "CrossbarInterconnect",
    "MeshInterconnect",
    "FlattenedButterflyInterconnect",
    "NocOutInterconnect",
    "INTERCONNECTS",
    "interconnect_model",
]
