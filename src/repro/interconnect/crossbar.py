"""Crossbar (dancehall) interconnect model.

Table 3.1 gives the crossbar latencies the paper simulates: 4 cycles up to 8
cores, then 5, 7, and 11 cycles at 16, 32, and 64 cores respectively -- roughly
two additional cycles per doubling beyond 8 ports as the arbitration and wiring
grow.  Crossbar area grows quadratically with port count, which is what makes
dancehall organizations unattractive beyond pod-sized systems (Section 4.1).
"""

from __future__ import annotations

import math

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode


class CrossbarInterconnect(InterconnectModel):
    """Dancehall crossbar connecting cores to LLC banks."""

    name = "crossbar"
    display_name = "Crossbar"

    #: Latency table from the paper (cores -> cycles); interpolated beyond 64.
    _LATENCY_TABLE = {1: 4, 2: 4, 4: 4, 8: 4, 16: 5, 32: 7, 64: 11}

    def __init__(self, ports_per_switch_interface: int = 1):
        if ports_per_switch_interface < 1:
            raise ValueError("ports_per_switch_interface must be >= 1")
        #: Cores can share a switch interface (Section 3.4.3 pairs in-order cores)
        #: to reduce effective port count at negligible performance cost.
        self.ports_per_switch_interface = ports_per_switch_interface

    # --------------------------------------------------------------- latency
    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Crossbar traversal latency as a function of the number of ports."""
        ports = max(1, math.ceil(floorplan.cores / self.ports_per_switch_interface))
        if ports <= 8:
            return 4.0
        # Two extra cycles per doubling beyond 8 ports, matching 16 -> 5 is a
        # special case of the paper's table; use the table where it applies.
        key = 1 << math.ceil(math.log2(ports))
        if key in self._LATENCY_TABLE:
            return float(self._LATENCY_TABLE[key])
        doublings = math.log2(key / 64)
        return 11.0 + 4.0 * doublings

    # ------------------------------------------------------------------ area
    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Crossbar switch area: quadratic in port count, linear in link width."""
        ports = max(1, math.ceil(floorplan.cores / self.ports_per_switch_interface))
        banks = max(1, floorplan.cores // 4)
        total_ports = ports + banks
        area_40nm = 0.0009 * total_ports**2 * (link_width_bits / 128.0)
        return max(0.2, area_40nm * node.logic_area_scale)
