"""Simple floorplan geometry used by the interconnect latency models.

The interconnect latency of a design depends on the physical distance between
cores and LLC banks, which in turn depends on how much silicon the cores and the
cache occupy.  :class:`Floorplan` captures just enough geometry (tile grid
dimensions, tile pitch, chip extent) to turn component areas into hop counts and
wire lengths, mirroring how the paper derives distance-dependent delays from die
area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Floorplan:
    """Geometry of the core/LLC region of a chip or pod.

    Attributes:
        cores: number of core tiles.
        core_area_mm2: area of one core (including its L1 caches).
        llc_area_mm2: total LLC area.
        other_area_mm2: any additional area inside the region (directories, glue).
    """

    cores: int
    core_area_mm2: float
    llc_area_mm2: float
    other_area_mm2: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.core_area_mm2 <= 0:
            raise ValueError("core_area_mm2 must be positive")
        if self.llc_area_mm2 < 0 or self.other_area_mm2 < 0:
            raise ValueError("areas must be non-negative")

    # ------------------------------------------------------------------ area
    @property
    def region_area_mm2(self) -> float:
        """Total area of the cores + LLC region."""
        return self.cores * self.core_area_mm2 + self.llc_area_mm2 + self.other_area_mm2

    @property
    def extent_mm(self) -> float:
        """Linear extent of the (assumed square) region."""
        return math.sqrt(self.region_area_mm2)

    # ------------------------------------------------------------------ grid
    @property
    def grid_dims(self) -> "tuple[int, int]":
        """(rows, cols) of a near-square tile grid holding all core tiles."""
        cols = int(math.ceil(math.sqrt(self.cores)))
        rows = int(math.ceil(self.cores / cols))
        return rows, cols

    @property
    def tile_area_mm2(self) -> float:
        """Area of one tile in a tiled layout (core + its LLC slice share)."""
        return self.region_area_mm2 / self.cores

    @property
    def tile_pitch_mm(self) -> float:
        """Edge length of one (square) tile."""
        return math.sqrt(self.tile_area_mm2)

    # ------------------------------------------------------------- distances
    def average_mesh_hops(self) -> float:
        """Average Manhattan hop count between a random source and destination tile.

        For an ``R x C`` grid with uniformly random endpoints, the expected
        Manhattan distance is approximately ``(R + C) / 3``.
        """
        rows, cols = self.grid_dims
        return (rows + cols) / 3.0

    def average_distance_to_center_mm(self) -> float:
        """Average wire distance from a tile to the centre of the region."""
        rows, cols = self.grid_dims
        pitch = self.tile_pitch_mm
        avg_tiles = (rows + cols) / 4.0
        return avg_tiles * pitch

    def average_tile_distance_mm(self) -> float:
        """Average point-to-point wire distance between two tiles."""
        return self.average_mesh_hops() * self.tile_pitch_mm
