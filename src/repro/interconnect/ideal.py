"""Ideal fixed-latency interconnect (the paper's upper-bound design point)."""

from __future__ import annotations

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode


class IdealInterconnect(InterconnectModel):
    """A 4-cycle interconnect whose latency is independent of core count.

    The "ideal" processor of Chapter 2 pairs a modestly sized LLC with this
    interconnect to establish the performance-density upper bound that Scale-Out
    Processors approach.
    """

    name = "ideal"
    display_name = "Ideal interconnect"

    def __init__(self, latency: float = 4.0):
        if latency <= 0:
            raise ValueError("latency must be positive")
        self._latency = latency

    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Fixed latency regardless of the number of connected components."""
        return self._latency

    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Idealized wiring is charged a nominal area floor (Table 2.1 lower bound)."""
        return 0.2
