"""Abstract interface for analytic interconnect models."""

from __future__ import annotations

import abc

from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode


class InterconnectModel(abc.ABC):
    """Average-latency/area/power model of a core-to-LLC interconnect.

    The latency returned by :meth:`latency_cycles` is the average one-way
    zero-load latency from a core to an LLC bank.  The analytic performance model
    adds it to the bank access latency to form the LLC portion of the average
    memory access time, consistent with how the paper parametrizes its model (the
    response traversal overlaps with downstream processing and the per-hop figures
    already include both router and channel delay).
    """

    #: Short name used in tables and factory lookups.
    name: str = "abstract"
    #: Display name used in figures.
    display_name: str = "Abstract interconnect"

    # --------------------------------------------------------------- latency
    @abc.abstractmethod
    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Average one-way core-to-LLC-bank network latency in cycles."""

    # ------------------------------------------------------------------ area
    @abc.abstractmethod
    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Silicon area of routers, buffers, and link repeaters."""

    # ----------------------------------------------------------------- power
    def power_w(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Interconnect power; the paper bounds it below 5 W for all organizations.

        The default implementation scales a 2 W nominal figure by relative area,
        capped at the paper's 5 W budget (Table 2.1, Section 4.4.4).
        """
        area = self.area_mm2(floorplan, node, link_width_bits)
        return min(5.0, 0.4 + 0.35 * area)

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
