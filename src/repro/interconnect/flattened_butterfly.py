"""Flattened-butterfly interconnect model.

The flattened butterfly (Section 4.2) fully connects each node to every other
node in its row and column, so any packet needs at most two network hops.  It
approaches crossbar latency but pays a large area cost in many-ported routers,
deep packet buffers, and long-range links (about 23 mm^2 for a 64-tile network at
32nm with 128-bit links, Figure 4.7).
"""

from __future__ import annotations

import math

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode
from repro.technology.wires import WireModel


class FlattenedButterflyInterconnect(InterconnectModel):
    """Richly connected low-diameter topology for tiled organizations."""

    name = "fbfly"
    display_name = "Flattened butterfly"

    #: Router pipeline depth: no speculation due to high arbitration complexity.
    ROUTER_PIPELINE_CYCLES = 3.0

    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Average latency: up to two hops, each a 3-stage router plus a long link.

        Link traversal covers up to two tiles per cycle (Table 4.1), so the link
        delay grows with the average span of a row/column traversal.
        """
        rows, cols = floorplan.grid_dims
        wire = WireModel(node)
        tiles_per_cycle = max(1.0, wire.reach_per_cycle_mm() / max(1e-9, floorplan.tile_pitch_mm))
        avg_span_tiles = (rows + cols) / 2.0 / 3.0  # average one-dimension span
        link_cycles = max(1.0, avg_span_tiles / tiles_per_cycle)
        average_hops = 1.6  # some traffic needs one hop, most needs two
        return average_hops * (self.ROUTER_PIPELINE_CYCLES + link_cycles)

    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Area of many-ported routers plus the quadratic link budget.

        Calibrated to ~23 mm^2 for an 8x8 tiled network with 128-bit links at
        32nm (Figure 4.7); area grows slightly super-linearly with tile count
        because router radix grows with the grid dimensions.
        """
        rows, cols = floorplan.grid_dims
        tiles = floorplan.cores
        radix = (rows - 1) + (cols - 1) + 1
        # Reference: 64 tiles, radix 15 -> 23 mm^2 at 32nm.
        reference = 23.0
        scale = (tiles / 64.0) * (radix / 15.0) * (link_width_bits / 128.0)
        area_32nm = reference * scale
        area_40nm = area_32nm / 0.64
        return max(0.2, area_40nm * node.logic_area_scale)
