"""Analytic model of the NOC-Out pod organization (Chapter 4).

NOC-Out segregates LLC tiles into a central row and connects the cores to it with
routing-free reduction (core-to-cache) and dispersion (cache-to-core) trees; the
LLC tiles themselves are linked by a small one-dimensional flattened butterfly.
The organization exploits the bilateral core-to-cache traffic of scale-out
workloads to deliver flattened-butterfly latency at roughly a tenth of the area.
"""

from __future__ import annotations

import math

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode


class NocOutInterconnect(InterconnectModel):
    """Reduction/dispersion trees plus a flattened-butterfly LLC network."""

    name = "nocout"
    display_name = "NOC-Out"

    #: Per-node delay in the reduction/dispersion trees (link + arbitrated mux).
    TREE_HOP_CYCLES = 1.0
    #: LLC-network router pipeline (3-stage, non-speculative).
    LLC_ROUTER_CYCLES = 3.0
    #: Cores aggregated under one LLC tile (empirically 4 cores per LLC bank,
    #: Section 4.2.2, with 8 LLC tiles for a 64-core pod).
    CORES_PER_LLC_TILE = 8

    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Average core-to-LLC latency through a reduction tree plus the LLC network.

        Cores sit in columns on either side of the central LLC row, so the average
        tree depth is half the column height; most requests then take roughly one
        hop in the small LLC flattened butterfly to reach the target bank.
        """
        rows, cols = floorplan.grid_dims
        # Cores are split across both sides of the LLC row; a column on one side
        # holds rows/2 cores, and the average request traverses half of them.
        tree_depth = max(1.0, rows / 2.0 / 2.0)
        llc_hops = 1.0
        return tree_depth * self.TREE_HOP_CYCLES + llc_hops * self.LLC_ROUTER_CYCLES

    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """NOC-Out area: trivially simple tree nodes plus a small LLC network.

        Calibrated to the 2.5 mm^2 reported for the 64-core pod with 128-bit links
        at 32nm (Figure 4.7): 18 % reduction tree, 18 % dispersion tree, 64 % LLC
        flattened butterfly.
        """
        llc_tiles = max(1, int(math.ceil(floorplan.cores / self.CORES_PER_LLC_TILE)))
        tree_area_32nm = 2.5 * 0.36 * (floorplan.cores / 64.0)
        llc_net_area_32nm = 2.5 * 0.64 * (llc_tiles / 8.0) ** 2
        area_32nm = (tree_area_32nm + llc_net_area_32nm) * (link_width_bits / 128.0)
        area_40nm = area_32nm / 0.64
        return max(0.2, area_40nm * node.logic_area_scale)
