"""Mesh (tiled) interconnect model.

Tiled processors link tiles with a 2D mesh; each hop costs 3 cycles (router plus
channel, Table 2.2).  Average latency therefore grows with the network diameter,
which is the fundamental scaling problem the paper identifies for tiled
organizations (Section 2.2.2).
"""

from __future__ import annotations

from repro.interconnect.base import InterconnectModel
from repro.interconnect.floorplan import Floorplan
from repro.technology.node import NODE_40NM, TechnologyNode


class MeshInterconnect(InterconnectModel):
    """Packet-switched 2D mesh connecting core+LLC tiles."""

    name = "mesh"
    display_name = "Mesh"

    def __init__(self, cycles_per_hop: float = 3.0):
        if cycles_per_hop <= 0:
            raise ValueError("cycles_per_hop must be positive")
        self.cycles_per_hop = cycles_per_hop

    def latency_cycles(self, floorplan: Floorplan, node: TechnologyNode = NODE_40NM) -> float:
        """Average zero-load latency: cycles/hop times the average hop count."""
        return self.cycles_per_hop * max(1.0, floorplan.average_mesh_hops())

    def area_mm2(
        self,
        floorplan: Floorplan,
        node: TechnologyNode = NODE_40NM,
        link_width_bits: int = 128,
    ) -> float:
        """Mesh area: one 5-port router plus four short links per tile.

        Calibrated to the Chapter 4 measurement of ~3.5 mm^2 for a 64-tile mesh
        with 128-bit links at 32nm (Figure 4.7).
        """
        per_tile_area_32nm = 3.5 / 64.0 * (link_width_bits / 128.0)
        per_tile_area_40nm = per_tile_area_32nm / 0.64
        return max(0.2, per_tile_area_40nm * floorplan.cores * node.logic_area_scale)
