"""Miss-ratio curves for scale-out workloads.

Scale-out workloads have a characteristic two-part LLC behaviour (Section 2.1.3):

* a *capturable* component -- the instruction footprint, OS data, and a modest
  secondary data working set -- that fits within a few megabytes and is captured
  quickly as LLC capacity grows;
* a *dataset* component -- accesses to the vast, memory-resident shard of data --
  that exhibits essentially no reuse at practical LLC sizes and therefore always
  misses.

We model the capturable component with a Hill (saturating) curve in capacity,
``capture(C) = C^k / (C^k + C_half^k)``, which rises steeply around ``C_half`` and
saturates for large caches.  This reproduces the paper's Figure 2.2: performance
improves until the 2--8 MB range and shows little or negative benefit beyond
16 MB (the residual dataset misses do not shrink, while access latency grows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CaptureCurve:
    """Fraction of the capturable working set held by an LLC of a given capacity.

    Attributes:
        half_capture_mb: capacity at which half of the capturable component hits.
        exponent: steepness of the capture curve (Hill coefficient).
    """

    half_capture_mb: float
    exponent: float = 1.4

    def __post_init__(self) -> None:
        if self.half_capture_mb <= 0:
            raise ValueError("half_capture_mb must be positive")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def capture_fraction(self, capacity_mb: float) -> float:
        """Fraction (0..1) of the capturable working set that hits in ``capacity_mb``."""
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        if capacity_mb == 0:
            return 0.0
        c_k = capacity_mb ** self.exponent
        h_k = self.half_capture_mb ** self.exponent
        return c_k / (c_k + h_k)


@dataclass(frozen=True)
class MissRatioCurve:
    """LLC misses-per-kilo-instruction (MPKI) as a function of capacity.

    The curve has three components:

    * ``floor_mpki`` -- the dataset component that misses regardless of LLC size;
    * ``capturable_mpki`` -- the secondary *data* working set, captured per
      ``capture``; misses here overlap with other misses (memory-level
      parallelism applies);
    * ``instruction_mpki`` -- the portion of the instruction footprint that spills
      out of small LLCs, captured per ``instruction_capture``; misses here stall
      the front end and overlap with nothing, which is why undersized LLCs are so
      costly for scale-out workloads (Section 2.1.3 / 2.1.4).

    Attributes:
        floor_mpki: dataset component that misses regardless of LLC size.
        capturable_mpki: data component that is progressively captured.
        capture: capture curve for the data component.
        instruction_mpki: instruction-footprint component.
        instruction_capture: capture curve for the instruction footprint (steep,
            centred well below the data component).
        sharing_dilution: how strongly per-core private footprints dilute the
            effective capacity when many cores share the LLC.  The paper's
            Figure 2.3 shows a ~16 % per-core performance loss from 2 to 256
            sharers under an *ideal* interconnect; a small dilution factor
            reproduces that mild degradation.
    """

    floor_mpki: float
    capturable_mpki: float
    capture: CaptureCurve
    instruction_mpki: float = 0.0
    instruction_capture: "CaptureCurve | None" = None
    sharing_dilution: float = 0.012

    def __post_init__(self) -> None:
        if self.floor_mpki < 0 or self.capturable_mpki < 0 or self.instruction_mpki < 0:
            raise ValueError("MPKI components must be non-negative")
        if self.sharing_dilution < 0:
            raise ValueError("sharing_dilution must be non-negative")
        if self.instruction_mpki > 0 and self.instruction_capture is None:
            raise ValueError("instruction_capture is required when instruction_mpki > 0")

    # ------------------------------------------------------------------ MPKI
    def effective_capacity_mb(self, capacity_mb: float, cores: int = 1) -> float:
        """Capacity seen by each core's capturable working set.

        Instructions and OS data are shared by all cores, but each core adds a
        small amount of private/thread data; the effective capacity therefore
        shrinks slowly with the number of sharers.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return capacity_mb / (1.0 + self.sharing_dilution * (cores - 1))

    def data_mpki(self, capacity_mb: float, cores: int = 1) -> float:
        """Data-side LLC misses per kilo-instruction (dataset + uncaptured data WS)."""
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        effective = self.effective_capacity_mb(capacity_mb, cores)
        captured = self.capture.capture_fraction(effective)
        return self.floor_mpki + self.capturable_mpki * (1.0 - captured)

    def instruction_llc_mpki(self, capacity_mb: float, cores: int = 1) -> float:
        """Instruction-footprint LLC misses per kilo-instruction."""
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        if self.instruction_mpki == 0 or self.instruction_capture is None:
            return 0.0
        effective = self.effective_capacity_mb(capacity_mb, cores)
        captured = self.instruction_capture.capture_fraction(effective)
        return self.instruction_mpki * (1.0 - captured)

    def mpki(self, capacity_mb: float, cores: int = 1) -> float:
        """Total LLC misses per kilo-instruction with ``capacity_mb`` MB shared by ``cores``."""
        return self.data_mpki(capacity_mb, cores) + self.instruction_llc_mpki(capacity_mb, cores)

    def miss_ratio(self, capacity_mb: float, llc_apki: float, cores: int = 1) -> float:
        """LLC miss *ratio* given accesses-per-kilo-instruction ``llc_apki``."""
        if llc_apki <= 0:
            raise ValueError("llc_apki must be positive")
        return min(1.0, self.mpki(capacity_mb, cores) / llc_apki)

    # ------------------------------------------------------------- utilities
    def capacity_for_mpki(self, target_mpki: float, cores: int = 1) -> float:
        """Smallest capacity (MB) achieving a *data-side* MPKI of ``target_mpki`` or less."""
        if target_mpki < self.floor_mpki:
            return math.inf
        if target_mpki >= self.floor_mpki + self.capturable_mpki:
            return 0.0
        # Invert the Hill curve analytically on the effective capacity, then undo
        # the sharing dilution.
        needed_capture = 1.0 - (target_mpki - self.floor_mpki) / self.capturable_mpki
        k = self.capture.exponent
        effective = self.capture.half_capture_mb * (needed_capture / (1.0 - needed_capture)) ** (1.0 / k)
        return effective * (1.0 + self.sharing_dilution * (cores - 1))
