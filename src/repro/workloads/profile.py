"""Statistical workload profiles.

A :class:`WorkloadProfile` captures everything the analytic performance model and
the synthetic trace generator need to know about one scale-out workload:

* L1 instruction and data miss rates (per kilo-instruction) for the 32 KB L1s used
  by the simple cores, and a scale factor for the larger 64 KB L1s of the
  conventional core;
* the LLC miss-ratio curve (:class:`~repro.workloads.missrate.MissRatioCurve`);
* memory-level parallelism for LLC-hit data accesses and off-chip misses;
* the fraction of LLC accesses that trigger a coherence snoop (Figure 4.3);
* software scalability limits observed in the paper (Table 3.1);
* off-chip traffic characteristics used to provision memory channels.

The numbers themselves live in :mod:`repro.workloads.cloudsuite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.workloads.missrate import MissRatioCurve


@dataclass(frozen=True)
class CoreBehavior:
    """Core-type-specific execution parameters for one workload.

    Attributes:
        base_cpi: cycles per instruction when all memory accesses hit in the L1s
            (captures issue width, branch behaviour, and core-internal stalls).
        l1_miss_scale: multiplier on the workload's L1 MPKI for this core's L1
            configuration (the conventional core's 64 KB L1s capture more of the
            footprint than the 32 KB L1s of the simple cores).
        data_mlp: average number of overlapping outstanding L1-D misses serviced by
            the LLC (out-of-order cores overlap more).
        memory_mlp: average number of overlapping off-chip misses.
    """

    base_cpi: float
    l1_miss_scale: float
    data_mlp: float
    memory_mlp: float

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.l1_miss_scale <= 0:
            raise ValueError("l1_miss_scale must be positive")
        if self.data_mlp < 1.0 or self.memory_mlp < 1.0:
            raise ValueError("MLP factors must be >= 1")


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical characterization of one scale-out workload.

    Attributes:
        name: workload name as used in the paper's figures.
        l1i_mpki: L1-I misses per kilo-instruction with 32 KB, 2-way L1-I.
        l1d_mpki: L1-D misses per kilo-instruction with 32 KB, 2-way L1-D.
        llc_curve: the LLC miss-ratio curve.
        core_behavior: per-core-type execution parameters keyed by core type name
            (``"conventional"``, ``"ooo"``, ``"inorder"``).
        snoop_fraction: fraction of LLC accesses that trigger a snoop message to a
            core (Figure 4.3; averages 2.7 % across the suite).
        dirty_writeback_fraction: fraction of LLC misses that also cause a
            writeback to memory, inflating off-chip traffic.
        max_cores: largest core count at which the software stack scales
            (Table 3.1: 16 for Media Streaming, 32 for Web Frontend / Web Search,
            64 for the rest).
        scalability_rolloff: per-doubling throughput retention beyond
            ``software_knee_cores`` (1.0 = perfect scaling), used only by
            simulation-flavoured studies; the analytic design-space model follows
            the paper in assuming hardware-limited scaling.
        software_knee_cores: core count beyond which software scalability starts
            to erode throughput.
        instruction_footprint_kb: approximate dynamic instruction footprint, used
            by the synthetic trace generator.
        dataset_footprint_mb: per-core dataset shard touched by the trace
            generator (far larger than any LLC).
        latency_sensitive: True for workloads with tight response-time targets.
        instructions_per_request: dynamic instructions one user request costs on
            a single core, used by the service-level queueing model to convert
            per-core IPC into requests per second.
    """

    name: str
    l1i_mpki: float
    l1d_mpki: float
    llc_curve: MissRatioCurve
    core_behavior: "dict[str, CoreBehavior]"
    snoop_fraction: float
    dirty_writeback_fraction: float = 0.05
    max_cores: int = 64
    scalability_rolloff: float = 1.0
    software_knee_cores: int = 64
    instruction_footprint_kb: int = 512
    dataset_footprint_mb: int = 512
    latency_sensitive: bool = True
    instructions_per_request: float = 2_000_000.0

    def __post_init__(self) -> None:
        if self.l1i_mpki < 0 or self.l1d_mpki < 0:
            raise ValueError("L1 MPKI values must be non-negative")
        if self.instructions_per_request <= 0:
            raise ValueError("instructions_per_request must be positive")
        if not 0.0 <= self.snoop_fraction <= 1.0:
            raise ValueError("snoop_fraction must be within [0, 1]")
        if not 0.0 <= self.dirty_writeback_fraction <= 1.0:
            raise ValueError("dirty_writeback_fraction must be within [0, 1]")
        if self.max_cores < 1:
            raise ValueError("max_cores must be >= 1")
        if not 0.0 < self.scalability_rolloff <= 1.0:
            raise ValueError("scalability_rolloff must be in (0, 1]")
        required = {"conventional", "ooo", "inorder"}
        missing = required - set(self.core_behavior)
        if missing:
            raise ValueError(f"core_behavior missing entries for: {sorted(missing)}")

    # ----------------------------------------------------------------- access
    def behavior(self, core_type: str) -> CoreBehavior:
        """Execution parameters for ``core_type`` (conventional / ooo / inorder)."""
        key = core_type.lower()
        aliases = {
            "conv": "conventional",
            "out-of-order": "ooo",
            "out_of_order": "ooo",
            "io": "inorder",
            "in-order": "inorder",
            "in_order": "inorder",
        }
        key = aliases.get(key, key)
        try:
            return self.core_behavior[key]
        except KeyError:
            raise KeyError(f"no core behavior for {core_type!r} in workload {self.name}") from None

    # -------------------------------------------------------------- L1 misses
    def l1_mpki(self, core_type: str) -> "tuple[float, float]":
        """(instruction, data) L1 MPKI adjusted for the core type's L1 capacity."""
        beh = self.behavior(core_type)
        return self.l1i_mpki * beh.l1_miss_scale, self.l1d_mpki * beh.l1_miss_scale

    def llc_accesses_per_kilo_instruction(self, core_type: str) -> float:
        """Total LLC accesses per kilo-instruction (instruction plus data misses)."""
        i_mpki, d_mpki = self.l1_mpki(core_type)
        return i_mpki + d_mpki

    # ------------------------------------------------------------- LLC misses
    def llc_data_mpki(self, capacity_mb: float, cores: int = 1, core_type: str = "ooo") -> float:
        """Data-side off-chip misses per kilo-instruction (MLP applies to these).

        The miss curve is defined for the simple-core L1 configuration; the
        conventional core's bigger L1s filter proportionally more of the capturable
        traffic, so the capturable component is rescaled by ``l1_miss_scale``.
        """
        beh = self.behavior(core_type)
        curve = self.llc_curve
        raw = curve.data_mpki(capacity_mb, cores)
        floor = curve.floor_mpki
        capturable_part = raw - floor
        return floor + capturable_part * beh.l1_miss_scale

    def llc_instruction_mpki(
        self, capacity_mb: float, cores: int = 1, core_type: str = "ooo"
    ) -> float:
        """Instruction-footprint off-chip misses per kilo-instruction (no overlap)."""
        beh = self.behavior(core_type)
        return self.llc_curve.instruction_llc_mpki(capacity_mb, cores) * beh.l1_miss_scale

    def llc_mpki(self, capacity_mb: float, cores: int = 1, core_type: str = "ooo") -> float:
        """Total off-chip misses per kilo-instruction for a shared LLC of ``capacity_mb``."""
        return self.llc_data_mpki(capacity_mb, cores, core_type) + self.llc_instruction_mpki(
            capacity_mb, cores, core_type
        )

    # ----------------------------------------------------------- off-chip BW
    def offchip_bytes_per_instruction(
        self, capacity_mb: float, cores: int = 1, core_type: str = "ooo", line_bytes: int = 64
    ) -> float:
        """Average bytes of DRAM traffic per committed instruction."""
        mpki = self.llc_mpki(capacity_mb, cores, core_type)
        per_miss = line_bytes * (1.0 + self.dirty_writeback_fraction)
        return mpki / 1000.0 * per_miss

    # ------------------------------------------------------- software scaling
    def software_scaling_factor(self, cores: int) -> float:
        """Throughput retention factor (0..1] for running on ``cores`` cores.

        Perfect scaling up to ``software_knee_cores``; beyond the knee, each
        doubling retains ``scalability_rolloff`` of its ideal gain; beyond
        ``max_cores`` additional cores add nothing.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        effective = min(cores, self.max_cores)
        if effective <= self.software_knee_cores or self.scalability_rolloff >= 1.0:
            return effective / cores
        import math

        doublings = math.log2(effective / self.software_knee_cores)
        retained = self.software_knee_cores * (2.0 * self.scalability_rolloff) ** doublings
        return min(effective, retained) / cores

    # -------------------------------------------------------------- mutation
    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        """Return a copy of this profile with selected fields replaced."""
        return replace(self, **kwargs)
