"""Calibrated profiles for the seven CloudSuite-style scale-out workloads.

The paper (Sections 2.4.2 and 4.3.3) evaluates Data Serving, MapReduce-C (text
classification), MapReduce-W (word count), Media Streaming, SAT Solver, Web
Frontend (SPECweb2009 e-banking), and Web Search.  The profile parameters below
are calibrated so that the analytic model reproduces the paper's published
behaviour:

* Figure 2.1 -- application IPC on an aggressive OoO core: only Media Streaming
  falls below 1.0; Data Serving and MapReduce-C sit near 1.0; the remaining four
  land between 1 and 2.
* Figure 2.2 -- LLC capacities of 2--8 MB capture the instruction footprint and
  secondary working set for most workloads; MapReduce-C and SAT Solver keep
  improving up to 16 MB (by 12--24 % over 1 MB); capacity beyond 16 MB hurts.
* Figure 2.3 -- per-core performance degrades only ~16 % when a 4 MB LLC is shared
  by 256 cores over an ideal interconnect.
* Figure 4.3 -- on average 2.7 % of LLC accesses trigger a snoop; Web Search is
  lowest, Data Serving highest.
* Table 3.1 -- software scalability limits: Media Streaming scales to 16 cores,
  Web Frontend and Web Search to 32, the rest to 64.

Because the original workloads cannot be run here, the absolute MPKI values are
modelling choices; what the reproduction preserves is the relative behaviour that
drives every conclusion in the paper.
"""

from __future__ import annotations

from repro.workloads.missrate import CaptureCurve, MissRatioCurve
from repro.workloads.profile import CoreBehavior, WorkloadProfile

# ---------------------------------------------------------------------------
# Core-type execution constants.
#
# base CPI = _BASE_CPI[core] * workload compute factor.  The conventional core is
# 4-wide with 128-entry ROB and 64 KB L1s; the OoO core is a 3-wide Cortex-A15
# class design with 32 KB L1s; the in-order core is a 2-wide Cortex-A8 class
# design.  The paper observes that the aggressive core commits at most ~2 IPC on
# these workloads (Figure 2.1) and that simple OoO cores lose little performance.
# ---------------------------------------------------------------------------

_BASE_CPI = {"conventional": 0.55, "ooo": 0.70, "inorder": 1.30}
_L1_MISS_SCALE = {"conventional": 0.55, "ooo": 1.00, "inorder": 1.00}
_DATA_MLP = {"conventional": 2.2, "ooo": 1.7, "inorder": 1.10}
_MEMORY_MLP = {"conventional": 2.6, "ooo": 2.0, "inorder": 1.4}


def _behaviors(compute_factor: float, mlp_factor: float = 1.0) -> "dict[str, CoreBehavior]":
    """Build the per-core-type behaviour table for one workload.

    Args:
        compute_factor: multiplier on the base CPI capturing how compute-heavy the
            workload's instruction mix is (branchy request parsing vs. streaming).
        mlp_factor: multiplier on the memory-level-parallelism constants for
            workloads with unusually low (or high) overlap, e.g. Media Streaming.
    """
    return {
        core: CoreBehavior(
            base_cpi=_BASE_CPI[core] * compute_factor,
            l1_miss_scale=_L1_MISS_SCALE[core],
            data_mlp=max(1.0, _DATA_MLP[core] * mlp_factor),
            memory_mlp=max(1.0, _MEMORY_MLP[core] * mlp_factor),
        )
        for core in _BASE_CPI
    }


def _curve(
    floor: float,
    capturable: float,
    half_mb: float,
    exponent: float,
    instr_mpki: float = 0.0,
    instr_half_mb: float = 0.5,
) -> MissRatioCurve:
    return MissRatioCurve(
        floor_mpki=floor,
        capturable_mpki=capturable,
        capture=CaptureCurve(half_capture_mb=half_mb, exponent=exponent),
        instruction_mpki=instr_mpki,
        instruction_capture=CaptureCurve(half_capture_mb=instr_half_mb, exponent=2.2),
    )


DATA_SERVING = WorkloadProfile(
    name="Data Serving",
    l1i_mpki=28.0,
    l1d_mpki=30.0,
    llc_curve=_curve(
        floor=3.0, capturable=6.0, half_mb=1.5, exponent=1.4, instr_mpki=7.0, instr_half_mb=0.75
    ),
    core_behavior=_behaviors(compute_factor=1.15),
    snoop_fraction=0.055,
    max_cores=64,
    software_knee_cores=32,
    scalability_rolloff=0.80,
    instruction_footprint_kb=1024,
    dataset_footprint_mb=2048,
    latency_sensitive=True,
    instructions_per_request=600_000.0,
)

MAPREDUCE_C = WorkloadProfile(
    name="MapReduce-C",
    l1i_mpki=14.0,
    l1d_mpki=22.0,
    llc_curve=_curve(
        floor=3.2, capturable=7.0, half_mb=5.0, exponent=1.2, instr_mpki=4.0, instr_half_mb=0.4
    ),
    core_behavior=_behaviors(compute_factor=1.05),
    snoop_fraction=0.022,
    max_cores=64,
    software_knee_cores=64,
    instruction_footprint_kb=512,
    dataset_footprint_mb=4096,
    latency_sensitive=False,
    instructions_per_request=8_000_000.0,
)

MAPREDUCE_W = WorkloadProfile(
    name="MapReduce-W",
    l1i_mpki=10.0,
    l1d_mpki=16.0,
    llc_curve=_curve(
        floor=2.4, capturable=4.0, half_mb=1.5, exponent=1.4, instr_mpki=3.0, instr_half_mb=0.35
    ),
    core_behavior=_behaviors(compute_factor=0.82),
    snoop_fraction=0.026,
    max_cores=64,
    software_knee_cores=64,
    instruction_footprint_kb=384,
    dataset_footprint_mb=4096,
    latency_sensitive=False,
    instructions_per_request=6_000_000.0,
)

MEDIA_STREAMING = WorkloadProfile(
    name="Media Streaming",
    l1i_mpki=12.0,
    l1d_mpki=20.0,
    llc_curve=_curve(
        floor=4.4, capturable=3.0, half_mb=1.2, exponent=1.5, instr_mpki=3.0, instr_half_mb=0.3
    ),
    core_behavior=_behaviors(compute_factor=1.45, mlp_factor=0.72),
    snoop_fraction=0.012,
    max_cores=16,
    software_knee_cores=16,
    instruction_footprint_kb=320,
    dataset_footprint_mb=8192,
    latency_sensitive=True,
    instructions_per_request=1_200_000.0,
)

SAT_SOLVER = WorkloadProfile(
    name="SAT Solver",
    l1i_mpki=8.0,
    l1d_mpki=22.0,
    llc_curve=_curve(
        floor=2.8, capturable=6.5, half_mb=4.5, exponent=1.2, instr_mpki=1.5, instr_half_mb=0.2
    ),
    core_behavior=_behaviors(compute_factor=0.90),
    snoop_fraction=0.033,
    max_cores=64,
    software_knee_cores=32,
    scalability_rolloff=0.85,
    instruction_footprint_kb=256,
    dataset_footprint_mb=1024,
    latency_sensitive=False,
    instructions_per_request=25_000_000.0,
)

WEB_FRONTEND = WorkloadProfile(
    name="Web Frontend",
    l1i_mpki=30.0,
    l1d_mpki=24.0,
    llc_curve=_curve(
        floor=2.0, capturable=6.0, half_mb=2.0, exponent=1.4, instr_mpki=9.0, instr_half_mb=1.05
    ),
    core_behavior=_behaviors(compute_factor=0.80),
    snoop_fraction=0.040,
    max_cores=32,
    software_knee_cores=32,
    instruction_footprint_kb=1536,
    dataset_footprint_mb=1024,
    latency_sensitive=True,
    instructions_per_request=2_500_000.0,
)

WEB_SEARCH = WorkloadProfile(
    name="Web Search",
    l1i_mpki=24.0,
    l1d_mpki=18.0,
    llc_curve=_curve(
        floor=1.5, capturable=5.0, half_mb=1.8, exponent=1.5, instr_mpki=8.0, instr_half_mb=1.3
    ),
    core_behavior=_behaviors(compute_factor=0.68),
    snoop_fraction=0.006,
    max_cores=32,
    software_knee_cores=32,
    scalability_rolloff=0.85,
    instruction_footprint_kb=2048,
    dataset_footprint_mb=2048,
    latency_sensitive=True,
    instructions_per_request=4_000_000.0,
)

#: All seven workloads in the paper's canonical presentation order.
CLOUDSUITE: "tuple[WorkloadProfile, ...]" = (
    DATA_SERVING,
    MAPREDUCE_C,
    MAPREDUCE_W,
    MEDIA_STREAMING,
    SAT_SOLVER,
    WEB_FRONTEND,
    WEB_SEARCH,
)

_BY_NAME = {w.name.lower(): w for w in CLOUDSUITE}
_ALIASES = {
    "data serving": "data serving",
    "dataserving": "data serving",
    "mapreduce-c": "mapreduce-c",
    "mapreduce-w": "mapreduce-w",
    "mapreduce_c": "mapreduce-c",
    "mapreduce_w": "mapreduce-w",
    "media streaming": "media streaming",
    "sat solver": "sat solver",
    "web frontend": "web frontend",
    "web search": "web search",
}


def workload_names() -> "list[str]":
    """Names of all workloads in the suite, in presentation order."""
    return [w.name for w in CLOUDSUITE]


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by (case-insensitive) name."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return _BY_NAME[key]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {workload_names()}") from None
