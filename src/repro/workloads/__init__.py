"""Scale-out workload models.

The paper evaluates seven CloudSuite-style scale-out workloads (Data Serving,
MapReduce-C, MapReduce-W, Media Streaming, SAT Solver, Web Frontend, Web Search).
The original study ran the real applications under Flexus full-system simulation;
here each workload is represented by a :class:`~repro.workloads.profile.WorkloadProfile`
-- a statistical characterization (per-core CPI components, L1 and LLC miss-ratio
curves, memory-level parallelism, coherence activity, software scalability) that is
calibrated against the behaviour the paper publishes (Figures 2.1, 2.2, 2.3 and 4.3).

The profiles feed both the analytic performance model (:mod:`repro.perfmodel`) and
the synthetic trace generator (:mod:`repro.workloads.traces`) that drives the
cycle-level simulator (:mod:`repro.sim`).
"""

from repro.workloads.missrate import CaptureCurve, MissRatioCurve
from repro.workloads.profile import CoreBehavior, WorkloadProfile
from repro.workloads.cloudsuite import (
    CLOUDSUITE,
    DATA_SERVING,
    MAPREDUCE_C,
    MAPREDUCE_W,
    MEDIA_STREAMING,
    SAT_SOLVER,
    WEB_FRONTEND,
    WEB_SEARCH,
    get_workload,
    workload_names,
)
from repro.workloads.suite import WorkloadSuite, default_suite
from repro.workloads.traces import SyntheticTraceGenerator, TraceEvent

__all__ = [
    "CaptureCurve",
    "MissRatioCurve",
    "CoreBehavior",
    "WorkloadProfile",
    "CLOUDSUITE",
    "DATA_SERVING",
    "MAPREDUCE_C",
    "MAPREDUCE_W",
    "MEDIA_STREAMING",
    "SAT_SOLVER",
    "WEB_FRONTEND",
    "WEB_SEARCH",
    "get_workload",
    "workload_names",
    "WorkloadSuite",
    "default_suite",
    "SyntheticTraceGenerator",
    "TraceEvent",
]
