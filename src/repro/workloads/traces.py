"""Synthetic memory-reference trace generation.

The cycle-level simulator (:mod:`repro.sim`) is trace-driven: each core consumes a
stream of :class:`TraceEvent` records describing the memory references the core
makes between committed instructions.  The original study extracted this behaviour
from full-system execution of CloudSuite; here we synthesize statistically
equivalent traces from the workload profiles.

Address-space model
-------------------

Each core's references are drawn from five regions whose sizes and access
probabilities are derived from the profile so that the *expected* L1 and LLC miss
rates match the profile:

* ``hot``       -- per-core private data (stack, hot locals); always hits the L1-D.
* ``shared_small`` -- shared OS/application structures that miss the 32 KB L1 but
  comfortably fit in any LLC.
* ``capturable``   -- the secondary working set; misses the L1 and hits the LLC only
  once the LLC is large enough to hold it (the Hill capture curve emerges from the
  region's footprint versus the simulated LLC capacity).
* ``dataset``      -- the vast memory-resident shard; effectively never reuses.
* ``instructions`` -- the instruction footprint; L1-I misses are generated directly
  at the profile's L1-I MPKI and almost always hit the LLC.

A small fraction of data references target *actively shared* lines (lines recently
written by another core), which is what produces coherence snoops in the simulated
directory, reproducing Figure 4.3's low snoop rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.workloads.profile import WorkloadProfile

#: Cache line size used throughout the reproduction (Table 2.2).
LINE_BYTES = 64

#: Data references issued per instruction by the synthetic cores (loads + stores).
DATA_ACCESS_RATE = 0.32

#: Fraction of data references that are writes.
WRITE_FRACTION = 0.22


@dataclass(frozen=True)
class TraceEvent:
    """One memory reference in a synthetic trace.

    Attributes:
        instruction_gap: number of instructions committed since the previous
            reference from this core (models compute between memory operations).
        address: byte address of the reference (line-aligned).
        is_instruction: True for an instruction fetch that missed the L1-I.
        is_write: True for stores.
        shared: True when the line is actively shared with other cores (may
            trigger a coherence snoop at the directory).
    """

    instruction_gap: int
    address: int
    is_instruction: bool
    is_write: bool
    shared: bool


@dataclass(frozen=True)
class _Region:
    """A contiguous region of the synthetic address space."""

    name: str
    base: int
    size_bytes: int

    def pick(self, rng: np.random.Generator) -> int:
        """Pick a random line-aligned address inside the region."""
        lines = max(1, self.size_bytes // LINE_BYTES)
        return self.base + int(rng.integers(0, lines)) * LINE_BYTES


class SyntheticTraceGenerator:
    """Generates per-core synthetic reference traces for one workload.

    Args:
        workload: the workload profile to mimic.
        cores: number of cores in the simulated system (regions are laid out so
            private regions never collide across cores).
        seed: RNG seed; traces are deterministic given (workload, cores, seed).
        core_type: which core's L1 configuration the trace is filtered for.
    """

    #: Virtual address-space layout (generous, purely synthetic).
    _INSTR_BASE = 0x0000_0000_1000_0000
    _SHARED_SMALL_BASE = 0x0000_0001_0000_0000
    _CAPTURABLE_BASE = 0x0000_0002_0000_0000
    _DATASET_BASE = 0x0000_0010_0000_0000
    _HOT_BASE = 0x0000_0100_0000_0000
    _SHARED_HOT_BASE = 0x0000_0200_0000_0000

    def __init__(
        self,
        workload: WorkloadProfile,
        cores: int = 1,
        seed: int = 1,
        core_type: str = "ooo",
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.workload = workload
        self.cores = cores
        self.seed = seed
        self.core_type = core_type

        i_mpki, d_mpki = workload.l1_mpki(core_type)
        curve = workload.llc_curve
        self.l1i_miss_per_instr = i_mpki / 1000.0
        self.l1d_miss_per_instr = d_mpki / 1000.0
        self.dataset_per_instr = curve.floor_mpki / 1000.0
        self.capturable_per_instr = (
            curve.capturable_mpki * workload.behavior(core_type).l1_miss_scale / 1000.0
        )
        shared_small = self.l1d_miss_per_instr - self.dataset_per_instr - self.capturable_per_instr
        self.shared_small_per_instr = max(0.0, shared_small)

        # Region footprints.
        self.regions = {
            "instructions": _Region(
                "instructions", self._INSTR_BASE, workload.instruction_footprint_kb * 1024
            ),
            "shared_small": _Region("shared_small", self._SHARED_SMALL_BASE, 512 * 1024),
            "capturable": _Region(
                "capturable",
                self._CAPTURABLE_BASE,
                int(curve.capture.half_capture_mb * 2 * 1024 * 1024),
            ),
            "dataset": _Region(
                "dataset", self._DATASET_BASE, workload.dataset_footprint_mb * 1024 * 1024
            ),
            "shared_hot": _Region("shared_hot", self._SHARED_HOT_BASE, 256 * 1024),
        }

    # ------------------------------------------------------------------ util
    def _hot_region(self, core_id: int) -> _Region:
        """Per-core private hot region (8 KB, always L1-resident)."""
        return _Region("hot", self._HOT_BASE + core_id * (1 << 20), 8 * 1024)

    def expected_llc_accesses_per_instruction(self) -> float:
        """Expected LLC accesses per instruction encoded in the trace."""
        return self.l1i_miss_per_instr + self.l1d_miss_per_instr

    # ------------------------------------------------------------- generator
    def events_for_core(self, core_id: int, instructions: int) -> "list[TraceEvent]":
        """Generate the reference trace for ``core_id`` covering ``instructions``.

        Only references that reach the LLC (L1 misses) are emitted, plus a small
        stream of actively-shared references; L1-resident traffic is summarized by
        the instruction gaps.  This is the reduced-fidelity substitution for
        full-system tracing described in DESIGN.md.
        """
        if core_id < 0 or core_id >= self.cores:
            raise ValueError(f"core_id {core_id} out of range for {self.cores} cores")
        if instructions <= 0:
            raise ValueError("instructions must be positive")

        rng = np.random.default_rng((self.seed, core_id, self.cores, 0xC0DE))
        workload = self.workload

        # Per-instruction probabilities of each LLC-visible event class.
        p_instr = self.l1i_miss_per_instr
        p_dataset = self.dataset_per_instr
        p_capturable = self.capturable_per_instr
        p_shared_small = self.shared_small_per_instr
        p_total = p_instr + p_dataset + p_capturable + p_shared_small
        if p_total <= 0:
            return []

        # Number of LLC-visible references in this window (expected value, made
        # deterministic to keep traces stable across runs).
        n_events = max(1, int(round(instructions * p_total)))
        gap_mean = instructions / n_events

        kinds = rng.choice(
            ["instructions", "dataset", "capturable", "shared_small"],
            size=n_events,
            p=[p_instr / p_total, p_dataset / p_total, p_capturable / p_total, p_shared_small / p_total],
        )
        gaps = rng.poisson(gap_mean, size=n_events)
        writes = rng.random(n_events) < WRITE_FRACTION
        shared_draw = rng.random(n_events) < workload.snoop_fraction

        events: "list[TraceEvent]" = []
        for kind, gap, is_write, is_shared in zip(kinds, gaps, writes, shared_draw):
            is_instruction = kind == "instructions"
            if is_instruction:
                region = self.regions["instructions"]
                is_write = False
                is_shared = False
            elif is_shared:
                region = self.regions["shared_hot"]
            else:
                region = self.regions[str(kind)]
            events.append(
                TraceEvent(
                    instruction_gap=int(max(1, gap)),
                    address=region.pick(rng),
                    is_instruction=is_instruction,
                    is_write=bool(is_write),
                    shared=bool(is_shared),
                )
            )
        return events

    def traces(self, instructions_per_core: int) -> "list[list[TraceEvent]]":
        """Traces for every core, indexed by core id."""
        return [self.events_for_core(c, instructions_per_core) for c in range(self.cores)]
