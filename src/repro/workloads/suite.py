"""Workload suite aggregation helpers.

The paper reports most design-space results averaged across the workload suite
(arithmetic mean of performance density, geometric mean for normalized
performance).  :class:`WorkloadSuite` provides those aggregations plus filtering
by software scalability (e.g. Chapter 4 evaluates the three poorly-scaling
workloads on only the 16 tiles nearest the LLC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.workloads.cloudsuite import CLOUDSUITE
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class WorkloadSuite:
    """An ordered collection of workload profiles with aggregation helpers."""

    workloads: "tuple[WorkloadProfile, ...]"

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a WorkloadSuite needs at least one workload")
        names = [w.name for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate workload names in suite")

    # ------------------------------------------------------------- container
    def __iter__(self) -> Iterator[WorkloadProfile]:
        return iter(self.workloads)

    def __len__(self) -> int:
        return len(self.workloads)

    def __getitem__(self, item: "int | str") -> WorkloadProfile:
        if isinstance(item, int):
            return self.workloads[item]
        for workload in self.workloads:
            if workload.name.lower() == item.lower():
                return workload
        raise KeyError(f"workload {item!r} not in suite")

    def names(self) -> "list[str]":
        """Workload names in suite order."""
        return [w.name for w in self.workloads]

    # ------------------------------------------------------------ filtering
    def scalable_to(self, cores: int) -> "WorkloadSuite":
        """Sub-suite of workloads whose software stack scales to ``cores`` cores."""
        selected = tuple(w for w in self.workloads if w.max_cores >= cores)
        if not selected:
            raise ValueError(f"no workload scales to {cores} cores")
        return WorkloadSuite(selected)

    def latency_sensitive(self) -> "WorkloadSuite":
        """Sub-suite of latency-sensitive (non-batch) workloads."""
        selected = tuple(w for w in self.workloads if w.latency_sensitive)
        if not selected:
            raise ValueError("no latency-sensitive workloads in suite")
        return WorkloadSuite(selected)

    # ----------------------------------------------------------- aggregation
    def mean(self, metric: Callable[[WorkloadProfile], float]) -> float:
        """Arithmetic mean of ``metric`` across the suite."""
        values = [metric(w) for w in self.workloads]
        return sum(values) / len(values)

    def geomean(self, metric: Callable[[WorkloadProfile], float]) -> float:
        """Geometric mean of ``metric`` across the suite (values must be positive)."""
        values = [metric(w) for w in self.workloads]
        offenders = {
            w.name: v for w, v in zip(self.workloads, values) if v <= 0
        }
        if offenders:
            raise ValueError(
                "geometric mean requires positive values; got non-positive "
                f"metric values for {offenders}"
            )
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def per_workload(self, metric: Callable[[WorkloadProfile], float]) -> "dict[str, float]":
        """Evaluate ``metric`` for every workload, keyed by workload name."""
        return {w.name: metric(w) for w in self.workloads}

    def worst_case(self, metric: Callable[[WorkloadProfile], float]) -> float:
        """Maximum of ``metric`` across the suite (used for bandwidth provisioning)."""
        return max(metric(w) for w in self.workloads)


def default_suite() -> WorkloadSuite:
    """The paper's seven-workload CloudSuite-style evaluation suite."""
    return WorkloadSuite(CLOUDSUITE)
