"""Average-memory-access-time style CPI decomposition.

The paper's analytic model (Section 2.4.3 / 3.3) "extends the classical average
memory access time analysis to predict the aggregate number of application
instructions committed per cycle for a given LLC capacity and core count".  This
module holds the decomposition datatypes; the model itself lives in
:mod:`repro.perfmodel.analytic`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LlcAccessLatency:
    """Decomposition of the average LLC access latency seen by a core.

    Attributes:
        bank_cycles: access time of the LLC bank itself.
        network_cycles: average one-way network latency from core to bank.
        contention_cycles: queueing delay at the banks.
    """

    bank_cycles: float
    network_cycles: float
    contention_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Total LLC load-to-use latency."""
        return self.bank_cycles + self.network_cycles + self.contention_cycles


@dataclass(frozen=True)
class CpiBreakdown:
    """Per-core cycles-per-instruction decomposition.

    Attributes:
        base: core-bound CPI (issue width, branches, L1-resident accesses).
        instruction_fetch: stalls due to L1-I misses served by the LLC.
        data_llc: stalls due to L1-D misses served by the LLC (MLP-adjusted).
        memory: stalls due to LLC misses served by DRAM (MLP-adjusted).
    """

    base: float
    instruction_fetch: float
    data_llc: float
    memory: float

    @property
    def total(self) -> float:
        """Total CPI."""
        return self.base + self.instruction_fetch + self.data_llc + self.memory

    @property
    def ipc(self) -> float:
        """Instructions per cycle (the paper's per-core performance metric)."""
        return 1.0 / self.total

    def as_dict(self) -> "dict[str, float]":
        """Breakdown as a plain dictionary (for tables and serialization)."""
        return {
            "base": self.base,
            "instruction_fetch": self.instruction_fetch,
            "data_llc": self.data_llc,
            "memory": self.memory,
            "total": self.total,
            "ipc": self.ipc,
        }
