"""Performance density -- the paper's optimization metric.

Performance density (PD) is throughput per unit area (Section 2.3 / 3.1):
``PD = aggregate application IPC / area_mm2``.  Chapter 6 extends the metric to
3D stacks as throughput per unit volume, which for equidistant stacked dies is
``aggregate IPC / (footprint_mm2 * num_dies)`` (see :mod:`repro.three_d.density`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AreaBudget:
    """Itemized silicon area of a design (pod or full chip).

    Attributes:
        cores_mm2: area of all cores (including their L1s).
        llc_mm2: area of the LLC.
        interconnect_mm2: area of the on-chip network.
        memory_interfaces_mm2: area of DRAM PHYs + controllers.
        soc_misc_mm2: area of miscellaneous SoC components.
    """

    cores_mm2: float = 0.0
    llc_mm2: float = 0.0
    interconnect_mm2: float = 0.0
    memory_interfaces_mm2: float = 0.0
    soc_misc_mm2: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_mm2(self) -> float:
        """Total area of the budget."""
        return (
            self.cores_mm2
            + self.llc_mm2
            + self.interconnect_mm2
            + self.memory_interfaces_mm2
            + self.soc_misc_mm2
        )

    def as_dict(self) -> "dict[str, float]":
        """Itemized areas as a plain dictionary."""
        return {
            "cores_mm2": self.cores_mm2,
            "llc_mm2": self.llc_mm2,
            "interconnect_mm2": self.interconnect_mm2,
            "memory_interfaces_mm2": self.memory_interfaces_mm2,
            "soc_misc_mm2": self.soc_misc_mm2,
        }

    def __add__(self, other: "AreaBudget") -> "AreaBudget":
        return AreaBudget(
            cores_mm2=self.cores_mm2 + other.cores_mm2,
            llc_mm2=self.llc_mm2 + other.llc_mm2,
            interconnect_mm2=self.interconnect_mm2 + other.interconnect_mm2,
            memory_interfaces_mm2=self.memory_interfaces_mm2 + other.memory_interfaces_mm2,
            soc_misc_mm2=self.soc_misc_mm2 + other.soc_misc_mm2,
        )

    def scaled(self, factor: float) -> "AreaBudget":
        """Budget with every component multiplied by ``factor`` (e.g. pod count)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return AreaBudget(
            cores_mm2=self.cores_mm2 * factor,
            llc_mm2=self.llc_mm2 * factor,
            interconnect_mm2=self.interconnect_mm2 * factor,
            memory_interfaces_mm2=self.memory_interfaces_mm2 * factor,
            soc_misc_mm2=self.soc_misc_mm2 * factor,
        )


def performance_density(aggregate_ipc: float, area_mm2: float, num_dies: int = 1) -> float:
    """Performance density: throughput per mm^2 (per die for 3D stacks).

    Args:
        aggregate_ipc: aggregate application instructions per cycle.
        area_mm2: die footprint in mm^2.
        num_dies: number of stacked logic dies (1 for planar chips); Chapter 6
            defines 3D performance density as performance per unit volume, which is
            proportional to performance per footprint area divided by the number of
            stacked dies.
    """
    if area_mm2 <= 0:
        raise ValueError("area_mm2 must be positive")
    if num_dies < 1:
        raise ValueError("num_dies must be >= 1")
    if aggregate_ipc < 0:
        raise ValueError("aggregate_ipc must be non-negative")
    return aggregate_ipc / (area_mm2 * num_dies)
