"""Analytic chip performance model.

This is the reproduction of the verified analytic model the paper uses for its
design-space studies (Sections 2.4.3 and 3.3, originally due to Hardavellas et
al.).  Given a workload profile, a core microarchitecture, an LLC capacity, an
interconnect, and a core count, the model predicts per-core and aggregate
application IPC via an average-memory-access-time CPI decomposition:

``CPI = CPI_base + mpi_L1I * t_LLC + mpi_L1D * t_LLC / MLP_data
       + mpi_LLC(C, N) * t_mem / MLP_mem``

where ``t_LLC`` is the LLC load-to-use latency (bank access + interconnect +
contention) and ``t_mem`` adds the DRAM access latency.  Instruction fetches are
charged the full LLC latency because L1-I misses stall the front end (the paper
repeatedly stresses their criticality); data accesses are overlapped according to
the workload/core MLP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.caches.nuca import NucaLLC
from repro.cores.models import CoreModel, core_model
from repro.interconnect import InterconnectModel, interconnect_model
from repro.interconnect.floorplan import Floorplan
from repro.memory.dram import DramChannel, channel_for_standard
from repro.perfmodel.amat import CpiBreakdown, LlcAccessLatency
from repro.technology.components import ComponentCatalog
from repro.technology.node import NODE_40NM, TechnologyNode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class SystemConfig:
    """One design point evaluated by the analytic model.

    Attributes:
        cores: number of cores sharing the LLC (one coherence domain / pod).
        core_type: "conventional", "ooo", or "inorder" (or a CoreModel).
        llc_capacity_mb: shared LLC capacity in MB.
        interconnect: interconnect name or model instance.
        node: technology node.
        llc_banks: number of LLC banks; defaults to the paper's 1-per-4-cores
            dancehall rule for crossbar/ideal designs and 1-per-tile for meshes.
        instruction_replication: model R-NUCA-style instruction replication in the
            LLC (the "with IR" tiled variants): instruction fetches see a one-hop
            network latency, at the cost of LLC capacity pressure and extra
            off-chip traffic.
        effective_capacity_factor: multiplier on the LLC capacity seen by the miss
            curve (used by instruction replication and other capacity-pressure
            effects).
        offchip_traffic_factor: multiplier on off-chip traffic (e.g. replication
            refills).
    """

    cores: int
    core_type: str = "ooo"
    llc_capacity_mb: float = 4.0
    interconnect: str = "crossbar"
    node: TechnologyNode = NODE_40NM
    llc_banks: "int | None" = None
    instruction_replication: bool = False
    effective_capacity_factor: float = 1.0
    offchip_traffic_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.llc_capacity_mb <= 0:
            raise ValueError("llc_capacity_mb must be positive")
        if self.effective_capacity_factor <= 0:
            raise ValueError("effective_capacity_factor must be positive")
        if self.offchip_traffic_factor <= 0:
            raise ValueError("offchip_traffic_factor must be positive")

    @property
    def effective_llc_capacity_mb(self) -> float:
        """LLC capacity seen by the miss-ratio curve after capacity-pressure effects."""
        return self.llc_capacity_mb * self.effective_capacity_factor

    # ------------------------------------------------------------- resolved
    def resolved_core(self) -> CoreModel:
        """The CoreModel for this configuration."""
        return core_model(self.core_type)

    def resolved_interconnect(self) -> InterconnectModel:
        """The interconnect model instance for this configuration."""
        return interconnect_model(self.interconnect)

    def resolved_banks(self) -> int:
        """Number of LLC banks (defaults to the paper's organization rules)."""
        if self.llc_banks is not None:
            if self.llc_banks < 1:
                raise ValueError("llc_banks must be >= 1")
            return self.llc_banks
        name = self.resolved_interconnect().name
        if name in ("mesh", "fbfly"):
            return self.cores  # one slice per tile
        return NucaLLC.banks_for_cores(self.cores)

    def llc(self) -> NucaLLC:
        """The NUCA LLC object for this configuration."""
        return NucaLLC(
            total_capacity_mb=self.llc_capacity_mb,
            num_banks=self.resolved_banks(),
            node=self.node,
        )

    def floorplan(self) -> Floorplan:
        """Floorplan of the core + LLC region used for distance-dependent delays."""
        catalog = ComponentCatalog(self.node)
        core = self.resolved_core()
        return Floorplan(
            cores=self.cores,
            core_area_mm2=catalog.core(core.name).area_mm2,
            llc_area_mm2=catalog.llc_area_mm2(self.llc_capacity_mb),
        )


@dataclass(frozen=True)
class PerformanceEstimate:
    """Model output for one (workload, configuration) pair.

    Attributes:
        workload: workload name.
        config: the evaluated configuration.
        cpi: per-core CPI breakdown.
        llc_latency: decomposition of the LLC access latency.
        llc_mpki: off-chip misses per kilo-instruction at this LLC capacity.
        per_core_ipc: application instructions per cycle per core.
        aggregate_ipc: chip/pod throughput (sum of per-core IPC).
        offchip_bandwidth_gbps: DRAM bandwidth demand of the configuration.
    """

    workload: str
    config: SystemConfig
    cpi: CpiBreakdown
    llc_latency: LlcAccessLatency
    llc_mpki: float
    per_core_ipc: float
    aggregate_ipc: float
    offchip_bandwidth_gbps: float


class AnalyticPerformanceModel:
    """Average-memory-access-time model of pod / chip throughput.

    Args:
        dram_channel: DRAM channel model used for the memory latency term; by
            default the node's memory standard (DDR3 at 40nm, DDR4 at 20nm).
    """

    def __init__(self, dram_channel: "DramChannel | None" = None):
        self._dram_override = dram_channel

    # ------------------------------------------------------------------ DRAM
    def _dram(self, node: TechnologyNode) -> DramChannel:
        if self._dram_override is not None:
            return self._dram_override
        return channel_for_standard(node.memory_standard)

    # ----------------------------------------------------------- LLC latency
    def llc_access_latency(
        self, config: SystemConfig, accesses_per_cycle: float = 0.0
    ) -> LlcAccessLatency:
        """Average LLC load-to-use latency for ``config``.

        Args:
            accesses_per_cycle: aggregate LLC access rate used for the (mild)
                bank-contention term; 0 disables contention.
        """
        llc = config.llc()
        floorplan = config.floorplan()
        network = config.resolved_interconnect().latency_cycles(floorplan, config.node)
        contention = llc.queueing_delay_cycles(accesses_per_cycle) if accesses_per_cycle > 0 else 0.0
        return LlcAccessLatency(
            bank_cycles=float(llc.bank_access_latency_cycles),
            network_cycles=float(network),
            contention_cycles=float(contention),
        )

    # ------------------------------------------------------------------- CPI
    def cpi_breakdown(
        self,
        workload: WorkloadProfile,
        config: SystemConfig,
        llc_latency: "LlcAccessLatency | None" = None,
    ) -> CpiBreakdown:
        """Per-core CPI decomposition for ``workload`` on ``config``."""
        core = config.resolved_core()
        behavior = workload.behavior(core.name)
        i_mpki, d_mpki = workload.l1_mpki(core.name)
        capacity = config.effective_llc_capacity_mb
        data_miss_mpki = workload.llc_data_mpki(capacity, config.cores, core.name)
        instr_miss_mpki = workload.llc_instruction_mpki(capacity, config.cores, core.name)

        if llc_latency is None:
            llc_latency = self.llc_access_latency(config)
        t_llc = llc_latency.total_cycles
        dram = self._dram(config.node)
        t_mem = t_llc + dram.access_latency_cycles(config.node)

        # Instruction replication (R-NUCA) keeps instruction blocks at most one
        # network hop away from the requesting core; the bank and contention
        # latencies still apply.
        if config.instruction_replication:
            t_fetch = llc_latency.bank_cycles + llc_latency.contention_cycles + 3.0
            t_fetch = min(t_fetch, t_llc)
        else:
            t_fetch = t_llc

        # Instruction-footprint misses that spill past the LLC stall the front end
        # for the full memory latency (no overlap); data misses overlap per the
        # workload's memory-level parallelism.
        memory_cpi = (
            data_miss_mpki / 1000.0 * t_mem / behavior.memory_mlp
            + instr_miss_mpki / 1000.0 * t_mem
        )

        return CpiBreakdown(
            base=behavior.base_cpi,
            instruction_fetch=i_mpki / 1000.0 * t_fetch,
            data_llc=d_mpki / 1000.0 * t_llc / behavior.data_mlp,
            memory=memory_cpi,
        )

    # -------------------------------------------------------------- estimate
    def estimate(self, workload: WorkloadProfile, config: SystemConfig) -> PerformanceEstimate:
        """Full performance estimate for one workload on one configuration.

        The LLC contention term depends on the access rate, which depends on the
        IPC; one fixed-point refinement pass is ample given how mild the
        contention is in the provisioned designs.
        """
        core = config.resolved_core()
        # First pass without contention.
        latency = self.llc_access_latency(config)
        cpi = self.cpi_breakdown(workload, config, latency)

        # Refine with bank contention based on the first-pass access rate.
        apki = workload.llc_accesses_per_kilo_instruction(core.name)
        accesses_per_cycle = config.cores * cpi.ipc * apki / 1000.0
        latency = self.llc_access_latency(config, accesses_per_cycle)
        cpi = self.cpi_breakdown(workload, config, latency)

        llc_mpki = workload.llc_mpki(
            config.effective_llc_capacity_mb, config.cores, core.name
        )
        per_core_ipc = cpi.ipc
        aggregate = per_core_ipc * config.cores
        bytes_per_instr = workload.offchip_bytes_per_instruction(
            config.effective_llc_capacity_mb, config.cores, core.name
        )
        bandwidth = (
            aggregate
            * config.node.frequency_ghz
            * 1e9
            * bytes_per_instr
            / 1e9
            * config.offchip_traffic_factor
        )
        return PerformanceEstimate(
            workload=workload.name,
            config=config,
            cpi=cpi,
            llc_latency=latency,
            llc_mpki=llc_mpki,
            per_core_ipc=per_core_ipc,
            aggregate_ipc=aggregate,
            offchip_bandwidth_gbps=bandwidth,
        )

    # ------------------------------------------------------- suite averages
    def suite_estimates(
        self, config: SystemConfig, suite: "WorkloadSuite | None" = None
    ) -> "dict[str, PerformanceEstimate]":
        """Estimates for every workload in ``suite`` (default: the full CloudSuite)."""
        suite = suite or default_suite()
        return {w.name: self.estimate(w, config) for w in suite}

    def average_aggregate_ipc(
        self, config: SystemConfig, suite: "WorkloadSuite | None" = None
    ) -> float:
        """Arithmetic-mean aggregate IPC across the suite (the paper's performance)."""
        estimates = self.suite_estimates(config, suite)
        return sum(e.aggregate_ipc for e in estimates.values()) / len(estimates)

    def average_per_core_ipc(
        self, config: SystemConfig, suite: "WorkloadSuite | None" = None
    ) -> float:
        """Arithmetic-mean per-core IPC across the suite."""
        estimates = self.suite_estimates(config, suite)
        return sum(e.per_core_ipc for e in estimates.values()) / len(estimates)

    def worst_case_bandwidth_gbps(
        self, config: SystemConfig, suite: "WorkloadSuite | None" = None
    ) -> float:
        """Worst-case off-chip bandwidth demand across the suite (for provisioning)."""
        estimates = self.suite_estimates(config, suite)
        return max(e.offchip_bandwidth_gbps for e in estimates.values())
