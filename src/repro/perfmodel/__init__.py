"""Analytic chip-level performance model and performance-density metric."""

from repro.perfmodel.amat import CpiBreakdown, LlcAccessLatency
from repro.perfmodel.analytic import AnalyticPerformanceModel, PerformanceEstimate, SystemConfig
from repro.perfmodel.density import AreaBudget, performance_density
from repro.perfmodel.validation import ValidationPoint, ValidationReport, validate_against

__all__ = [
    "CpiBreakdown",
    "LlcAccessLatency",
    "AnalyticPerformanceModel",
    "PerformanceEstimate",
    "SystemConfig",
    "AreaBudget",
    "performance_density",
    "ValidationPoint",
    "ValidationReport",
    "validate_against",
]
