"""Model-versus-simulation validation helpers (Figure 3.3).

The paper validates its analytic model against cycle-accurate simulation before
using it for the design-space sweep, reporting excellent accuracy up to 16 cores
and divergence at 32--64 cores on workloads with poor software scalability.  This
module computes the same comparison between :class:`AnalyticPerformanceModel`
predictions and measurements from the reduced-fidelity simulator in
:mod:`repro.sim` (or any other callable producing aggregate IPC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class ValidationPoint:
    """One (workload, configuration) comparison between model and simulation.

    Attributes:
        workload: workload name.
        cores: core count of the configuration.
        interconnect: interconnect name.
        model_ipc: aggregate IPC predicted by the analytic model.
        simulated_ipc: aggregate IPC measured by the simulator.
    """

    workload: str
    cores: int
    interconnect: str
    model_ipc: float
    simulated_ipc: float

    @property
    def relative_error(self) -> float:
        """Signed relative error of the model against the simulation."""
        if self.simulated_ipc == 0:
            return float("inf")
        return (self.model_ipc - self.simulated_ipc) / self.simulated_ipc


@dataclass(frozen=True)
class ValidationReport:
    """Collection of validation points with summary statistics."""

    points: "tuple[ValidationPoint, ...]"

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a ValidationReport needs at least one point")

    @property
    def mean_absolute_error(self) -> float:
        """Mean absolute relative error across all points."""
        finite = [abs(p.relative_error) for p in self.points if p.simulated_ipc > 0]
        if not finite:
            return float("inf")
        return sum(finite) / len(finite)

    @property
    def worst_error(self) -> float:
        """Largest absolute relative error across all points."""
        finite = [abs(p.relative_error) for p in self.points if p.simulated_ipc > 0]
        return max(finite) if finite else float("inf")

    def by_core_count(self, max_cores: int) -> "ValidationReport":
        """Sub-report restricted to configurations with at most ``max_cores`` cores."""
        selected = tuple(p for p in self.points if p.cores <= max_cores)
        if not selected:
            raise ValueError(f"no validation points with cores <= {max_cores}")
        return ValidationReport(selected)


SimulatorFn = Callable[[WorkloadProfile, SystemConfig], float]


def validate_against(
    simulate: SimulatorFn,
    workloads: Iterable[WorkloadProfile],
    configs: Sequence[SystemConfig],
    model: "AnalyticPerformanceModel | None" = None,
) -> ValidationReport:
    """Compare the analytic model against ``simulate`` over a set of design points.

    Args:
        simulate: callable returning the simulated aggregate IPC for
            (workload, config) -- typically a thin wrapper around
            :func:`repro.sim.system.simulate_system`.
        workloads: workload profiles to validate on.
        configs: configurations (core counts, interconnects) to validate on.
        model: analytic model instance (a default one is constructed if omitted).
    """
    model = model or AnalyticPerformanceModel()
    points: "list[ValidationPoint]" = []
    for workload in workloads:
        for config in configs:
            predicted = model.estimate(workload, config).aggregate_ipc
            measured = simulate(workload, config)
            points.append(
                ValidationPoint(
                    workload=workload.name,
                    cores=config.cores,
                    interconnect=config.resolved_interconnect().name,
                    model_ipc=predicted,
                    simulated_ipc=measured,
                )
            )
    return ValidationReport(tuple(points))
