"""A simplified SRAM/cache estimation model (CACTI substitute).

The paper uses CACTI 6.5 to estimate cache area, access latency, and energy.  CACTI
itself is a large C++ tool; this module provides an analytic stand-in calibrated to
the per-MB figures the paper publishes:

* 5 mm^2 and 1 W per MB of 16-way set-associative LLC at 40nm (Table 2.1);
* 3.2 mm^2 per MB at 32nm (Table 4.1);
* single-bank access latencies in the range reported for NUCA LLCs (a few cycles
  for small banks, growing roughly with the square root of capacity, dominated by
  wordline/bitline RC and H-tree wiring).

Only *relative* trends matter to the performance-density optimization: larger
caches are slower and bigger, smaller caches are faster and leave room for cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import TechnologyNode, scale_area, scale_power


@dataclass(frozen=True)
class CacheEstimate:
    """CACTI-like estimate for one cache bank or cache slice.

    Attributes:
        capacity_mb: bank capacity in megabytes.
        area_mm2: silicon area of the bank, including tag arrays and peripherals.
        access_latency_cycles: load-to-use access latency at the node frequency.
        dynamic_energy_nj: energy per access (nJ).
        leakage_w: static leakage power (W).
    """

    capacity_mb: float
    area_mm2: float
    access_latency_cycles: int
    dynamic_energy_nj: float
    leakage_w: float

    @property
    def total_power_w(self) -> float:
        """Rough total power assuming the paper's 1 W/MB activity factor at 40nm."""
        return self.leakage_w + self.dynamic_energy_nj  # both already scaled per bank


class SramModel:
    """Analytic SRAM bank model parametrized by a technology node.

    The model decomposes bank access latency into a fixed decode/sense component
    plus a wire component that grows with the physical extent of the array
    (proportional to ``sqrt(area)``), matching the first-order behaviour of CACTI's
    uniform cache access estimates.
    """

    #: mm^2 per MB of 16-way SA cache at the 40nm baseline (paper Table 2.1).
    AREA_MM2_PER_MB_40NM = 5.0
    #: W per MB at the 40nm baseline (paper Table 2.1), leakage + activity.
    POWER_W_PER_MB_40NM = 1.0
    #: Fixed portion of the bank access pipeline (decode, tag compare, sense amps).
    BASE_LATENCY_CYCLES = 2.0
    #: Reference dynamic energy per access for a 1MB bank at 40nm (nJ).
    DYN_ENERGY_NJ_PER_ACCESS_1MB_40NM = 0.35

    def __init__(self, node: TechnologyNode, associativity: int = 16, line_bytes: int = 64):
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        self.node = node
        self.associativity = associativity
        self.line_bytes = line_bytes

    # ------------------------------------------------------------------ area
    def area_mm2(self, capacity_mb: float) -> float:
        """Bank area in mm^2 for ``capacity_mb`` megabytes of cache."""
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        base = self.AREA_MM2_PER_MB_40NM * capacity_mb
        # Mild sub-linearity: peripheral overhead amortizes in bigger banks.
        overhead = 0.15 * self.AREA_MM2_PER_MB_40NM * math.sqrt(capacity_mb)
        return scale_area(base + overhead, self.node)

    # ----------------------------------------------------------------- power
    def power_w(self, capacity_mb: float) -> float:
        """Total (leakage + activity) power for a bank of ``capacity_mb`` MB."""
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        return scale_power(self.POWER_W_PER_MB_40NM * capacity_mb, self.node)

    def dynamic_energy_nj(self, capacity_mb: float) -> float:
        """Energy per read access (nJ), growing with sqrt(capacity)."""
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        e40 = self.DYN_ENERGY_NJ_PER_ACCESS_1MB_40NM * math.sqrt(capacity_mb)
        return e40 * self.node.logic_power_scale

    # --------------------------------------------------------------- latency
    def access_latency_cycles(self, capacity_mb: float) -> int:
        """Load-to-use latency in cycles for a single bank of ``capacity_mb`` MB.

        The wire component is derived from the bank's physical extent at the target
        node and the node's repeatered wire delay, so latency in *cycles* is nearly
        node-independent (smaller banks but slower relative wires), which matches
        the paper's constant per-hop and per-bank delays across nodes.
        """
        area = self.area_mm2(capacity_mb)
        extent_mm = math.sqrt(area)
        wire_cycles = self.node.wire_delay_cycles(extent_mm) * 2.0  # in + out
        total = self.BASE_LATENCY_CYCLES + wire_cycles
        return max(1, int(round(total)))

    # -------------------------------------------------------------- estimate
    def estimate(self, capacity_mb: float) -> CacheEstimate:
        """Full CACTI-like estimate for a bank of ``capacity_mb`` MB."""
        return CacheEstimate(
            capacity_mb=capacity_mb,
            area_mm2=self.area_mm2(capacity_mb),
            access_latency_cycles=self.access_latency_cycles(capacity_mb),
            dynamic_energy_nj=self.dynamic_energy_nj(capacity_mb),
            leakage_w=self.power_w(capacity_mb),
        )
