"""Per-component area and power catalog (paper Tables 2.1, 4.1 and 6.1).

The paper's design-space studies budget chips out of a small set of components:
three core types, the LLC (per MB), the interconnect, DDR memory interfaces
(PHY + controller), and miscellaneous SoC glue.  This module captures the
published 40nm figures and scales them to other nodes via
:mod:`repro.technology.node`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.node import (
    NODE_40NM,
    TechnologyNode,
    scale_area,
    scale_power,
)


@dataclass(frozen=True)
class ComponentSpec:
    """Area and power of one component instance at a particular node.

    Attributes:
        name: component name (e.g. ``"ooo_core"``).
        area_mm2: silicon area of one instance.
        power_w: peak power of one instance.
        analog: True for components dominated by analog circuitry (memory PHYs)
            that do not benefit from technology scaling.
    """

    name: str
    area_mm2: float
    power_w: float
    analog: bool = False

    def scaled(self, node: TechnologyNode) -> "ComponentSpec":
        """Return this spec scaled from the 40nm baseline to ``node``."""
        return ComponentSpec(
            name=self.name,
            area_mm2=scale_area(self.area_mm2, node, analog=self.analog),
            power_w=scale_power(self.power_w, node, analog=self.analog),
            analog=self.analog,
        )


# ----------------------------------------------------------------------------
# 40nm baseline figures, straight from Table 2.1 (and Table 6.1 for DDR4).
# ----------------------------------------------------------------------------

#: Aggressive 4-wide conventional server core (Xeon-class), 40nm.
CONVENTIONAL_CORE_40NM = ComponentSpec("conventional_core", area_mm2=25.0, power_w=11.0)

#: 3-wide out-of-order core (ARM Cortex-A15 class), 40nm.
OOO_CORE_40NM = ComponentSpec("ooo_core", area_mm2=4.5, power_w=1.0)

#: 2-wide in-order core (ARM Cortex-A8 class), 40nm.
INORDER_CORE_40NM = ComponentSpec("inorder_core", area_mm2=1.3, power_w=0.48)

#: Last-level cache, per MB of 16-way set-associative capacity, 40nm.
LLC_PER_MB_40NM = ComponentSpec("llc_per_mb", area_mm2=5.0, power_w=1.0)

#: One DDR3 interface: 2 mm^2 of PHY plus 10 mm^2 of controller, 5.7 W.
DDR3_INTERFACE_40NM = ComponentSpec("ddr3_interface", area_mm2=12.0, power_w=5.7, analog=True)

#: One DDR4 interface (Chapter 6 and the 20nm projection): same physical cost as
#: DDR3 but double the per-channel bandwidth.
DDR4_INTERFACE_40NM = ComponentSpec("ddr4_interface", area_mm2=12.0, power_w=5.7, analog=True)

#: Miscellaneous SoC components (I/O, clocking, system agent), 40nm.
SOC_MISC_40NM = ComponentSpec("soc_misc", area_mm2=42.0, power_w=5.0, analog=True)


class ComponentCatalog:
    """Area/power lookups for every budgeted component at a given node.

    The catalog exposes the paper's Table 2.1 components scaled to the requested
    node.  Interconnect area/power is *not* in the catalog because it depends on
    the organization; it is supplied by :mod:`repro.interconnect`.
    """

    def __init__(self, node: TechnologyNode = NODE_40NM):
        self.node = node
        self.conventional_core = CONVENTIONAL_CORE_40NM.scaled(node)
        self.ooo_core = OOO_CORE_40NM.scaled(node)
        self.inorder_core = INORDER_CORE_40NM.scaled(node)
        self.llc_per_mb = LLC_PER_MB_40NM.scaled(node)
        self.soc_misc = SOC_MISC_40NM.scaled(node)
        if node.memory_standard.upper() == "DDR4":
            self.memory_interface = DDR4_INTERFACE_40NM.scaled(node)
        else:
            self.memory_interface = DDR3_INTERFACE_40NM.scaled(node)

    # ------------------------------------------------------------------ cores
    def core(self, core_type: str) -> ComponentSpec:
        """Return the spec for ``core_type`` in {"conventional", "ooo", "inorder"}."""
        key = core_type.lower()
        if key in ("conventional", "conv"):
            return self.conventional_core
        if key in ("ooo", "out-of-order", "out_of_order"):
            return self.ooo_core
        if key in ("inorder", "in-order", "in_order", "io"):
            return self.inorder_core
        raise KeyError(f"unknown core type {core_type!r}")

    # -------------------------------------------------------------------- LLC
    def llc_area_mm2(self, capacity_mb: float) -> float:
        """Area of ``capacity_mb`` MB of LLC at this node."""
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        return self.llc_per_mb.area_mm2 * capacity_mb

    def llc_power_w(self, capacity_mb: float) -> float:
        """Power of ``capacity_mb`` MB of LLC at this node."""
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        return self.llc_per_mb.power_w * capacity_mb

    # ----------------------------------------------------------------- memory
    def memory_interface_area_mm2(self, channels: int) -> float:
        """Area of ``channels`` DRAM interfaces (PHY + controller)."""
        if channels < 0:
            raise ValueError("channels must be non-negative")
        return self.memory_interface.area_mm2 * channels

    def memory_interface_power_w(self, channels: int) -> float:
        """Power of ``channels`` DRAM interfaces."""
        if channels < 0:
            raise ValueError("channels must be non-negative")
        return self.memory_interface.power_w * channels


def catalog_for_node(node: "TechnologyNode | str | int") -> ComponentCatalog:
    """Convenience constructor accepting a node object, a name, or a feature size."""
    if isinstance(node, TechnologyNode):
        return ComponentCatalog(node)
    from repro.technology.node import get_node

    return ComponentCatalog(get_node(node))
