"""Repeatered on-die wire models.

Chapter 4 of the paper models semi-global wires with a 200nm pitch and
power-delay-optimized repeaters yielding 125 ps/mm delay and 50 fJ/bit/mm on random
data, with repeaters responsible for 19% of link energy.  Link wires are routed
over logic, so only repeater area counts against the NoC area budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import TechnologyNode


@dataclass(frozen=True)
class WireModel:
    """Physical model of repeatered on-die links.

    Attributes:
        node: target technology node (provides ps/mm and fJ/bit/mm).
        pitch_nm: wire pitch of the semi-global metal layer.
        repeater_energy_fraction: fraction of link energy dissipated in repeaters.
        repeater_area_mm2_per_bit_mm: repeater area per bit of link width per mm of
            link length.  Derived so that a 128-bit, full-chip-length link costs a
            small fraction of a mm^2, matching the paper's link-area breakdown.
    """

    node: TechnologyNode
    pitch_nm: float = 200.0
    repeater_energy_fraction: float = 0.19
    repeater_area_mm2_per_bit_mm: float = 0.000035

    def delay_ps(self, length_mm: float) -> float:
        """Wire delay in picoseconds for a link of ``length_mm``."""
        if length_mm < 0:
            raise ValueError("length_mm must be non-negative")
        return length_mm * self.node.wire_delay_ps_per_mm

    def delay_cycles(self, length_mm: float) -> float:
        """Wire delay in (fractional) clock cycles."""
        return self.delay_ps(length_mm) / 1000.0 * self.node.frequency_ghz

    def traversal_cycles(self, length_mm: float) -> int:
        """Integer number of cycles to traverse a pipelined link of ``length_mm``."""
        return max(1, int(math.ceil(self.delay_cycles(length_mm))))

    def reach_per_cycle_mm(self) -> float:
        """How many millimetres a signal covers in one clock cycle."""
        return 1000.0 / (self.node.wire_delay_ps_per_mm * self.node.frequency_ghz)

    def energy_pj(self, length_mm: float, bits: int, switching_factor: float = 0.5) -> float:
        """Energy (pJ) to move ``bits`` over ``length_mm`` of wire.

        The per-bit/mm figure already assumes random data (50% switching); the
        ``switching_factor`` argument rescales it for other activity levels.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        per_bit_fj = self.node.wire_energy_fj_per_bit_mm * (switching_factor / 0.5)
        return per_bit_fj * bits * length_mm / 1000.0

    def repeater_area_mm2(self, length_mm: float, bits: int) -> float:
        """Silicon area consumed by repeaters for a ``bits``-wide link of ``length_mm``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.repeater_area_mm2_per_bit_mm * bits * length_mm
