"""The technology-node family: 90 nm to 7 nm derived from declared scaling rules.

The paper evaluates exactly two full nodes (40 nm baseline, 20 nm projection)
plus the 32 nm NOC-Out study; ChipSuite-style studies instead span a whole
node family (90/65/40/28 nm, one runner per node).  This module promotes the
repo's technology axis to such a family: every :class:`TechnologyNode` is
*derived* from a compact :class:`NodeRecipe` by ITRS-style scaling laws
rather than hand-written, so the same rules that reproduce the paper's pinned
40/32/20 nm constants byte-for-byte also generate the 90/65/28/14/10/7 nm
nodes the paper never evaluated.

The declared rules (each a :class:`ScalingRule` carrying explicit validity
bounds) are:

* **logic area** -- quadratic in drawn feature size: ``(f / 40)**2``, the
  paper's "perfect area scaling of logic" assumption (Section 2.4.1);
* **Vdd** -- a Dennard-breakdown supply curve, tabulated per recipe
  (1.2 V at 90 nm down to 0.7 V at 7 nm, flat at 0.9 V through 40-28 nm);
* **logic power** -- switched capacitance times the supply ratio squared:
  ``cap_scale * (vdd / 0.9)**2`` at constant 2 GHz.  Capacitance follows the
  area law unless a recipe declares a calibration override (32 nm uses the
  paper's published 0.85 power factor);
* **analog/PHY area** -- does not scale, at any node (the paper's memory
  interface observation), so ``analog_area_scale`` is pinned to 1.0;
* **wires** -- repeatered semi-global wire delay/energy held at the paper's
  125 ps/mm and 50 fJ/bit/mm across the calibrated band (repeater
  re-optimization compensates); deep nodes declare worsening factors as wire
  RC outruns repeater sizing.

Nodes whose feature size falls outside a rule's validity bounds are still
generated, but :meth:`NodeFamily.provenance` flags exactly which rules were
extrapolated -- out-of-range nodes are *labelled*, never silently trusted.
SRAM density/latency (via :class:`~repro.technology.cacti.SramModel`) and
wire reach (via :class:`~repro.technology.wires.WireModel`) are reported in
the same provenance record so downstream studies can audit the derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.node import ChipConstraints, TechnologyNode

#: The paper's baseline feature size; every scaling factor is relative to it.
ANCHOR_FEATURE_NM = 40

#: Supply voltage at the 40 nm anchor (Section 2.4.1).
ANCHOR_VDD = 0.9

#: Operating frequency held constant across the family (the paper evaluates
#: every node at 2 GHz; frequency no longer scales post-Dennard).
ANCHOR_FREQUENCY_GHZ = 2.0

#: Repeatered semi-global wire delay at the anchor (Chapter 4): 125 ps/mm.
ANCHOR_WIRE_DELAY_PS_PER_MM = 125.0

#: Repeatered wire energy on random data at the anchor: 50 fJ/bit/mm.
ANCHOR_WIRE_ENERGY_FJ_PER_BIT_MM = 50.0

#: Die budgets every family node inherits: the paper's server-class socket
#: (95 W, <=280 mm^2, six DRAM channels) is a package/cooling limit, not a
#: property of the process, so it is node-invariant (Section 2.4.1).
PAPER_DIE_CONSTRAINTS = ChipConstraints(
    max_area_mm2=280.0, max_power_w=95.0, max_memory_channels=6
)


@dataclass(frozen=True)
class ScalingRule:
    """One declared scaling law with explicit extrapolation bounds.

    Attributes:
        name: short rule identifier used in provenance records.
        description: one-line statement of the law and its source.
        valid_from_nm: largest (oldest) feature size the rule is calibrated
            for, inclusive.
        valid_to_nm: smallest (newest) feature size the rule is calibrated
            for, inclusive.
    """

    name: str
    description: str
    valid_from_nm: int
    valid_to_nm: int

    def __post_init__(self) -> None:
        if self.valid_to_nm <= 0 or self.valid_from_nm < self.valid_to_nm:
            raise ValueError(
                f"rule {self.name!r} bounds must satisfy from >= to > 0, got "
                f"{self.valid_from_nm}..{self.valid_to_nm}"
            )

    def covers(self, feature_nm: int) -> bool:
        """Whether ``feature_nm`` lies inside this rule's calibrated band."""
        return self.valid_to_nm <= feature_nm <= self.valid_from_nm


#: Quadratic logic/SRAM area law, validated over the paper's 40->20 nm span.
AREA_RULE = ScalingRule(
    "logic_area",
    "logic/SRAM area scales as (feature/40)^2 (perfect scaling, Section 2.4.1)",
    valid_from_nm=40,
    valid_to_nm=20,
)

#: Dennard-breakdown supply curve, anchored to the paper's 0.9 V / 0.8 V points.
VDD_RULE = ScalingRule(
    "vdd",
    "supply voltage follows the tabulated Dennard-breakdown curve "
    "(0.9 V at 40-28 nm, 0.8 V at 20 nm per Section 2.4.1)",
    valid_from_nm=40,
    valid_to_nm=20,
)

#: Dynamic power law: switched capacitance x (Vdd ratio)^2 at constant 2 GHz.
POWER_RULE = ScalingRule(
    "logic_power",
    "component power scales as cap_scale * (vdd/0.9)^2 at constant frequency; "
    "capacitance follows area unless a recipe declares a calibrated override",
    valid_from_nm=40,
    valid_to_nm=20,
)

#: Analog/PHY non-scaling observation; the paper states it without bounds, so
#: the rule covers the whole family.
ANALOG_RULE = ScalingRule(
    "analog_area",
    "analog/PHY circuitry (memory interfaces) does not shrink at any node",
    valid_from_nm=90,
    valid_to_nm=7,
)

#: Repeatered-wire law: the paper's 125 ps/mm / 50 fJ/bit/mm figures hold
#: across its studied nodes; deep nodes extrapolate with declared factors.
WIRE_RULE = ScalingRule(
    "wires",
    "repeatered semi-global wires stay at 125 ps/mm and 50 fJ/bit/mm within "
    "the calibrated band (repeater re-optimization compensates)",
    valid_from_nm=40,
    valid_to_nm=20,
)

#: Every declared rule, in the order provenance records report them.
SCALING_RULES: "tuple[ScalingRule, ...]" = (
    AREA_RULE,
    VDD_RULE,
    POWER_RULE,
    ANALOG_RULE,
    WIRE_RULE,
)


@dataclass(frozen=True)
class NodeRecipe:
    """The compact declared inputs one family node is derived from.

    Attributes:
        feature_nm: drawn feature size in nanometres.
        vdd: supply voltage from the Dennard-breakdown curve (V).
        memory_standard: DRAM interface generation available at this node.
        cap_scale: switched-capacitance scale versus 40 nm; ``None`` means the
            capacitance follows the area law (perfect Dennard capacitance
            scaling), a float declares a calibration override.
        wire_delay_factor: multiplier on the anchor's 125 ps/mm (1.0 inside
            the calibrated wire band).
        wire_energy_factor: multiplier on the anchor's 50 fJ/bit/mm.
        note: where the recipe's numbers come from.
    """

    feature_nm: int
    vdd: float
    memory_standard: str
    cap_scale: "float | None" = None
    wire_delay_factor: float = 1.0
    wire_energy_factor: float = 1.0
    note: str = ""

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError("feature_nm must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.wire_delay_factor <= 0 or self.wire_energy_factor <= 0:
            raise ValueError("wire factors must be positive")


#: The default family recipes, oldest node first.  40/32/20 nm carry the
#: paper's published figures; the rest extend the curve in both directions
#: (ChipSuite's 90/65/28 nm band and the post-paper FinFET nodes).
DEFAULT_RECIPES: "tuple[NodeRecipe, ...]" = (
    NodeRecipe(
        90, 1.2, "DDR3",
        wire_energy_factor=1.78,
        note="pre-breakdown extrapolation (ChipSuite's oldest node); wire "
             "energy grows with Vdd^2 on the fatter-but-higher-swing wires",
    ),
    NodeRecipe(
        65, 1.1, "DDR3",
        wire_energy_factor=1.49,
        note="pre-breakdown extrapolation; Vdd from the ITRS 65 nm tables",
    ),
    NodeRecipe(
        40, 0.9, "DDR3",
        note="paper baseline (Section 2.4.1): 0.9 V, DDR3, Table 2.1 figures",
    ),
    NodeRecipe(
        32, 0.9, "DDR3",
        cap_scale=0.85,
        note="paper's NOC-Out node (Chapter 4): power calibrated to the "
             "published 32 nm component figures (0.85x at equal Vdd)",
    ),
    NodeRecipe(
        28, 0.9, "DDR3",
        note="half-node shrink between the paper's 32 nm and 20 nm points",
    ),
    NodeRecipe(
        20, 0.8, "DDR4",
        note="paper scaling projection (Section 2.4.1): perfect 4x density, "
             "0.8 V, DDR4 interfaces",
    ),
    NodeRecipe(
        14, 0.8, "DDR4",
        wire_delay_factor=1.15, wire_energy_factor=0.79,
        note="FinFET extrapolation; wire RC outruns repeater sizing below "
             "20 nm, so delay per mm worsens",
    ),
    NodeRecipe(
        10, 0.75, "DDR4",
        wire_delay_factor=1.3, wire_energy_factor=0.69,
        note="FinFET extrapolation",
    ),
    NodeRecipe(
        7, 0.7, "DDR4",
        wire_delay_factor=1.5, wire_energy_factor=0.6,
        note="deepest extrapolated node; Vdd floor of the breakdown curve",
    ),
)


def _area_scale(feature_nm: int) -> float:
    """The quadratic area law, rounded to 12 decimals.

    Rounding normalizes binary-float noise -- ``(32/40)**2`` computes to
    0.6400000000000001 -- so the derived factors are byte-identical to the
    paper's published constants (0.64, 0.25, ...).
    """
    return round((feature_nm / ANCHOR_FEATURE_NM) ** 2, 12)


def derive_node(
    recipe: NodeRecipe, constraints: ChipConstraints = PAPER_DIE_CONSTRAINTS
) -> TechnologyNode:
    """Apply the declared scaling rules to one recipe.

    Args:
        recipe: the node's declared inputs (feature size, Vdd curve point,
            memory standard, optional capacitance calibration).
        constraints: die budgets the node inherits (the paper's node-invariant
            server socket by default).

    Returns:
        The fully derived :class:`TechnologyNode`.  For the 40/32/20 nm
        recipes the result is field-for-field byte-identical to the constants
        the paper publishes (regression-pinned in the test suite).
    """
    area_scale = _area_scale(recipe.feature_nm)
    cap_scale = recipe.cap_scale if recipe.cap_scale is not None else area_scale
    power_scale = cap_scale * (recipe.vdd / ANCHOR_VDD) ** 2
    return TechnologyNode(
        name=f"{recipe.feature_nm}nm",
        feature_nm=recipe.feature_nm,
        vdd=recipe.vdd,
        frequency_ghz=ANCHOR_FREQUENCY_GHZ,
        logic_area_scale=area_scale,
        logic_power_scale=power_scale,
        analog_area_scale=1.0,
        memory_standard=recipe.memory_standard,
        constraints=constraints,
        wire_delay_ps_per_mm=ANCHOR_WIRE_DELAY_PS_PER_MM * recipe.wire_delay_factor,
        wire_energy_fj_per_bit_mm=(
            ANCHOR_WIRE_ENERGY_FJ_PER_BIT_MM * recipe.wire_energy_factor
        ),
    )


class NodeFamily:
    """The derived node registry: lookup, enumeration, and rule provenance.

    Args:
        recipes: declared per-node inputs (the 90->7 nm defaults if omitted).
        constraints: die budgets shared by every derived node.

    Nodes are derived once at construction, so repeated lookups return the
    same instances (``family.node("40nm") is family.node(40)``).
    """

    def __init__(
        self,
        recipes: "tuple[NodeRecipe, ...]" = DEFAULT_RECIPES,
        constraints: ChipConstraints = PAPER_DIE_CONSTRAINTS,
    ):
        if not recipes:
            raise ValueError("a NodeFamily needs at least one recipe")
        features = [recipe.feature_nm for recipe in recipes]
        if len(set(features)) != len(features):
            raise ValueError(f"duplicate feature sizes in recipes: {features}")
        self._recipes: "dict[int, NodeRecipe]" = {
            recipe.feature_nm: recipe for recipe in recipes
        }
        self._nodes: "dict[int, TechnologyNode]" = {
            recipe.feature_nm: derive_node(recipe, constraints)
            for recipe in recipes
        }

    # -------------------------------------------------------------- geometry
    @property
    def features(self) -> "list[int]":
        """Feature sizes in declaration (oldest-first) order."""
        return list(self._nodes)

    @property
    def names(self) -> "list[str]":
        """Node names (``"90nm"``, ..., ``"7nm"``) in declaration order."""
        return [node.name for node in self._nodes.values()]

    # ---------------------------------------------------------------- lookup
    def normalize(self, key: "str | int | float | TechnologyNode") -> int:
        """Resolve ``"40nm"`` / ``"40"`` / ``40`` / a node object to a feature size.

        Raises:
            KeyError: when the key cannot be parsed or names no family node;
                the message enumerates the registry dynamically.
        """
        if isinstance(key, TechnologyNode):
            feature = key.feature_nm
        elif isinstance(key, bool):
            raise KeyError(self._unknown(key))
        elif isinstance(key, int):
            feature = key
        elif isinstance(key, float):
            if not key.is_integer():
                raise KeyError(self._unknown(key))
            feature = int(key)
        elif isinstance(key, str):
            text = key.strip().lower().removesuffix("nm").strip()
            if not text.isdigit():
                raise KeyError(self._unknown(key))
            feature = int(text)
        else:
            raise KeyError(self._unknown(key))
        if feature not in self._nodes:
            raise KeyError(self._unknown(key))
        return feature

    def _unknown(self, key: object) -> str:
        return (
            f"unknown technology node {key!r}; available: "
            f"{', '.join(self.names)}"
        )

    def node(self, key: "str | int | float | TechnologyNode") -> TechnologyNode:
        """Look one derived node up by name, feature size, or node object."""
        return self._nodes[self.normalize(key)]

    def nodes(self) -> "list[TechnologyNode]":
        """Every derived node, oldest first."""
        return list(self._nodes.values())

    def __iter__(self):
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: object) -> bool:
        try:
            self.normalize(key)  # type: ignore[arg-type]
        except KeyError:
            return False
        return True

    # ------------------------------------------------------------ provenance
    def extrapolated_rules(self, key: "str | int | TechnologyNode") -> "list[str]":
        """Names of the rules applied outside their calibrated bounds."""
        feature = self.normalize(key)
        return [rule.name for rule in SCALING_RULES if not rule.covers(feature)]

    def is_extrapolated(self, key: "str | int | TechnologyNode") -> bool:
        """Whether any rule had to extrapolate to derive this node."""
        return bool(self.extrapolated_rules(key))

    def provenance(self, key: "str | int | TechnologyNode") -> "dict[str, object]":
        """Full derivation audit for one node (JSON-able).

        The record names every rule with its bounds and in/out-of-bounds
        status, the recipe the node came from, and the derived figures --
        including the SRAM density/latency the CACTI stand-in reports and the
        wire reach from the wire model -- so studies can embed exactly how a
        node's numbers were obtained (and whether they were extrapolated).
        """
        from repro.technology.cacti import SramModel
        from repro.technology.wires import WireModel

        feature = self.normalize(key)
        node = self._nodes[feature]
        recipe = self._recipes[feature]
        sram = SramModel(node)
        wires = WireModel(node)
        extrapolated = self.extrapolated_rules(feature)
        return {
            "node": node.name,
            "feature_nm": feature,
            "calibrated": not extrapolated,
            "extrapolated": bool(extrapolated),
            "extrapolated_rules": extrapolated,
            "rules": {
                rule.name: {
                    "description": rule.description,
                    "valid_nm": [rule.valid_from_nm, rule.valid_to_nm],
                    "in_bounds": rule.covers(feature),
                }
                for rule in SCALING_RULES
            },
            "recipe": {
                "vdd": recipe.vdd,
                "memory_standard": recipe.memory_standard,
                "cap_scale": recipe.cap_scale,
                "wire_delay_factor": recipe.wire_delay_factor,
                "wire_energy_factor": recipe.wire_energy_factor,
                "note": recipe.note,
            },
            "derived": {
                "logic_area_scale": node.logic_area_scale,
                "logic_power_scale": node.logic_power_scale,
                "analog_area_scale": node.analog_area_scale,
                "wire_delay_ps_per_mm": node.wire_delay_ps_per_mm,
                "wire_energy_fj_per_bit_mm": node.wire_energy_fj_per_bit_mm,
                "wire_reach_mm_per_cycle": round(wires.reach_per_cycle_mm(), 4),
                "sram_area_mm2_per_mb": round(sram.area_mm2(1.0), 4),
                "sram_1mb_latency_cycles": sram.access_latency_cycles(1.0),
            },
        }

    def describe(self) -> "dict[str, object]":
        """JSON-able summary of the whole family (nodes + rule table)."""
        return {
            "anchor_nm": ANCHOR_FEATURE_NM,
            "nodes": self.names,
            "rules": {
                rule.name: {
                    "description": rule.description,
                    "valid_nm": [rule.valid_from_nm, rule.valid_to_nm],
                }
                for rule in SCALING_RULES
            },
        }


#: The process-wide default family every registry lookup resolves against.
DEFAULT_FAMILY = NodeFamily()

#: Node names of the default family, oldest first (the canonical DSE axis).
FAMILY_NODE_NAMES: "tuple[str, ...]" = tuple(DEFAULT_FAMILY.names)


def node_provenance(key: "str | int | TechnologyNode") -> "dict[str, object]":
    """Derivation audit for one default-family node (see :meth:`NodeFamily.provenance`)."""
    return DEFAULT_FAMILY.provenance(key)
