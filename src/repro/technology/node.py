"""Process technology nodes and scaling rules.

The paper evaluates chips at three nodes:

* 40nm -- the baseline for Chapters 2, 3, 5, and 6 (0.9 V, 2 GHz, 95 W budget,
  250-280 mm^2 dies, up to six DDR3 channels);
* 32nm -- the NOC-Out study of Chapter 4 (0.9 V, 2 GHz, 64-core pod);
* 20nm -- the scaling projection (0.8 V, 2 GHz, DDR4, perfect area scaling of
  cores and caches, memory-interface analog circuitry does not scale).

A :class:`TechnologyNode` carries the supply voltage, operating frequency, and the
scaling factors relative to the 40nm baseline.  Component catalogs
(:mod:`repro.technology.components`) use these factors to derive per-node area and
power figures from the paper's published 40nm values (Table 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipConstraints:
    """Physical budgets that bound a single die.

    Attributes:
        max_area_mm2: maximum die area available for the design (mm^2).
        max_power_w: thermal design power budget (W).
        max_memory_channels: maximum number of DRAM channels that fit on the die
            perimeter / package pins.
    """

    max_area_mm2: float
    max_power_w: float
    max_memory_channels: int

    def __post_init__(self) -> None:
        if self.max_area_mm2 <= 0:
            raise ValueError("max_area_mm2 must be positive")
        if self.max_power_w <= 0:
            raise ValueError("max_power_w must be positive")
        if self.max_memory_channels <= 0:
            raise ValueError("max_memory_channels must be positive")


@dataclass(frozen=True)
class TechnologyNode:
    """A manufacturing process node.

    Attributes:
        name: human readable node name, e.g. ``"40nm"``.
        feature_nm: drawn feature size in nanometres.
        vdd: nominal supply voltage (V).
        frequency_ghz: nominal operating frequency used throughout the paper (GHz).
        logic_area_scale: multiplicative factor applied to 40nm logic/SRAM area to
            obtain area at this node (1.0 at 40nm, 0.25 at 20nm under perfect
            scaling over two generations).
        logic_power_scale: multiplicative factor applied to 40nm dynamic power.
            Voltage scaling (0.9 V -> 0.8 V) and constant frequency give roughly
            ``(C_scale) * (V^2 ratio)``.
        analog_area_scale: scaling factor for analog/PHY circuitry (memory
            interfaces), which the paper observes does not benefit from scaling.
        memory_standard: DRAM interface standard available at this node.
        constraints: default die-level constraints used by the paper at this node.
        wire_delay_ps_per_mm: repeatered semi-global wire delay.
        wire_energy_fj_per_bit_mm: repeatered wire energy on random data.
    """

    name: str
    feature_nm: int
    vdd: float
    frequency_ghz: float
    logic_area_scale: float
    logic_power_scale: float
    analog_area_scale: float
    memory_standard: str
    constraints: ChipConstraints
    wire_delay_ps_per_mm: float = 125.0
    wire_energy_fj_per_bit_mm: float = 50.0

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def cycles_for_ns(self, nanoseconds: float) -> float:
        """Convert a latency in nanoseconds to (fractional) clock cycles."""
        return nanoseconds * self.frequency_ghz

    def wire_delay_cycles(self, distance_mm: float) -> float:
        """Delay, in cycles, of a repeatered wire spanning ``distance_mm``."""
        if distance_mm < 0:
            raise ValueError("distance_mm must be non-negative")
        delay_ns = distance_mm * self.wire_delay_ps_per_mm / 1000.0
        return self.cycles_for_ns(delay_ns)


def scale_area(area_mm2_40nm: float, node: TechnologyNode, analog: bool = False) -> float:
    """Scale a 40nm area figure to ``node``.

    Args:
        area_mm2_40nm: area at the 40nm baseline node.
        node: target technology node.
        analog: if True, use the analog scaling factor (memory PHYs and other
            circuits that the paper notes do not shrink).
    """
    factor = node.analog_area_scale if analog else node.logic_area_scale
    return area_mm2_40nm * factor


def scale_power(power_w_40nm: float, node: TechnologyNode, analog: bool = False) -> float:
    """Scale a 40nm power figure to ``node`` (constant frequency assumption)."""
    if analog:
        return power_w_40nm
    return power_w_40nm * node.logic_power_scale


#: Baseline node for Chapters 2, 3, 5 and 6.  95 W, ~250-280 mm^2, six DDR3
#: channels maximum (Section 2.4.1).
NODE_40NM = TechnologyNode(
    name="40nm",
    feature_nm=40,
    vdd=0.9,
    frequency_ghz=2.0,
    logic_area_scale=1.0,
    logic_power_scale=1.0,
    analog_area_scale=1.0,
    memory_standard="DDR3",
    constraints=ChipConstraints(max_area_mm2=280.0, max_power_w=95.0, max_memory_channels=6),
)

#: Node used for the NOC-Out study (Chapter 4): a 64-core pod at 32nm.  The area
#: scale reproduces the paper's 2.9 mm^2 ARM Cortex-A15 and 3.2 mm^2/MB LLC.
NODE_32NM = TechnologyNode(
    name="32nm",
    feature_nm=32,
    vdd=0.9,
    frequency_ghz=2.0,
    logic_area_scale=0.64,
    logic_power_scale=0.85,
    analog_area_scale=1.0,
    memory_standard="DDR3",
    constraints=ChipConstraints(max_area_mm2=280.0, max_power_w=95.0, max_memory_channels=6),
)

# The per-component 20nm power scale is applied to a *fixed microarchitecture*
# (same core, same cache block): capacitance scales by 0.25 and V^2 by (0.8/0.9)^2,
# so a 40nm component consumes ~0.2x the power at 20nm at constant frequency.
_PER_COMPONENT_20NM_POWER = 0.25 * (0.8 / 0.9) ** 2

#: Scaling-projection node (Section 2.4.1): perfect area scaling of logic over two
#: generations (4x density), 0.8 V supply, DDR4 interfaces, constant frequency.
NODE_20NM = TechnologyNode(
    name="20nm",
    feature_nm=20,
    vdd=0.8,
    frequency_ghz=2.0,
    logic_area_scale=0.25,
    logic_power_scale=_PER_COMPONENT_20NM_POWER,
    analog_area_scale=1.0,
    memory_standard="DDR4",
    constraints=ChipConstraints(max_area_mm2=280.0, max_power_w=95.0, max_memory_channels=6),
)

_NODES = {
    "40nm": NODE_40NM,
    "32nm": NODE_32NM,
    "20nm": NODE_20NM,
    40: NODE_40NM,
    32: NODE_32NM,
    20: NODE_20NM,
}


def get_node(name: "str | int") -> TechnologyNode:
    """Look up a predefined technology node by name (``"40nm"``) or feature size (40)."""
    try:
        return _NODES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology node {name!r}; available: 40nm, 32nm, 20nm"
        ) from None
