"""Process technology nodes and scaling rules.

The paper evaluates chips at three nodes:

* 40nm -- the baseline for Chapters 2, 3, 5, and 6 (0.9 V, 2 GHz, 95 W budget,
  250-280 mm^2 dies, up to six DDR3 channels);
* 32nm -- the NOC-Out study of Chapter 4 (0.9 V, 2 GHz, 64-core pod);
* 20nm -- the scaling projection (0.8 V, 2 GHz, DDR4, perfect area scaling of
  cores and caches, memory-interface analog circuitry does not scale).

A :class:`TechnologyNode` carries the supply voltage, operating frequency, and the
scaling factors relative to the 40nm baseline.  Component catalogs
(:mod:`repro.technology.components`) use these factors to derive per-node area and
power figures from the paper's published 40nm values (Table 2.1).

The three paper nodes are no longer hand-written constants: they (and the wider
90nm->7nm family) are derived from declared scaling rules by
:mod:`repro.technology.family`, with the 40/32/20nm results regression-pinned to
be byte-identical to the previously published values.  ``NODE_40NM`` /
``NODE_32NM`` / ``NODE_20NM`` remain importable from this module (resolved
lazily through the default family), and :func:`get_node` now accepts any family
node by name (``"40nm"``), bare string (``"40"``), or feature size (``40``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipConstraints:
    """Physical budgets that bound a single die.

    Attributes:
        max_area_mm2: maximum die area available for the design (mm^2).
        max_power_w: thermal design power budget (W).
        max_memory_channels: maximum number of DRAM channels that fit on the die
            perimeter / package pins.
    """

    max_area_mm2: float
    max_power_w: float
    max_memory_channels: int

    def __post_init__(self) -> None:
        if self.max_area_mm2 <= 0:
            raise ValueError("max_area_mm2 must be positive")
        if self.max_power_w <= 0:
            raise ValueError("max_power_w must be positive")
        if self.max_memory_channels <= 0:
            raise ValueError("max_memory_channels must be positive")


@dataclass(frozen=True)
class TechnologyNode:
    """A manufacturing process node.

    Attributes:
        name: human readable node name, e.g. ``"40nm"``.
        feature_nm: drawn feature size in nanometres.
        vdd: nominal supply voltage (V).
        frequency_ghz: nominal operating frequency used throughout the paper (GHz).
        logic_area_scale: multiplicative factor applied to 40nm logic/SRAM area to
            obtain area at this node (1.0 at 40nm, 0.25 at 20nm under perfect
            scaling over two generations).
        logic_power_scale: multiplicative factor applied to 40nm dynamic power.
            Voltage scaling (0.9 V -> 0.8 V) and constant frequency give roughly
            ``(C_scale) * (V^2 ratio)``.
        analog_area_scale: scaling factor for analog/PHY circuitry (memory
            interfaces), which the paper observes does not benefit from scaling.
        memory_standard: DRAM interface standard available at this node.
        constraints: default die-level constraints used by the paper at this node.
        wire_delay_ps_per_mm: repeatered semi-global wire delay.
        wire_energy_fj_per_bit_mm: repeatered wire energy on random data.
    """

    name: str
    feature_nm: int
    vdd: float
    frequency_ghz: float
    logic_area_scale: float
    logic_power_scale: float
    analog_area_scale: float
    memory_standard: str
    constraints: ChipConstraints
    wire_delay_ps_per_mm: float = 125.0
    wire_energy_fj_per_bit_mm: float = 50.0

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def cycles_for_ns(self, nanoseconds: float) -> float:
        """Convert a latency in nanoseconds to (fractional) clock cycles."""
        return nanoseconds * self.frequency_ghz

    def wire_delay_cycles(self, distance_mm: float) -> float:
        """Delay, in cycles, of a repeatered wire spanning ``distance_mm``."""
        if distance_mm < 0:
            raise ValueError("distance_mm must be non-negative")
        delay_ns = distance_mm * self.wire_delay_ps_per_mm / 1000.0
        return self.cycles_for_ns(delay_ns)


def scale_area(area_mm2_40nm: float, node: TechnologyNode, analog: bool = False) -> float:
    """Scale a 40nm area figure to ``node``.

    Args:
        area_mm2_40nm: area at the 40nm baseline node.
        node: target technology node.
        analog: if True, use the analog scaling factor (memory PHYs and other
            circuits that the paper notes do not shrink).
    """
    factor = node.analog_area_scale if analog else node.logic_area_scale
    return area_mm2_40nm * factor


def scale_power(power_w_40nm: float, node: TechnologyNode, analog: bool = False) -> float:
    """Scale a 40nm power figure to ``node`` (constant frequency assumption)."""
    if analog:
        return power_w_40nm
    return power_w_40nm * node.logic_power_scale


# The paper's pinned nodes are derived by repro.technology.family and resolved
# lazily (PEP 562) so node.py and family.py can import each other's pieces
# without a cycle: family imports the dataclasses above at module load, while
# these constants only touch family on first attribute access.
#
# NODE_40NM -- baseline for Chapters 2, 3, 5 and 6: 95 W, ~250-280 mm^2, six
#   DDR3 channels maximum (Section 2.4.1).
# NODE_32NM -- the NOC-Out study node (Chapter 4): the 0.64 area scale
#   reproduces the paper's 2.9 mm^2 ARM Cortex-A15 and 3.2 mm^2/MB LLC.
# NODE_20NM -- the scaling projection (Section 2.4.1): perfect area scaling
#   over two generations (4x density), 0.8 V, DDR4, constant frequency; the
#   per-component power scale is 0.25 * (0.8/0.9)^2 for a fixed
#   microarchitecture (capacitance by 0.25, V^2 by the supply ratio).
_PINNED_CONSTANTS = {
    "NODE_40NM": "40nm",
    "NODE_32NM": "32nm",
    "NODE_20NM": "20nm",
}


def __getattr__(name: str) -> TechnologyNode:
    """Resolve the pinned node constants lazily through the default family."""
    try:
        key = _PINNED_CONSTANTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from repro.technology.family import DEFAULT_FAMILY

    node = DEFAULT_FAMILY.node(key)
    globals()[name] = node
    return node


def get_node(name: "str | int | float | TechnologyNode") -> TechnologyNode:
    """Look a family node up by name (``"40nm"``), bare string, or feature size.

    ``"40nm"``, ``"40"``, ``40``, and an already-constructed
    :class:`TechnologyNode` all resolve uniformly.  Unknown nodes raise a
    :class:`KeyError` whose message enumerates the registry dynamically.
    """
    from repro.technology.family import DEFAULT_FAMILY

    return DEFAULT_FAMILY.node(name)


def coerce_node(node: "TechnologyNode | str | int | float") -> TechnologyNode:
    """Return ``node`` itself if already a :class:`TechnologyNode`, else look it up."""
    if isinstance(node, TechnologyNode):
        return node
    return get_node(node)
