"""Process technology models: nodes, SRAM, wires, and component area/power tables.

This package replaces the technology inputs the paper obtained from CACTI 6.5,
ORION 2.0, McPAT, and published die micrographs.  All numbers are anchored to the
figures the paper itself publishes (Tables 2.1, 2.2, 4.1, and 6.1) so that the
design-space studies reproduce the paper's constraints.
"""

from repro.technology.node import (
    TechnologyNode,
    ChipConstraints,
    NODE_40NM,
    NODE_32NM,
    NODE_20NM,
    get_node,
    coerce_node,
    scale_area,
    scale_power,
)
from repro.technology.family import (
    DEFAULT_FAMILY,
    FAMILY_NODE_NAMES,
    NodeFamily,
    NodeRecipe,
    ScalingRule,
    derive_node,
    node_provenance,
)
from repro.technology.cacti import SramModel, CacheEstimate
from repro.technology.wires import WireModel
from repro.technology.components import (
    ComponentCatalog,
    ComponentSpec,
    catalog_for_node,
)

__all__ = [
    "TechnologyNode",
    "ChipConstraints",
    "NODE_40NM",
    "NODE_32NM",
    "NODE_20NM",
    "get_node",
    "coerce_node",
    "scale_area",
    "scale_power",
    "DEFAULT_FAMILY",
    "FAMILY_NODE_NAMES",
    "NodeFamily",
    "NodeRecipe",
    "ScalingRule",
    "derive_node",
    "node_provenance",
    "SramModel",
    "CacheEstimate",
    "WireModel",
    "ComponentCatalog",
    "ComponentSpec",
    "catalog_for_node",
]
