"""TCO model parameters (paper Table 5.2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TcoParameters:
    """Datacenter cost and physical parameters used by the TCO model.

    The defaults reproduce Table 5.2 plus the experimental-setup constants of
    Section 5.2.3 (20 MW facility, 17 kW racks, $0.07/kWh electricity) and the
    amortization schedules of Section 5.2.1.
    """

    # --- rack geometry -------------------------------------------------------
    rack_units: int = 42
    rack_width_m: float = 0.6
    rack_depth_m: float = 1.2
    inter_rack_space_m: float = 1.2
    rack_power_limit_w: float = 17_000.0

    # --- facility ------------------------------------------------------------
    facility_power_budget_w: float = 20_000_000.0
    infrastructure_cost_per_m2: float = 3000.0
    cooling_power_equipment_cost_per_w: float = 12.5
    cooling_space_overhead: float = 0.20
    spue: float = 1.3
    pue: float = 1.3
    electricity_cost_per_kwh: float = 0.07

    # --- per-rack / per-server hardware -------------------------------------
    personnel_cost_per_rack_month: float = 200.0
    network_gear_power_w: float = 360.0
    network_gear_cost_per_rack: float = 10_000.0
    motherboard_power_w: float = 25.0
    motherboard_cost: float = 330.0
    disk_power_w: float = 10.0
    disk_cost: float = 180.0
    disks_per_server: int = 2
    dram_power_w_per_gb: float = 1.0
    dram_cost_per_gb: float = 25.0

    # --- reliability ---------------------------------------------------------
    disk_mttf_years: float = 100.0
    dram_mttf_years_per_gb: float = 800.0
    processor_mttf_years: float = 30.0

    # --- amortization schedules (years) --------------------------------------
    infrastructure_depreciation_years: float = 15.0
    server_amortization_years: float = 3.0
    network_amortization_years: float = 4.0

    def __post_init__(self) -> None:
        if self.rack_power_limit_w <= 0 or self.facility_power_budget_w <= 0:
            raise ValueError("power budgets must be positive")
        if self.pue < 1.0 or self.spue < 1.0:
            raise ValueError("PUE and SPUE must be >= 1")

    @property
    def rack_area_m2(self) -> float:
        """Floor area of one rack including inter-rack space."""
        return self.rack_width_m * (self.rack_depth_m + self.inter_rack_space_m)


#: The paper's Table 5.2 parameter set.
DEFAULT_TCO_PARAMETERS = TcoParameters()
