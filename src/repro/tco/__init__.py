"""Datacenter total-cost-of-ownership analysis (Chapter 5).

The TCO model follows EETCO's four expense categories (infrastructure, server and
networking hardware, power, maintenance) with the parameters of Table 5.2;
processor prices come from an NRE + mask + wafer/yield cost model (the paper's
Cadence InCyte substitution).  The datacenter model packs processors into 1U
servers and 17 kW racks under a 20 MW facility budget and reports performance,
TCO, performance/TCO, and performance/Watt for each server-chip design.
"""

from repro.tco.params import TcoParameters, DEFAULT_TCO_PARAMETERS
from repro.tco.pricing import ChipPricingModel, ChipPriceEstimate, KNOWN_MARKET_PRICES
from repro.tco.server import ServerConfig, RackConfig, ServerDesign
from repro.tco.model import TcoBreakdown, TcoModel
from repro.tco.datacenter import DatacenterDesign, DatacenterResult, evaluate_datacenter

__all__ = [
    "TcoParameters",
    "DEFAULT_TCO_PARAMETERS",
    "ChipPricingModel",
    "ChipPriceEstimate",
    "KNOWN_MARKET_PRICES",
    "ServerConfig",
    "RackConfig",
    "ServerDesign",
    "TcoBreakdown",
    "TcoModel",
    "DatacenterDesign",
    "DatacenterResult",
    "evaluate_datacenter",
]
