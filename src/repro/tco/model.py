"""Four-category datacenter TCO model (EETCO-style, Section 5.2.1).

Monthly TCO is the sum of:

* **infrastructure** -- land, building, power provisioning and cooling equipment,
  depreciated over 15 years; sized by rack floor area (plus the cooling-equipment
  space overhead) and by critical power;
* **server and networking hardware** -- amortized over 3 and 4 years respectively;
* **power** -- electricity for the IT load times the facility PUE;
* **maintenance** -- repair costs driven by component MTTFs plus personnel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tco.params import DEFAULT_TCO_PARAMETERS, TcoParameters
from repro.tco.server import ServerDesign

_HOURS_PER_MONTH = 730.0
_MONTHS_PER_YEAR = 12.0


@dataclass(frozen=True)
class TcoBreakdown:
    """Monthly TCO broken into the four expense categories (USD/month)."""

    infrastructure: float
    hardware: float
    power: float
    maintenance: float

    @property
    def total(self) -> float:
        """Total monthly TCO."""
        return self.infrastructure + self.hardware + self.power + self.maintenance

    def as_dict(self) -> "dict[str, float]":
        """Breakdown as a dictionary."""
        return {
            "infrastructure": self.infrastructure,
            "hardware": self.hardware,
            "power": self.power,
            "maintenance": self.maintenance,
            "total": self.total,
        }


class TcoModel:
    """Computes monthly datacenter TCO for a fleet of identical servers."""

    def __init__(self, params: TcoParameters = DEFAULT_TCO_PARAMETERS):
        self.params = params

    def monthly_tco(
        self,
        server: ServerDesign,
        num_servers: int,
        num_racks: int,
        processor_price: float,
    ) -> TcoBreakdown:
        """Monthly TCO of ``num_servers`` servers across ``num_racks`` racks."""
        if num_servers <= 0 or num_racks <= 0:
            raise ValueError("num_servers and num_racks must be positive")
        p = self.params

        # Infrastructure: floor space + power/cooling provisioning, 15-year life.
        it_area = num_racks * p.rack_area_m2 * (1.0 + p.cooling_space_overhead)
        critical_power_w = num_servers * server.server_power_w + num_racks * p.network_gear_power_w
        infrastructure_capex = (
            it_area * p.infrastructure_cost_per_m2
            + critical_power_w * p.cooling_power_equipment_cost_per_w
        )
        infrastructure = infrastructure_capex / (
            p.infrastructure_depreciation_years * _MONTHS_PER_YEAR
        )

        # Hardware: servers (3-year) plus network gear (4-year).
        server_capex = num_servers * server.hardware_cost(processor_price)
        network_capex = num_racks * p.network_gear_cost_per_rack
        hardware = server_capex / (p.server_amortization_years * _MONTHS_PER_YEAR) + (
            network_capex / (p.network_amortization_years * _MONTHS_PER_YEAR)
        )

        # Power: IT load times PUE, at the contracted electricity price.
        total_power_kw = critical_power_w * p.pue / 1000.0
        power = total_power_kw * _HOURS_PER_MONTH * p.electricity_cost_per_kwh

        # Maintenance: expected monthly replacements plus personnel.
        disk_failures = num_servers * server.config.disks / (p.disk_mttf_years * _MONTHS_PER_YEAR)
        dram_failures = (
            num_servers
            * server.config.memory_gb
            / (p.dram_mttf_years_per_gb * _MONTHS_PER_YEAR)
        )
        cpu_failures = (
            num_servers * server.sockets / (p.processor_mttf_years * _MONTHS_PER_YEAR)
        )
        repair = (
            disk_failures * p.disk_cost
            + dram_failures * p.dram_cost_per_gb
            + cpu_failures * processor_price
        )
        maintenance = repair + num_racks * p.personnel_cost_per_rack_month

        return TcoBreakdown(
            infrastructure=infrastructure,
            hardware=hardware,
            power=power,
            maintenance=maintenance,
        )
