"""Processor price estimation (Section 5.2.2).

The paper prices the conventional processor from its market price (a Xeon 5670 at
~$800) and prices the remaining chips with the Cadence InCyte chip estimator at a
production volume of 200 K units and a 50 % margin, observing that NRE and mask
costs dominate: doubling the die area raises the unit price by only ~15 % (about
$50).  This module reproduces that behaviour with an explicit NRE + mask + wafer
cost model with a yield term, and supports the production-volume sweep behind
Figure 5.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Known market prices used to anchor the model (Section 5.2.2).
KNOWN_MARKET_PRICES = {
    "Conventional": 800.0,
}


@dataclass(frozen=True)
class ChipPriceEstimate:
    """Price breakdown for one chip design at one production volume."""

    design: str
    die_area_mm2: float
    volume_units: int
    nre_per_unit: float
    silicon_cost_per_unit: float
    margin: float

    @property
    def unit_price(self) -> float:
        """Selling price per chip."""
        return (self.nre_per_unit + self.silicon_cost_per_unit) * (1.0 + self.margin)


class ChipPricingModel:
    """NRE + mask + wafer/yield cost model with a fixed profit margin.

    Defaults are tuned so that a ~250 mm^2 chip at a volume of 200 K units sells
    for roughly $370 and a ~120-160 mm^2 chip for roughly $320 (Table 5.1), with
    NRE/mask costs dominating the difference.
    """

    def __init__(
        self,
        nre_cost: float = 3.5e7,
        mask_set_cost: float = 3.0e6,
        wafer_cost: float = 4500.0,
        wafer_diameter_mm: float = 300.0,
        defect_density_per_cm2: float = 0.25,
        margin: float = 0.50,
    ):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.nre_cost = nre_cost
        self.mask_set_cost = mask_set_cost
        self.wafer_cost = wafer_cost
        self.wafer_diameter_mm = wafer_diameter_mm
        self.defect_density_per_cm2 = defect_density_per_cm2
        self.margin = margin

    # ------------------------------------------------------------------ yield
    def dies_per_wafer(self, die_area_mm2: float) -> int:
        """Gross dies per wafer (accounts for edge loss)."""
        if die_area_mm2 <= 0:
            raise ValueError("die_area_mm2 must be positive")
        radius = self.wafer_diameter_mm / 2.0
        wafer_area = math.pi * radius**2
        edge_loss = math.pi * self.wafer_diameter_mm / math.sqrt(2.0 * die_area_mm2)
        return max(1, int(wafer_area / die_area_mm2 - edge_loss))

    def die_yield(self, die_area_mm2: float) -> float:
        """Murphy-style yield model."""
        defects = self.defect_density_per_cm2 * die_area_mm2 / 100.0
        return 1.0 / (1.0 + defects) ** 2

    # ------------------------------------------------------------------ price
    def estimate(
        self, design: str, die_area_mm2: float, volume_units: int = 200_000
    ) -> ChipPriceEstimate:
        """Price estimate for ``design`` with ``die_area_mm2`` at ``volume_units``."""
        if volume_units <= 0:
            raise ValueError("volume_units must be positive")
        good_dies_per_wafer = self.dies_per_wafer(die_area_mm2) * self.die_yield(die_area_mm2)
        silicon_cost = self.wafer_cost / max(1.0, good_dies_per_wafer)
        packaging_test = 12.0 + 0.05 * die_area_mm2
        nre_per_unit = (self.nre_cost + self.mask_set_cost) / volume_units
        return ChipPriceEstimate(
            design=design,
            die_area_mm2=die_area_mm2,
            volume_units=volume_units,
            nre_per_unit=nre_per_unit,
            silicon_cost_per_unit=silicon_cost + packaging_test,
            margin=self.margin,
        )

    def price(
        self, design: str, die_area_mm2: float, volume_units: int = 200_000
    ) -> float:
        """Unit price, using the known market price when one exists."""
        if design in KNOWN_MARKET_PRICES:
            return KNOWN_MARKET_PRICES[design]
        return self.estimate(design, die_area_mm2, volume_units).unit_price

    def price_vs_volume(
        self, design: str, die_area_mm2: float, volumes: "tuple[int, ...]" = (40_000, 100_000, 200_000, 500_000, 1_000_000)
    ) -> "dict[int, float]":
        """Unit price across production volumes (Figure 5.5's x-axis)."""
        return {v: self.estimate(design, die_area_mm2, v).unit_price for v in volumes}
