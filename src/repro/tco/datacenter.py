"""Datacenter-level evaluation: performance, TCO, perf/TCO, perf/Watt (Chapter 5).

The facility has a fixed 20 MW power budget; racks are limited to 17 kW.  For a
given server-chip design the datacenter model derives sockets per 1U server,
servers per rack, and racks per facility, then reports aggregate performance,
monthly TCO, performance per TCO dollar, and performance per Watt -- the metrics
behind Figures 5.1-5.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chip import ScaleOutChip
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.tco.model import TcoBreakdown, TcoModel
from repro.tco.params import DEFAULT_TCO_PARAMETERS, TcoParameters
from repro.tco.pricing import ChipPricingModel
from repro.tco.server import ServerConfig, ServerDesign
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class DatacenterResult:
    """Datacenter-level metrics for one server-chip design."""

    design: str
    memory_gb: int
    processor_price: float
    sockets_per_server: int
    servers_per_rack: int
    racks: int
    servers: int
    performance: float
    monthly_tco: float
    tco_breakdown: TcoBreakdown
    total_power_w: float

    @property
    def performance_per_tco(self) -> float:
        """Aggregate performance per monthly TCO dollar (scaled by 1000 for readability)."""
        return self.performance / self.monthly_tco * 1000.0

    @property
    def performance_per_watt(self) -> float:
        """Aggregate performance per Watt of facility power."""
        return self.performance / self.total_power_w


class DatacenterDesign:
    """Builds and evaluates a datacenter around one server-chip design."""

    def __init__(
        self,
        params: TcoParameters = DEFAULT_TCO_PARAMETERS,
        pricing: "ChipPricingModel | None" = None,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ):
        self.params = params
        self.pricing = pricing or ChipPricingModel()
        self.model = model or AnalyticPerformanceModel()
        self.suite = suite or default_suite()
        self.tco_model = TcoModel(params)

    def build_server(self, chip: ScaleOutChip, memory_gb: int = 64) -> ServerDesign:
        """The 1U server built around ``chip`` under this design's TCO parameters.

        Shared by the datacenter evaluation and the service-level cluster sizer
        so both layers agree on sockets per server and rack packing.
        """
        return ServerDesign(
            chip=chip,
            chip_performance=chip.performance(self.model, self.suite),
            config=ServerConfig(memory_gb=memory_gb),
            params=self.params,
        )

    def evaluate(
        self,
        chip: ScaleOutChip,
        memory_gb: int = 64,
        processor_price: "float | None" = None,
        volume_units: int = 200_000,
    ) -> DatacenterResult:
        """Evaluate the datacenter built from ``chip``-based servers."""
        price = (
            processor_price
            if processor_price is not None
            else self.pricing.price(chip.name, chip.die_area_mm2, volume_units)
        )
        server = self.build_server(chip, memory_gb=memory_gb)
        servers_per_rack = server.servers_per_rack()
        rack_power = (
            servers_per_rack * server.server_power_w + self.params.network_gear_power_w
        )
        racks = max(1, int(self.params.facility_power_budget_w // rack_power))
        servers = racks * servers_per_rack
        performance = servers * server.server_performance
        tco = self.tco_model.monthly_tco(server, servers, racks, price)
        total_power = racks * rack_power * self.params.pue
        return DatacenterResult(
            design=chip.name,
            memory_gb=memory_gb,
            processor_price=price,
            sockets_per_server=server.sockets,
            servers_per_rack=servers_per_rack,
            racks=racks,
            servers=servers,
            performance=performance,
            monthly_tco=tco.total,
            tco_breakdown=tco,
            total_power_w=total_power,
        )

    def compare(
        self,
        chips: Sequence[ScaleOutChip],
        memory_gb: int = 64,
        baseline: str = "Conventional",
    ) -> "dict[str, dict[str, float]]":
        """Normalized performance and TCO for a set of designs (Figures 5.1/5.2)."""
        results = {chip.name: self.evaluate(chip, memory_gb) for chip in chips}
        base = results[baseline] if baseline in results else next(iter(results.values()))
        comparison: "dict[str, dict[str, float]]" = {}
        for name, result in results.items():
            comparison[name] = {
                "performance": result.performance / base.performance,
                "tco": result.monthly_tco / base.monthly_tco,
                "performance_per_tco": result.performance_per_tco,
                "performance_per_watt": result.performance_per_watt,
            }
        return comparison


def evaluate_datacenter(
    chip: ScaleOutChip,
    memory_gb: int = 64,
    params: TcoParameters = DEFAULT_TCO_PARAMETERS,
) -> DatacenterResult:
    """Convenience wrapper: evaluate one chip design with default models."""
    return DatacenterDesign(params).evaluate(chip, memory_gb)
