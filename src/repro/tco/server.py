"""Server and rack composition (Section 5.2.3).

The experimental setup fills each 1U server with as many processor sockets as the
remaining power budget allows after the motherboard, disks, memory, and the
server's share of rack-level gear are accounted for; racks are filled with 1U
servers up to the rack power limit; the datacenter is filled with racks up to the
facility power budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.chip import ScaleOutChip
from repro.tco.params import DEFAULT_TCO_PARAMETERS, TcoParameters


@dataclass(frozen=True)
class ServerConfig:
    """Configuration of one 1U server.

    Attributes:
        memory_gb: DRAM capacity per 1U server (the paper evaluates 32/64/128 GB).
        disks: number of disks.
    """

    memory_gb: int = 64
    disks: int = 2

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.disks < 0:
            raise ValueError("disks must be non-negative")


@dataclass(frozen=True)
class RackConfig:
    """Rack-level constants derived from the TCO parameters."""

    params: TcoParameters = DEFAULT_TCO_PARAMETERS

    @property
    def usable_power_w(self) -> float:
        """Rack power available to servers after the shared network gear."""
        return self.params.rack_power_limit_w - self.params.network_gear_power_w


@dataclass(frozen=True)
class ServerDesign:
    """A 1U server built around a particular server chip.

    Attributes:
        chip: the processor design populating the server's sockets.
        chip_performance: average aggregate IPC of one chip (pre-computed).
        config: memory/disk configuration.
        params: TCO parameters.
    """

    chip: ScaleOutChip
    chip_performance: float
    config: ServerConfig = ServerConfig()
    params: TcoParameters = DEFAULT_TCO_PARAMETERS

    # ------------------------------------------------------------------ power
    @property
    def non_processor_power_w(self) -> float:
        """Power of everything in the 1U box except the processors."""
        return (
            self.params.motherboard_power_w
            + self.config.disks * self.params.disk_power_w
            + self.config.memory_gb * self.params.dram_power_w_per_gb
        )

    @property
    def sockets(self) -> int:
        """Processors per 1U server: fill the remaining per-server power budget.

        The rack's usable power divided by 42 servers bounds per-server power;
        after subtracting the non-processor components, the rest is divided by the
        chip TDP (at least one socket).
        """
        rack = RackConfig(self.params)
        per_server_budget = rack.usable_power_w / self.params.rack_units
        processor_budget = per_server_budget / self.params.spue - self.non_processor_power_w
        if processor_budget <= 0:
            return 1
        return max(1, int(processor_budget // max(1e-9, self.chip.power_w)))

    @property
    def server_power_w(self) -> float:
        """Wall power of one server, including fan/PSU overhead (SPUE)."""
        it_power = self.non_processor_power_w + self.sockets * self.chip.power_w
        return it_power * self.params.spue

    # ------------------------------------------------------------ performance
    @property
    def server_performance(self) -> float:
        """Aggregate IPC of one server (all sockets)."""
        return self.sockets * self.chip_performance

    # ------------------------------------------------------------------- cost
    def hardware_cost(self, processor_price: float) -> float:
        """Acquisition cost of one server."""
        return (
            self.params.motherboard_cost
            + self.config.disks * self.params.disk_cost
            + self.config.memory_gb * self.params.dram_cost_per_gb
            + self.sockets * processor_price
        )

    # ------------------------------------------------------------------ racks
    def servers_per_rack(self) -> int:
        """1U servers per rack, limited by both space (42U) and rack power."""
        rack = RackConfig(self.params)
        by_power = int(rack.usable_power_w // max(1e-9, self.server_power_w))
        return max(1, min(self.params.rack_units, by_power))
