"""Cache hierarchy models: L1 parameters, LLC banks, and NUCA organizations."""

from repro.caches.bank import CacheBank
from repro.caches.hierarchy import L1Config, DEFAULT_L1, CONVENTIONAL_L1
from repro.caches.nuca import NucaLLC

__all__ = ["CacheBank", "L1Config", "DEFAULT_L1", "CONVENTIONAL_L1", "NucaLLC"]
