"""Banked non-uniform cache architecture (NUCA) last-level cache.

The paper evaluates a two-level hierarchy with a shared NUCA LLC (Section 2.1.3):
the LLC is split into banks; dancehall (conventional / scale-out pod) designs use
one bank per four cores, tiled designs use one bank per tile, and NOC-Out
concentrates banks into a central row of cache-only tiles.  The physical bank
parameters come from :class:`repro.caches.bank.CacheBank`; the *network* part of
the access latency comes from :mod:`repro.interconnect`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.caches.bank import CacheBank
from repro.technology.node import NODE_40NM, TechnologyNode


@dataclass(frozen=True)
class NucaLLC:
    """A banked, shared last-level cache.

    Attributes:
        total_capacity_mb: aggregate LLC capacity.
        num_banks: number of independently accessible banks.
        associativity: per-bank associativity.
        line_bytes: cache line size.
        node: technology node.
    """

    total_capacity_mb: float
    num_banks: int
    associativity: int = 16
    line_bytes: int = 64
    node: TechnologyNode = NODE_40NM

    def __post_init__(self) -> None:
        if self.total_capacity_mb <= 0:
            raise ValueError("total_capacity_mb must be positive")
        if self.num_banks < 1:
            raise ValueError("num_banks must be >= 1")

    # ----------------------------------------------------------------- banks
    @property
    def bank_capacity_mb(self) -> float:
        """Capacity of each individual bank."""
        return self.total_capacity_mb / self.num_banks

    def bank(self) -> CacheBank:
        """Physical model of a single bank."""
        return CacheBank(
            capacity_mb=self.bank_capacity_mb,
            associativity=self.associativity,
            line_bytes=self.line_bytes,
            node=self.node,
        )

    # -------------------------------------------------------------- physical
    @property
    def bank_access_latency_cycles(self) -> int:
        """Access latency of one bank (excluding the interconnect)."""
        return self.bank().access_latency_cycles

    @property
    def area_mm2(self) -> float:
        """Total LLC area across all banks."""
        return self.bank().area_mm2 * self.num_banks

    @property
    def power_w(self) -> float:
        """Total LLC power across all banks."""
        return self.bank().power_w * self.num_banks

    # ------------------------------------------------------------ contention
    def bank_utilization(self, accesses_per_cycle: float, service_cycles: float = 2.0) -> float:
        """Average utilization of each bank given an aggregate access rate."""
        if accesses_per_cycle < 0:
            raise ValueError("accesses_per_cycle must be non-negative")
        return min(1.0, accesses_per_cycle * service_cycles / self.num_banks)

    def queueing_delay_cycles(self, accesses_per_cycle: float, service_cycles: float = 2.0) -> float:
        """M/D/1-style queueing delay per access at the banks.

        Kept deliberately mild: the paper reports that differences in latency, not
        bandwidth, drive the results (Section 4.4.1), so the banks are provisioned
        to stay uncongested; this term only matters in oversubscribed corner cases.
        """
        rho = self.bank_utilization(accesses_per_cycle, service_cycles)
        if rho >= 0.999:
            rho = 0.999
        return 0.5 * rho / (1.0 - rho) * service_cycles

    # ----------------------------------------------------------- bank layout
    @staticmethod
    def banks_for_cores(cores: int, cores_per_bank: int = 4) -> int:
        """Paper's banking rule: one bank per ``cores_per_bank`` cores (min 1)."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if cores_per_bank < 1:
            raise ValueError("cores_per_bank must be >= 1")
        return max(1, int(math.ceil(cores / cores_per_bank)))

    @classmethod
    def dancehall(
        cls,
        total_capacity_mb: float,
        cores: int,
        node: TechnologyNode = NODE_40NM,
        cores_per_bank: int = 4,
    ) -> "NucaLLC":
        """LLC organization for dancehall (crossbar) designs: 1 bank per 4 cores."""
        return cls(
            total_capacity_mb=total_capacity_mb,
            num_banks=cls.banks_for_cores(cores, cores_per_bank),
            node=node,
        )

    @classmethod
    def tiled(cls, total_capacity_mb: float, tiles: int, node: TechnologyNode = NODE_40NM) -> "NucaLLC":
        """LLC organization for tiled designs: one slice per tile."""
        if tiles < 1:
            raise ValueError("tiles must be >= 1")
        return cls(total_capacity_mb=total_capacity_mb, num_banks=tiles, node=node)
