"""Physical model of one LLC bank."""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.cacti import CacheEstimate, SramModel
from repro.technology.node import NODE_40NM, TechnologyNode


@dataclass(frozen=True)
class CacheBank:
    """One physical bank of the last-level cache.

    Attributes:
        capacity_mb: bank capacity in MB.
        associativity: set associativity (the paper uses 16-way LLCs).
        line_bytes: cache line size (64 B throughout the paper).
        mshrs: outstanding-miss registers per bank.
        node: technology node the bank is built in.
    """

    capacity_mb: float
    associativity: int = 16
    line_bytes: int = 64
    mshrs: int = 64
    node: TechnologyNode = NODE_40NM

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")

    @property
    def num_lines(self) -> int:
        """Number of cache lines in the bank."""
        return int(self.capacity_mb * 1024 * 1024) // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets in the bank."""
        return max(1, self.num_lines // self.associativity)

    def estimate(self) -> CacheEstimate:
        """CACTI-like area/latency/energy estimate for this bank."""
        return SramModel(self.node, self.associativity, self.line_bytes).estimate(self.capacity_mb)

    @property
    def access_latency_cycles(self) -> int:
        """Bank access latency (load-to-use), excluding the interconnect."""
        return self.estimate().access_latency_cycles

    @property
    def area_mm2(self) -> float:
        """Bank silicon area."""
        return self.estimate().area_mm2

    @property
    def power_w(self) -> float:
        """Bank power (leakage plus nominal activity)."""
        return SramModel(self.node, self.associativity, self.line_bytes).power_w(self.capacity_mb)
