"""First-level cache configurations (Table 2.2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class L1Config:
    """Configuration of a private L1 cache pair.

    Attributes:
        icache_kb: L1-I capacity (KB).
        dcache_kb: L1-D capacity (KB).
        i_associativity: L1-I associativity.
        d_associativity: L1-D associativity.
        latency_cycles: load-to-use latency.
        ports: number of access ports.
        mshrs: outstanding-miss registers.
        line_bytes: cache line size.
    """

    icache_kb: int
    dcache_kb: int
    i_associativity: int
    d_associativity: int
    latency_cycles: int
    ports: int
    mshrs: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.icache_kb <= 0 or self.dcache_kb <= 0:
            raise ValueError("L1 capacities must be positive")
        if self.latency_cycles < 1:
            raise ValueError("latency_cycles must be >= 1")

    def icache_sets(self) -> int:
        """Number of sets in the L1-I."""
        lines = self.icache_kb * 1024 // self.line_bytes
        return max(1, lines // self.i_associativity)

    def dcache_sets(self) -> int:
        """Number of sets in the L1-D."""
        lines = self.dcache_kb * 1024 // self.line_bytes
        return max(1, lines // self.d_associativity)


#: 32 KB / 2-way / 2-cycle L1s used by the OoO and in-order cores (Table 2.2).
DEFAULT_L1 = L1Config(
    icache_kb=32,
    dcache_kb=32,
    i_associativity=2,
    d_associativity=2,
    latency_cycles=2,
    ports=1,
    mshrs=32,
)

#: 64 KB, 4(8)-way, 3-cycle L1s of the conventional core (Table 2.2).
CONVENTIONAL_L1 = L1Config(
    icache_kb=64,
    dcache_kb=64,
    i_associativity=4,
    d_associativity=8,
    latency_cycles=3,
    ports=2,
    mshrs=32,
)
