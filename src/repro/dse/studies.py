"""Catalogued design-space explorations (``kind="explore"`` specs).

Three ready-made explorations ship with the catalog, each an instance of the
paper's central question -- *which scale-out design should you build?* -- asked
through the :class:`~repro.dse.explorer.Explorer`:

* :func:`explore_pod_40nm` -- the 40 nm pod design space (core model x pod
  size x LLC capacity x pods per chip).  The paper's chosen Scale-Out designs
  (2x16-core/4 MB OoO pods, 3x32-core/2 MB in-order pods) emerge as Pareto
  frontier points of their core families.
* :func:`explore_scaling_20nm` -- the same space across the 40 nm and 20 nm
  nodes, grouped per (node, core family), showing how the frontier moves with
  technology scaling.
* :func:`explore_sla_sizing` -- an SLA-constrained exploration: candidates are
  sized to a QPS target under a p99 SLA and compared on monthly TCO versus
  achieved tail latency; infeasible SLAs are filtered by a metric constraint.

Every function returns a JSON-able payload (``candidates`` / ``frontier`` /
``knees`` / ``stats``) and accepts an ``executor`` so the runtime can fan
candidates out in parallel.  Evaluations are deduplicated through the
content-addressed cache (``evaluation_cache`` overrides where, and
``use_evaluation_cache=False`` forces every candidate through the models;
the CLI's ``--cache-dir`` / ``--no-cache`` flags map onto both).
"""

from __future__ import annotations

from typing import Sequence

from repro.dse.explorer import Explorer
from repro.dse.pareto import Objective
from repro.dse.space import Axis, Constraint, DesignSpace
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor

#: Chip-level objectives shared by the pod and scaling studies.
CHIP_OBJECTIVES = (
    Objective.maximize("performance_density"),
    Objective.maximize("performance_per_watt"),
    Objective.maximize("performance"),
)

#: Budget-feasibility constraint every chip candidate must satisfy.
FITS_BUDGETS = Constraint("fits_chip_budgets", lambda metrics: bool(metrics["fits_budgets"]))


def _pod_space(
    core_types: "Sequence[str]",
    cores_per_pod: "Sequence[int]",
    llc_per_pod_mb: "Sequence[float]",
    pods_per_chip: "Sequence[int]",
    nodes: "Sequence[str]",
    interconnects: "Sequence[str]",
) -> DesignSpace:
    """The chip design space shared by the pod and scaling explorations."""
    return DesignSpace(
        axes=(
            Axis("core_type", tuple(core_types)),
            Axis("cores_per_pod", tuple(cores_per_pod)),
            Axis("llc_per_pod_mb", tuple(llc_per_pod_mb)),
            Axis("pods_per_chip", tuple(pods_per_chip)),
            Axis("node", tuple(nodes)),
            Axis("interconnect", tuple(interconnects)),
        ),
        metric_constraints=(FITS_BUDGETS,),
    )


def explore_pod_40nm(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (8, 16, 32, 64),
    llc_per_pod_mb: "Sequence[float]" = (1.0, 2.0, 4.0, 8.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 3, 4, 6, 8),
    interconnect: str = "crossbar",
    sample: "int | None" = None,
    seed: int = 0,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """The 40 nm pod design space; the paper's chosen designs are frontier points.

    Dominance is evaluated per core family (``group_by="core_type"``), matching
    the paper's separate OoO and in-order design tracks, over performance
    density, performance per watt, and raw chip performance.
    """
    space = _pod_space(
        core_types, cores_per_pod, llc_per_pod_mb, pods_per_chip, ("40nm",), (interconnect,)
    )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by="core_type",
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload


def explore_scaling_20nm(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (16, 32, 64),
    llc_per_pod_mb: "Sequence[float]" = (2.0, 4.0, 8.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 4, 6),
    interconnect: str = "crossbar",
    sample: "int | None" = None,
    seed: int = 0,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """Technology-scaling study: the pod space explored at 40 nm and 20 nm.

    Frontiers are extracted per (node, core family), so the payload shows how
    the Pareto set shifts when logic shrinks 4x while memory interfaces and
    bandwidth budgets stay fixed -- the paper's Section 2.4.1 projection.
    """
    space = _pod_space(
        core_types,
        cores_per_pod,
        llc_per_pod_mb,
        pods_per_chip,
        ("40nm", "20nm"),
        (interconnect,),
    )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by=("node", "core_type"),
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload


def explore_sla_sizing(
    target_qps: float = 1_000_000.0,
    sla_p99_ms: float = 25.0,
    workload: str = "Web Search",
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (16, 32),
    llc_per_pod_mb: "Sequence[float]" = (2.0, 4.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 3),
    memory_gb: "Sequence[int]" = (32, 64),
    interconnect: str = "crossbar",
    sample: "int | None" = None,
    seed: int = 0,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """SLA-constrained sizing exploration: monthly TCO versus achieved p99.

    Every candidate chip is sized to the minimum cluster serving
    ``target_qps`` within the p99 SLA; candidates whose zero-load tail latency
    already violates the SLA (or whose chip breaks the die budgets) are
    filtered by metric constraints.  The frontier trades monthly TCO against
    achieved p99, and the knee is the balanced deployment choice.
    """
    space = DesignSpace(
        axes=(
            Axis("core_type", tuple(core_types)),
            Axis("cores_per_pod", tuple(cores_per_pod)),
            Axis("llc_per_pod_mb", tuple(llc_per_pod_mb)),
            Axis("pods_per_chip", tuple(pods_per_chip)),
            Axis("memory_gb", tuple(memory_gb)),
            Axis("node", ("40nm",)),
            Axis("interconnect", (interconnect,)),
        ),
        metric_constraints=(
            FITS_BUDGETS,
            Constraint("sla_feasible", lambda metrics: bool(metrics["sla_feasible"])),
        ),
    )
    explorer = Explorer(
        space,
        objectives=(
            Objective.minimize("monthly_tco_usd"),
            Objective.minimize("p99_ms"),
        ),
        evaluator="sizing",
        fixed_params={
            "workload": workload,
            "target_qps": target_qps,
            "sla_p99_ms": sla_p99_ms,
        },
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed)
    payload = result.payload()
    payload["space"] = space.describe()
    payload["target_qps"] = target_qps
    payload["sla_p99_ms"] = sla_p99_ms
    payload["workload"] = workload
    return payload
