"""Catalogued design-space explorations (``kind="explore"`` specs).

Four ready-made explorations ship with the catalog, each an instance of the
paper's central question -- *which scale-out design should you build?* -- asked
through the :class:`~repro.dse.explorer.Explorer`:

* :func:`explore_pod_40nm` -- the 40 nm pod design space (core model x pod
  size x LLC capacity x pods per chip).  The paper's chosen Scale-Out designs
  (2x16-core/4 MB OoO pods, 3x32-core/2 MB in-order pods) emerge as Pareto
  frontier points of their core families.
* :func:`explore_scaling_20nm` -- the same space across the 40 nm and 20 nm
  nodes, grouped per (node, core family), showing how the frontier moves with
  technology scaling.
* :func:`explore_sla_sizing` -- an SLA-constrained exploration: candidates are
  sized to a QPS target under a p99 SLA and compared on monthly TCO versus
  achieved tail latency; infeasible SLAs are filtered by a metric constraint.
* :func:`explore_pod_scale` -- the pod space with every axis widened to a
  ~111k-candidate space that only the search strategies can touch; exhaustive
  exploration is rejected outright.
* :func:`explore_node_family` -- the pod space swept across the whole derived
  90nm->7nm technology family (:mod:`repro.technology.family`), grouped per
  (node, core family), showing the frontier marching with every shrink.

Every function returns a JSON-able payload (``candidates`` / ``frontier`` /
``knees`` / ``stats``) and accepts an ``executor`` so the runtime can fan
candidates out in parallel.  The ``strategy`` parameter selects between
exhaustive enumeration and the search drivers of :mod:`repro.dse.search`
(``"ga"`` / ``"halving"``, bounded by ``budget`` unique evaluations; the
CLI's ``--strategy`` / ``--budget`` / ``--seed`` flags map onto these).
Evaluations are deduplicated through the content-addressed cache
(``evaluation_cache`` overrides where, and ``use_evaluation_cache=False``
forces every candidate through the models; the CLI's ``--cache-dir`` /
``--no-cache`` flags map onto both).
"""

from __future__ import annotations

from typing import Sequence

from repro.dse.explorer import Explorer
from repro.dse.pareto import Objective
from repro.dse.space import Axis, Constraint, DesignSpace
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor

#: Chip-level objectives shared by the pod and scaling studies.
CHIP_OBJECTIVES = (
    Objective.maximize("performance_density"),
    Objective.maximize("performance_per_watt"),
    Objective.maximize("performance"),
)

#: Budget-feasibility constraint every chip candidate must satisfy.
FITS_BUDGETS = Constraint("fits_chip_budgets", lambda metrics: bool(metrics["fits_budgets"]))


def _pod_space(
    core_types: "Sequence[str]",
    cores_per_pod: "Sequence[int]",
    llc_per_pod_mb: "Sequence[float]",
    pods_per_chip: "Sequence[int]",
    nodes: "Sequence[str]",
    interconnects: "Sequence[str]",
) -> DesignSpace:
    """The chip design space shared by the pod and scaling explorations."""
    return DesignSpace(
        axes=(
            Axis("core_type", tuple(core_types)),
            Axis("cores_per_pod", tuple(cores_per_pod)),
            Axis("llc_per_pod_mb", tuple(llc_per_pod_mb)),
            Axis("pods_per_chip", tuple(pods_per_chip)),
            Axis("node", tuple(nodes)),
            Axis("interconnect", tuple(interconnects)),
        ),
        metric_constraints=(FITS_BUDGETS,),
    )


def explore_pod_40nm(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (8, 16, 32, 64),
    llc_per_pod_mb: "Sequence[float]" = (1.0, 2.0, 4.0, 8.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 3, 4, 6, 8),
    interconnect: str = "crossbar",
    nodes: "Sequence[str]" = ("40nm",),
    sample: "int | None" = None,
    seed: int = 0,
    strategy: str = "exhaustive",
    budget: "int | None" = None,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """The 40 nm pod design space; the paper's chosen designs are frontier points.

    Dominance is evaluated per core family (``group_by="core_type"``), matching
    the paper's separate OoO and in-order design tracks, over performance
    density, performance per watt, and raw chip performance.  ``nodes``
    retargets the same space to another family node (the CLI's ``--node``).
    """
    space = _pod_space(
        core_types, cores_per_pod, llc_per_pod_mb, pods_per_chip, tuple(nodes), (interconnect,)
    )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by="core_type",
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed, strategy=strategy, budget=budget)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload


def explore_node_family(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (4, 8, 16, 32),
    llc_per_pod_mb: "Sequence[float]" = (1.0, 2.0, 4.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 4),
    interconnect: str = "crossbar",
    nodes: "Sequence[str] | None" = None,
    sample: "int | None" = None,
    seed: int = 0,
    strategy: str = "exhaustive",
    budget: "int | None" = None,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """The pod space swept across the whole derived technology family.

    ``nodes`` defaults to every node of
    :data:`repro.technology.family.DEFAULT_FAMILY` (90nm->7nm, oldest first),
    and frontiers are extracted per (node, core family) -- the ChipSuite
    shape, one frontier per node, showing how the Pareto set and its knee
    march as logic shrinks 30x while the socket and memory interfaces stay
    fixed.  The axes include small pods (4 cores) and small LLCs so the
    90 nm end of the family still has feasible out-of-order points.
    """
    from repro.dse.space import node_axis

    node_values = node_axis(nodes).values
    space = _pod_space(
        core_types, cores_per_pod, llc_per_pod_mb, pods_per_chip, node_values, (interconnect,)
    )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by=("node", "core_type"),
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed, strategy=strategy, budget=budget)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload


def explore_scaling_20nm(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (16, 32, 64),
    llc_per_pod_mb: "Sequence[float]" = (2.0, 4.0, 8.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 4, 6),
    interconnect: str = "crossbar",
    sample: "int | None" = None,
    seed: int = 0,
    strategy: str = "exhaustive",
    budget: "int | None" = None,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """Technology-scaling study: the pod space explored at 40 nm and 20 nm.

    Frontiers are extracted per (node, core family), so the payload shows how
    the Pareto set shifts when logic shrinks 4x while memory interfaces and
    bandwidth budgets stay fixed -- the paper's Section 2.4.1 projection.
    """
    space = _pod_space(
        core_types,
        cores_per_pod,
        llc_per_pod_mb,
        pods_per_chip,
        ("40nm", "20nm"),
        (interconnect,),
    )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by=("node", "core_type"),
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed, strategy=strategy, budget=budget)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload


def explore_sla_sizing(
    target_qps: float = 1_000_000.0,
    sla_p99_ms: float = 25.0,
    workload: str = "Web Search",
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (16, 32),
    llc_per_pod_mb: "Sequence[float]" = (2.0, 4.0),
    pods_per_chip: "Sequence[int]" = (1, 2, 3),
    memory_gb: "Sequence[int]" = (32, 64),
    interconnect: str = "crossbar",
    nodes: "Sequence[str]" = ("40nm",),
    sample: "int | None" = None,
    seed: int = 0,
    strategy: str = "exhaustive",
    budget: "int | None" = None,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """SLA-constrained sizing exploration: monthly TCO versus achieved p99.

    Every candidate chip is sized to the minimum cluster serving
    ``target_qps`` within the p99 SLA; candidates whose zero-load tail latency
    already violates the SLA (or whose chip breaks the die budgets) are
    filtered by metric constraints.  The frontier trades monthly TCO against
    achieved p99, and the knee is the balanced deployment choice.
    """
    space = DesignSpace(
        axes=(
            Axis("core_type", tuple(core_types)),
            Axis("cores_per_pod", tuple(cores_per_pod)),
            Axis("llc_per_pod_mb", tuple(llc_per_pod_mb)),
            Axis("pods_per_chip", tuple(pods_per_chip)),
            Axis("memory_gb", tuple(memory_gb)),
            Axis("node", tuple(nodes)),
            Axis("interconnect", (interconnect,)),
        ),
        metric_constraints=(
            FITS_BUDGETS,
            Constraint("sla_feasible", lambda metrics: bool(metrics["sla_feasible"])),
        ),
    )
    explorer = Explorer(
        space,
        objectives=(
            Objective.minimize("monthly_tco_usd"),
            Objective.minimize("p99_ms"),
        ),
        evaluator="sizing",
        fixed_params={
            "workload": workload,
            "target_qps": target_qps,
            "sla_p99_ms": sla_p99_ms,
        },
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed, strategy=strategy, budget=budget)
    payload = result.payload()
    payload["space"] = space.describe()
    payload["target_qps"] = target_qps
    payload["sla_p99_ms"] = sla_p99_ms
    payload["workload"] = workload
    return payload


def explore_pod_scale(
    core_types: "Sequence[str]" = ("ooo", "inorder"),
    cores_per_pod: "Sequence[int]" = (4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64),
    llc_per_pod_mb: "Sequence[float]" = (
        0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0,
    ),
    pods_per_chip: "Sequence[int]" = tuple(range(1, 17)),
    nodes: "Sequence[str]" = ("40nm", "20nm"),
    interconnects: "Sequence[str]" = ("crossbar", "mesh", "nocout"),
    reference_utilization: "Sequence[float]" = (0.5, 0.65, 0.8, 0.9),
    sample: "int | None" = None,
    seed: int = 0,
    strategy: str = "ga",
    budget: "int | None" = 96,
    use_evaluation_cache: bool = True,
    evaluation_cache: "ResultCache | None" = None,
    executor: "SweepExecutor | None" = None,
) -> "dict[str, object]":
    """The pod space at scale: ~111k candidates, reachable only by search.

    Every axis of :func:`explore_pod_40nm` is widened -- finer core counts and
    LLC capacities, pods up to 16, both technology nodes, three interconnect
    generations, and the utilization the power model assumes -- yielding a
    space (default 110,592 candidates) far past what exhaustive evaluation can
    touch.  The GA (default) or halving driver finds the per-family frontiers
    within ``budget`` model evaluations; ``strategy="exhaustive"`` is rejected
    with a :class:`ValueError` rather than silently melting the machine.
    """
    space = DesignSpace(
        axes=(
            Axis("core_type", tuple(core_types)),
            Axis("cores_per_pod", tuple(cores_per_pod)),
            Axis("llc_per_pod_mb", tuple(llc_per_pod_mb)),
            Axis("pods_per_chip", tuple(pods_per_chip)),
            Axis("node", tuple(nodes)),
            Axis("interconnect", tuple(interconnects)),
            Axis("reference_utilization", tuple(reference_utilization)),
        ),
        metric_constraints=(FITS_BUDGETS,),
    )
    if strategy == "exhaustive":
        raise ValueError(
            f"explore_pod_scale spans {space.size} candidates; exhaustive "
            "exploration is not supported -- pick strategy='ga' or "
            "strategy='halving' with an evaluation budget"
        )
    explorer = Explorer(
        space,
        objectives=CHIP_OBJECTIVES,
        evaluator="chip",
        group_by="core_type",
        executor=executor,
        cache=evaluation_cache,
        use_cache=use_evaluation_cache,
    )
    result = explorer.explore(sample=sample, seed=seed, strategy=strategy, budget=budget)
    payload = result.payload()
    payload["space"] = space.describe()
    return payload
