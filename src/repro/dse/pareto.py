"""Multi-objective Pareto dominance, frontier extraction, and knee selection.

The exploration studies compare candidates on several incommensurable metrics
at once -- performance density, performance per TCO dollar, performance per
watt, p99 latency -- so there is no single "best" design, only the set of
non-dominated ones.  This module provides:

* :class:`Objective` -- a named metric with a sense (maximize or minimize);
* :func:`dominates` -- strict Pareto dominance between two metric rows;
* :func:`pareto_frontier` -- the non-dominated subset, optionally grouped
  (e.g. one frontier per core family, mirroring the paper's separate OoO and
  in-order design tracks);
* :func:`frontier_2d` -- a two-objective frontier sorted for plotting;
* :func:`knee_point` -- the balanced pick on a frontier: the candidate closest
  to the utopia point after per-objective min-max normalization.

All functions operate on plain row dictionaries (``{metric: value, ...}``) and
preserve input order, so serial and parallel exploration produce identical
frontiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

_SENSES = ("max", "min")


@dataclass(frozen=True)
class Objective:
    """A named optimization objective over a metric column.

    Attributes:
        metric: key of the metric in candidate rows.
        sense: ``"max"`` (higher is better) or ``"min"`` (lower is better).
    """

    metric: str
    sense: str = "max"

    def __post_init__(self) -> None:
        if self.sense not in _SENSES:
            raise ValueError(f"sense must be one of {_SENSES}, got {self.sense!r}")

    @classmethod
    def maximize(cls, metric: str) -> "Objective":
        """Objective preferring larger values of ``metric``."""
        return cls(metric, "max")

    @classmethod
    def minimize(cls, metric: str) -> "Objective":
        """Objective preferring smaller values of ``metric``."""
        return cls(metric, "min")

    def oriented(self, row: "Mapping[str, object]") -> float:
        """The metric value oriented so that larger is always better."""
        value = float(row[self.metric])  # type: ignore[arg-type]
        return value if self.sense == "max" else -value

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"max performance_density"``."""
        return f"{self.sense} {self.metric}"


def dominates(
    a: "Mapping[str, object]",
    b: "Mapping[str, object]",
    objectives: "Sequence[Objective]",
) -> bool:
    """Whether row ``a`` Pareto-dominates row ``b``.

    ``a`` dominates ``b`` when it is at least as good on every objective and
    strictly better on at least one.  Rows tied on every objective do not
    dominate each other, so ties survive onto the frontier together.
    """
    if not objectives:
        raise ValueError("dominance needs at least one objective")
    strictly_better = False
    for objective in objectives:
        va, vb = objective.oriented(a), objective.oriented(b)
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


def _group_key(row: "Mapping[str, object]", group_by: "str | Sequence[str] | None"):
    if group_by is None:
        return None
    if isinstance(group_by, str):
        return row[group_by]
    return tuple(row[name] for name in group_by)


def group_label(row: "Mapping[str, object]", group_by: "str | Sequence[str] | None") -> str:
    """JSON-friendly label of a row's group (empty string when ungrouped)."""
    key = _group_key(row, group_by)
    if key is None:
        return ""
    if isinstance(key, tuple):
        return " / ".join(str(part) for part in key)
    return str(key)


def pareto_frontier(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None" = None,
) -> "list[Mapping[str, object]]":
    """The non-dominated subset of ``rows``, in input order.

    Args:
        rows: candidate rows carrying every objective's metric.
        objectives: the objectives defining dominance.
        group_by: optional row key (or keys) partitioning the rows; dominance
            is then evaluated within each partition and the union of the
            per-group frontiers is returned.  The paper compares OoO and
            in-order designs separately, so the pod studies group by core type.

    A single-row input is its own frontier; exact duplicates on all objectives
    all survive (no arbitrary tie-breaking).
    """
    if not rows:
        return []
    groups: "dict[object, list[Mapping[str, object]]]" = {}
    for row in rows:
        groups.setdefault(_group_key(row, group_by), []).append(row)
    frontier_ids = set()
    for members in groups.values():
        for row in members:
            if not any(
                dominates(other, row, objectives)
                for other in members
                if other is not row
            ):
                frontier_ids.add(id(row))
    return [row for row in rows if id(row) in frontier_ids]


def frontier_2d(
    rows: "Sequence[Mapping[str, object]]",
    x: Objective,
    y: Objective,
) -> "list[Mapping[str, object]]":
    """Two-objective frontier sorted by the ``x`` metric (ascending).

    This is the plottable trade-off curve between exactly two objectives
    (e.g. monthly TCO versus p99 latency), extracted regardless of how many
    objectives the full exploration used.
    """
    frontier = pareto_frontier(rows, (x, y))
    return sorted(frontier, key=lambda row: float(row[x.metric]))  # type: ignore[arg-type]


def knee_point(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
) -> "Mapping[str, object] | None":
    """The balanced frontier pick: closest to the utopia point.

    Each objective is min-max normalized over ``rows`` and oriented so 1.0 is
    best; the knee is the row minimizing Euclidean distance to the all-ones
    utopia point.  Degenerate objectives (no spread across the rows) contribute
    nothing to the distance.  Returns ``None`` for an empty input and the row
    itself for a single-row input.  Ties break toward the earlier row, keeping
    the selection deterministic.
    """
    if not rows:
        return None
    if len(rows) == 1:
        return rows[0]
    spans = []
    for objective in objectives:
        values = [objective.oriented(row) for row in rows]
        spans.append((objective, min(values), max(values)))
    best_row, best_distance = None, math.inf
    for row in rows:
        distance = 0.0
        for objective, lo, hi in spans:
            if hi <= lo:
                continue
            normalized = (objective.oriented(row) - lo) / (hi - lo)
            distance += (1.0 - normalized) ** 2
        if distance < best_distance:
            best_row, best_distance = row, distance
    return best_row
