"""Multi-objective Pareto dominance, frontier extraction, and knee selection.

The exploration studies compare candidates on several incommensurable metrics
at once -- performance density, performance per TCO dollar, performance per
watt, p99 latency -- so there is no single "best" design, only the set of
non-dominated ones.  This module provides:

* :class:`Objective` -- a named metric with a sense (maximize or minimize);
* :func:`dominates` -- strict Pareto dominance between two metric rows;
* :func:`pareto_frontier` -- the non-dominated subset, optionally grouped
  (e.g. one frontier per core family, mirroring the paper's separate OoO and
  in-order design tracks);
* :func:`frontier_2d` -- a two-objective frontier sorted for plotting;
* :func:`knee_point` -- the balanced pick on a frontier: the candidate closest
  to the utopia point after per-objective min-max normalization.

All functions operate on plain row dictionaries (``{metric: value, ...}``) and
preserve input order, so serial and parallel exploration produce identical
frontiers.

Frontier extraction has two interchangeable engines: the historical pure-Python
O(n^2) dominance loop (:func:`pareto_frontier_reference`, kept as the
equality-checked reference) and a vectorized numpy kernel
(:func:`pareto_numpy` over :func:`pareto_mask_numpy`) that reduces the
objective matrix with broadcast comparisons and handles million-point fronts.
:func:`pareto_frontier` dispatches between them (``method="auto"`` uses the
kernel wherever the objective values are finite floats) and both engines are
held to identical outputs by ``tests/test_dse_search.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

_SENSES = ("max", "min")

_METHODS = ("auto", "numpy", "reference")


@dataclass(frozen=True)
class Objective:
    """A named optimization objective over a metric column.

    Attributes:
        metric: key of the metric in candidate rows.
        sense: ``"max"`` (higher is better) or ``"min"`` (lower is better).
    """

    metric: str
    sense: str = "max"

    def __post_init__(self) -> None:
        if self.sense not in _SENSES:
            raise ValueError(f"sense must be one of {_SENSES}, got {self.sense!r}")

    @classmethod
    def maximize(cls, metric: str) -> "Objective":
        """Objective preferring larger values of ``metric``."""
        return cls(metric, "max")

    @classmethod
    def minimize(cls, metric: str) -> "Objective":
        """Objective preferring smaller values of ``metric``."""
        return cls(metric, "min")

    def oriented(self, row: "Mapping[str, object]") -> float:
        """The metric value oriented so that larger is always better."""
        value = float(row[self.metric])  # type: ignore[arg-type]
        return value if self.sense == "max" else -value

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"max performance_density"``."""
        return f"{self.sense} {self.metric}"


def dominates(
    a: "Mapping[str, object]",
    b: "Mapping[str, object]",
    objectives: "Sequence[Objective]",
) -> bool:
    """Whether row ``a`` Pareto-dominates row ``b``.

    ``a`` dominates ``b`` when it is at least as good on every objective and
    strictly better on at least one.  Rows tied on every objective do not
    dominate each other, so ties survive onto the frontier together.
    """
    if not objectives:
        raise ValueError("dominance needs at least one objective")
    strictly_better = False
    for objective in objectives:
        va, vb = objective.oriented(a), objective.oriented(b)
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


def _group_key(row: "Mapping[str, object]", group_by: "str | Sequence[str] | None"):
    if group_by is None:
        return None
    if isinstance(group_by, str):
        return row[group_by]
    return tuple(row[name] for name in group_by)


def group_label(row: "Mapping[str, object]", group_by: "str | Sequence[str] | None") -> str:
    """JSON-friendly label of a row's group (empty string when ungrouped)."""
    key = _group_key(row, group_by)
    if key is None:
        return ""
    if isinstance(key, tuple):
        return " / ".join(str(part) for part in key)
    return str(key)


def pareto_frontier_reference(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None" = None,
) -> "list[Mapping[str, object]]":
    """The non-dominated subset via the pure-Python O(n^2) dominance loop.

    This is the historical implementation, retained verbatim as the
    equality-checked reference for the vectorized kernel: every semantic the
    fast path must preserve (tie survival, input-order output, per-group
    dominance, single-member groups never converting values) is defined here.
    """
    if not rows:
        return []
    groups: "dict[object, list[Mapping[str, object]]]" = {}
    for row in rows:
        groups.setdefault(_group_key(row, group_by), []).append(row)
    frontier_ids = set()
    for members in groups.values():
        for row in members:
            if not any(
                dominates(other, row, objectives)
                for other in members
                if other is not row
            ):
                frontier_ids.add(id(row))
    return [row for row in rows if id(row) in frontier_ids]


def _reference_group_mask(
    members: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
) -> "list[bool]":
    """Per-member frontier mask of one group via the reference dominance loop."""
    return [
        not any(
            dominates(other, row, objectives)
            for other in members
            if other is not row
        )
        for row in members
    ]


def pareto_mask_numpy(matrix: "np.ndarray") -> "np.ndarray":
    """Boolean non-dominated mask over an oriented (n x k) objective matrix.

    The matrix must already be oriented larger-is-better on every column (the
    caller negates ``min`` objectives) and contain only finite float values.
    The kernel first collapses exact duplicate rows with ``np.unique`` so that
    ties share one verdict (ties never dominate each other and survive
    together), then runs a broadcast skyline sweep: unique rows are visited in
    descending lexicographic order and each surviving pivot eliminates, in one
    vectorized comparison, every row it weakly dominates.  The cost is
    O(u * f * k) for u unique rows and f frontier points -- in practice tens of
    broadcast passes instead of n^2 Python-level comparisons.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D objective matrix, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if matrix.shape[1] == 0:
        raise ValueError("dominance needs at least one objective")
    if not np.isfinite(matrix).all():
        raise ValueError(
            "pareto_mask_numpy requires finite objective values; "
            "use the reference path for rows with NaN or infinity"
        )
    unique, inverse = np.unique(matrix, axis=0, return_inverse=True)
    # Descending lexicographic order: strong candidates come first, so early
    # pivots eliminate large swaths of the pool in few broadcast passes.
    costs = unique[::-1]
    survivors = np.arange(costs.shape[0])
    pivot = 0
    while pivot < costs.shape[0]:
        keep = (costs > costs[pivot]).any(axis=1)
        keep[pivot] = True  # a pivot never eliminates itself
        survivors = survivors[keep]
        costs = costs[keep]
        pivot = int(keep[:pivot].sum()) + 1
    unique_mask = np.zeros(unique.shape[0], dtype=bool)
    unique_mask[unique.shape[0] - 1 - survivors] = True
    return unique_mask[inverse]


def _oriented_matrix(
    rows: "Sequence[Mapping[str, object]]",
    positions: "Sequence[int]",
    objectives: "Sequence[Objective]",
) -> "np.ndarray":
    """Oriented (larger-is-better) objective matrix for the selected rows."""
    columns = []
    for objective in objectives:
        column = np.fromiter(
            (float(rows[pos][objective.metric]) for pos in positions),  # type: ignore[arg-type]
            dtype=np.float64,
            count=len(positions),
        )
        if objective.sense == "min":
            column = -column
        columns.append(column)
    return np.column_stack(columns)


def _frontier_mask(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None",
    method: str,
) -> "list[bool]":
    """Per-row frontier membership, dispatching kernel vs reference per group."""
    groups: "dict[object, list[int]]" = {}
    for position, row in enumerate(rows):
        groups.setdefault(_group_key(row, group_by), []).append(position)
    mask = [False] * len(rows)
    for positions in groups.values():
        if len(positions) == 1:
            # The reference loop never evaluates dominance (or converts
            # metric values) for a lone group member; preserve that exactly.
            mask[positions[0]] = True
            continue
        if not objectives:
            raise ValueError("dominance needs at least one objective")
        if method == "reference":
            group_mask = _reference_group_mask([rows[p] for p in positions], objectives)
        else:
            matrix = _oriented_matrix(rows, positions, objectives)
            if np.isfinite(matrix).all():
                group_mask = pareto_mask_numpy(matrix)
            elif method == "numpy":
                raise ValueError(
                    "non-finite objective values cannot use method='numpy'; "
                    "use method='auto' or 'reference'"
                )
            else:  # auto: NaN/inf semantics are defined by the reference loop
                group_mask = _reference_group_mask(
                    [rows[p] for p in positions], objectives
                )
        for position, on_front in zip(positions, group_mask):
            mask[position] = bool(on_front)
    return mask


def pareto_numpy(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None" = None,
) -> "list[Mapping[str, object]]":
    """The non-dominated subset via the vectorized numpy kernel.

    Semantically identical to :func:`pareto_frontier_reference` for finite
    objective values (the equivalence is property-tested); raises
    ``ValueError`` when a row carries NaN or infinity, where only the
    reference loop's comparison semantics are defined.
    """
    if not objectives:
        raise ValueError("dominance needs at least one objective")
    if not rows:
        return []
    mask = _frontier_mask(rows, objectives, group_by, method="numpy")
    return [row for row, on_front in zip(rows, mask) if on_front]


def pareto_frontier(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None" = None,
    method: str = "auto",
) -> "list[Mapping[str, object]]":
    """The non-dominated subset of ``rows``, in input order.

    Args:
        rows: candidate rows carrying every objective's metric.
        objectives: the objectives defining dominance.
        group_by: optional row key (or keys) partitioning the rows; dominance
            is then evaluated within each partition and the union of the
            per-group frontiers is returned.  The paper compares OoO and
            in-order designs separately, so the pod studies group by core type.
        method: ``"auto"`` (default) runs the vectorized numpy kernel and
            falls back to the pure-Python loop for any group containing
            non-finite values; ``"numpy"`` forces the kernel (raising on
            non-finite values); ``"reference"`` forces the O(n^2) loop.

    A single-row input is its own frontier; exact duplicates on all objectives
    all survive (no arbitrary tie-breaking).
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if not objectives:
        raise ValueError("dominance needs at least one objective")
    if not rows:
        return []
    mask = _frontier_mask(rows, objectives, group_by, method)
    return [row for row, on_front in zip(rows, mask) if on_front]


def frontier_2d(
    rows: "Sequence[Mapping[str, object]]",
    x: Objective,
    y: Objective,
) -> "list[Mapping[str, object]]":
    """Two-objective frontier sorted by the ``x`` metric (ascending).

    This is the plottable trade-off curve between exactly two objectives
    (e.g. monthly TCO versus p99 latency), extracted regardless of how many
    objectives the full exploration used.  Rows missing either metric, or
    carrying a value that cannot be cast to ``float``, raise a ``KeyError`` /
    ``TypeError`` naming the metric and the offending row's index (instead of
    the bare cast failure the sort key used to surface).
    """
    keys: "dict[int, float]" = {}
    for index, row in enumerate(rows):
        for objective in (x, y):
            if objective.metric not in row:
                raise KeyError(
                    f"frontier_2d: row {index} has no {objective.metric!r} "
                    f"metric (available: {sorted(row)})"
                )
            value = row[objective.metric]
            try:
                as_float = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise TypeError(
                    f"frontier_2d: row {index} metric {objective.metric!r} "
                    f"value {value!r} is not castable to float"
                ) from exc
            if objective is x:
                keys[id(row)] = as_float
    frontier = pareto_frontier(rows, (x, y))
    return sorted(frontier, key=lambda row: keys[id(row)])


def knee_point(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
) -> "Mapping[str, object] | None":
    """The balanced frontier pick: closest to the utopia point.

    Each objective is min-max normalized over ``rows`` and oriented so 1.0 is
    best; the knee is the row minimizing Euclidean distance to the all-ones
    utopia point.  Degenerate objectives (no spread across the rows) contribute
    nothing to the distance.  Returns ``None`` for an empty input and the row
    itself for a single-row input.  Ties break toward the earlier row, keeping
    the selection deterministic.
    """
    if not rows:
        return None
    if len(rows) == 1:
        return rows[0]
    spans = []
    for objective in objectives:
        values = [objective.oriented(row) for row in rows]
        spans.append((objective, min(values), max(values)))
    best_row, best_distance = None, math.inf
    for row in rows:
        distance = 0.0
        for objective, lo, hi in spans:
            if hi <= lo:
                continue
            normalized = (objective.oriented(row) - lo) / (hi - lo)
            distance += (1.0 - normalized) ** 2
        if distance < best_distance:
            best_row, best_distance = row, distance
    return best_row
