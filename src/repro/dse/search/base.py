"""Shared machinery for the search drivers: outcomes and candidate ranking.

Both search drivers need the same two ingredients on top of the design space:
a container for what a search evaluated (:class:`SearchOutcome`, which the
:class:`~repro.dse.explorer.Explorer` turns into a regular exploration result)
and a deterministic total order over partially-evaluated candidate pools
(:func:`rank_rows`), built from Pareto rank peeling within frontier groups
plus knee-style utopia distance as the tiebreak.  Ranking is pure and
index-stable, so serial and parallel searches order candidates identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dse.pareto import Objective, _group_key, pareto_frontier
from repro.dse.space import Constraint


@dataclass
class SearchOutcome:
    """Everything one search driver evaluated, in first-evaluation order.

    Attributes:
        candidates: evaluated candidate dictionaries (axis values only).
        metrics: evaluator metric dictionaries aligned with ``candidates``.
        cache_hits: how many evaluations the result cache served.
        stats: driver-specific accounting merged into the exploration stats.
    """

    candidates: "list[dict[str, object]]"
    metrics: "list[dict[str, object]]"
    cache_hits: int = 0
    stats: "dict[str, object]" = field(default_factory=dict)


def is_rankable(
    row: "Mapping[str, object]",
    objectives: "Sequence[Objective]",
    metric_constraints: "Sequence[Constraint]",
) -> bool:
    """Whether a row can participate in dominance ranking.

    A row is rankable when it passes every metric constraint and carries a
    finite float under every objective metric; anything else (constraint
    violations, ``None`` metrics from infeasible sizings) ranks behind all
    rankable rows.
    """
    try:
        if not all(constraint.accepts(row) for constraint in metric_constraints):
            return False
        return all(math.isfinite(objective.oriented(row)) for objective in objectives)
    except (KeyError, TypeError, ValueError):
        return False


def rank_rows(
    rows: "Sequence[Mapping[str, object]]",
    objectives: "Sequence[Objective]",
    group_by: "str | Sequence[str] | None",
    metric_constraints: "Sequence[Constraint]" = (),
) -> "list[tuple[int, int, float, int]]":
    """Deterministic fitness tuple per row; lower sorts better.

    The tuple is ``(infeasible, pareto_rank, utopia_distance, index)``:

    * ``infeasible`` -- 0 for rankable rows (see :func:`is_rankable`), 1 else;
    * ``pareto_rank`` -- non-dominated sorting depth within the row's frontier
      group (0 = on the group frontier, 1 = frontier after peeling it, ...);
    * ``utopia_distance`` -- knee-style distance: objectives min-max
      normalized over the group's rankable rows, Euclidean distance to the
      all-ones utopia point (degenerate objectives contribute nothing);
    * ``index`` -- the row's input position, making the order total.
    """
    fitness: "list[tuple[int, int, float, int]]" = [
        (1, 0, math.inf, index) for index in range(len(rows))
    ]
    groups: "dict[object, list[int]]" = {}
    for index, row in enumerate(rows):
        if is_rankable(row, objectives, metric_constraints):
            groups.setdefault(_group_key(row, group_by), []).append(index)

    for members in groups.values():
        spans = []
        for objective in objectives:
            values = [objective.oriented(rows[index]) for index in members]
            spans.append((objective, min(values), max(values)))

        remaining = list(members)
        rank = 0
        while remaining:
            frontier = pareto_frontier([rows[index] for index in remaining], objectives)
            frontier_ids = {id(row) for row in frontier}
            next_remaining = []
            for index in remaining:
                if id(rows[index]) not in frontier_ids:
                    next_remaining.append(index)
                    continue
                distance = 0.0
                for objective, lo, hi in spans:
                    if hi <= lo:
                        continue
                    normalized = (objective.oriented(rows[index]) - lo) / (hi - lo)
                    distance += (1.0 - normalized) ** 2
                fitness[index] = (0, rank, distance, index)
            remaining = next_remaining
            rank += 1
    return fitness
