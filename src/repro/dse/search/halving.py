"""Successive-halving search: proxy-screen a pool, fully evaluate survivors.

The driver draws a seeded candidate pool several times larger than the
evaluation budget, ranks it with the cheap analytic proxies of
:mod:`repro.dse.search.proxy` (no model evaluations, no cache traffic), and
repeatedly keeps the best ``1/eta`` fraction -- re-scoring each rung at a
higher proxy fidelity (more suite workloads) -- until at most ``budget``
candidates remain.  Only those survivors are promoted to the full evaluator
through the explorer's executor and content-addressed cache.

Rung selection is frontier-group aware: the keep quota is apportioned across
the explorer's frontier groups (e.g. the OoO and in-order core families)
proportionally to their pool share, so halving never collapses onto a single
family before the full models get to judge.  Everything is deterministic in
``seed``: the pool, the rung sizes, the proxy ranking, and the survivor
order, whether evaluations then fan out serially or to a process pool.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.dse.pareto import _group_key
from repro.dse.search.base import SearchOutcome, rank_rows
from repro.dse.search.proxy import proxy_fidelity_limit, run_proxy

if TYPE_CHECKING:  # pragma: no cover - type-only import avoids a module cycle
    from repro.dse.explorer import Explorer


class SuccessiveHalving:
    """Runs one proxy-screened halving search for the explorer.

    Args:
        explorer: the configured :class:`~repro.dse.explorer.Explorer`; the
            driver reuses its space, objectives, grouping, executor, and cache.
        budget: maximum number of candidates promoted to full evaluation.
        seed: seed of the pool draw (the rest of the run is deterministic).
        eta: keep fraction per rung (each rung keeps ``1/eta`` of the pool).
        pool_size: proxy-screened pool size; defaults to ``budget * eta**2``
            (two rungs), capped at the space's feasible candidate count.
    """

    def __init__(
        self,
        explorer: "Explorer",
        budget: int,
        seed: int = 0,
        eta: int = 4,
        pool_size: "int | None" = None,
    ):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if pool_size is not None and pool_size < budget:
            raise ValueError("pool_size must be >= budget")
        self.explorer = explorer
        self.space = explorer.space
        self.budget = budget
        self.seed = seed
        self.eta = eta
        self.pool_size = pool_size

    def _keep_quotas(
        self, group_sizes: "list[int]", total: int
    ) -> "list[int]":
        """Per-group keep counts summing to ``min(total, pool)``, >= 1 each.

        Quotas are proportional to group pool share, with largest-remainder
        rounding; ties and trims resolve by group order, keeping allocation
        deterministic.
        """
        pool = sum(group_sizes)
        total = min(total, pool)
        if len(group_sizes) >= total:
            # Not enough quota for every group: earlier groups win one slot each.
            return [1 if index < total else 0 for index in range(len(group_sizes))]
        raw = [total * size / pool for size in group_sizes]
        quotas = [max(1, math.floor(value)) for value in raw]
        remainders = sorted(
            range(len(raw)),
            key=lambda index: (-(raw[index] - math.floor(raw[index])), index),
        )
        position = 0
        while sum(quotas) < total:
            index = remainders[position % len(remainders)]
            if quotas[index] < group_sizes[index]:
                quotas[index] += 1
            position += 1
        largest = sorted(range(len(quotas)), key=lambda index: (-quotas[index], index))
        position = 0
        while sum(quotas) > total:
            index = largest[position % len(quotas)]
            if quotas[index] > 1:
                quotas[index] -= 1
            position += 1
        return quotas

    def _select_rung(
        self,
        pool: "list[dict[str, object]]",
        proxy_rows: "list[dict[str, object]]",
        keep: int,
    ) -> "list[int]":
        """Indices (in pool order) of the candidates surviving one rung."""
        fitness = rank_rows(
            proxy_rows,
            self.explorer.objectives,
            self.explorer.group_by,
            self.space.metric_constraints,
        )
        groups: "dict[object, list[int]]" = {}
        for index, row in enumerate(proxy_rows):
            groups.setdefault(_group_key(row, self.explorer.group_by), []).append(index)
        members = list(groups.values())
        quotas = self._keep_quotas([len(m) for m in members], keep)
        survivors: "list[int]" = []
        for quota, indices in zip(quotas, members):
            ordered = sorted(indices, key=lambda index: fitness[index])
            survivors.extend(ordered[:quota])
        return sorted(survivors)

    def run(self) -> SearchOutcome:
        """Screen the pool down to the budget, then fully evaluate survivors."""
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        feasible = self.space.feasible_count()
        budget = min(self.budget, feasible)
        pool_size = self.pool_size or budget * self.eta**2
        pool_size = max(budget, min(pool_size, feasible))
        pool = self.space.sample(pool_size, self.seed)

        sizes: "list[int]" = []
        size = pool_size
        while size > budget:
            size = max(budget, math.ceil(size / self.eta))
            sizes.append(size)

        fidelity_limit = proxy_fidelity_limit(
            {**self.explorer.fixed_params, **pool[0]}
        )
        survivors = pool
        proxy_evaluations = 0
        for rung, keep in enumerate(sizes):
            fidelity = max(1, math.ceil(fidelity_limit * (rung + 1) / len(sizes)))
            with tracer.span(
                "search.rung",
                category="search",
                rung=rung,
                pool=len(survivors),
                keep=keep,
                fidelity=fidelity,
            ):
                proxy_rows = []
                for candidate in survivors:
                    params = {**self.explorer.fixed_params, **candidate}
                    proxy_rows.append(
                        {**candidate, **run_proxy(self.explorer.evaluator, params, fidelity)}
                    )
                proxy_evaluations += len(survivors)
                kept = self._select_rung(survivors, proxy_rows, keep)
                survivors = [survivors[index] for index in kept]

        with tracer.span(
            "search.promote", category="search", survivors=len(survivors)
        ):
            metrics, cache_hits = self.explorer._evaluate(survivors)  # noqa: SLF001
        return SearchOutcome(
            candidates=survivors,
            metrics=metrics,
            cache_hits=cache_hits,
            stats={
                "strategy": "halving",
                "budget": self.budget,
                "seed": self.seed,
                "eta": self.eta,
                "pool": pool_size,
                "rungs": sizes,
                "proxy_evaluations": proxy_evaluations,
            },
        )
