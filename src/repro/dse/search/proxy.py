"""Cheap analytic screening proxies for the successive-halving driver.

A proxy approximates a registered evaluator's metrics at a fraction of its
cost, so the halving driver can rank a large candidate pool without running
the full models.  Fidelity is the number of suite workloads the analytic
estimate aggregates over (1 = cheapest, ``len(suite)`` = the evaluator's own
workload set); higher-fidelity rungs re-rank the survivors more accurately.

The proxies deliberately skip the expensive stages of the real evaluators --
the chip proxy drops the datacenter TCO model and the reference M/M/k queue,
and the sizing proxy replaces the minimum-server binary search with a
fixed-utilization point sizing -- while emitting metric dictionaries under the
*same keys* the objectives and metric constraints reference, so the dominance
machinery ranks proxy rows exactly as it ranks real rows.  Proxy metrics never
enter the evaluation cache and never appear in exploration results; they only
order candidates between rungs.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.dse.evaluate import EVALUATORS, _build_chip, suite_for
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.service.calibration import calibrate_chip
from repro.service.sizing import _EXP_P99_FACTOR, MmkQueue
from repro.tco.datacenter import DatacenterDesign
from repro.workloads.suite import WorkloadSuite

#: Per-server utilization the sizing proxy points at instead of searching.
_PROXY_UTILIZATION = 0.85


def _partial_suite(params: "Mapping[str, object]", fidelity: int) -> WorkloadSuite:
    """The first ``fidelity`` workloads of the candidate's suite (at least one)."""
    suite = suite_for(str(params.get("suite", "default")))
    fidelity = max(1, min(int(fidelity), len(suite)))
    return WorkloadSuite(suite.workloads[:fidelity])


def proxy_fidelity_limit(params: "Mapping[str, object]") -> int:
    """Highest meaningful fidelity for a candidate (its suite's workload count)."""
    return len(suite_for(str(params.get("suite", "default"))))


def chip_proxy(params: "Mapping[str, object]", fidelity: int) -> "dict[str, object]":
    """Analytic approximation of ``evaluate_chip_candidate``.

    Builds the candidate chip against a ``fidelity``-workload sub-suite and
    reports performance, density, perf/watt, and budget feasibility; the TCO
    and reference-latency stages of the full evaluator are skipped entirely.
    """
    model = AnalyticPerformanceModel()
    suite = _partial_suite(params, fidelity)
    chip = _build_chip(params, suite, model)
    performance = chip.performance(model, suite)
    return {
        "performance": performance,
        "performance_density": performance / chip.die_area_mm2,
        "performance_per_watt": performance / chip.power_w,
        "fits_budgets": chip.satisfies(chip.node.constraints),
    }


def sizing_proxy(params: "Mapping[str, object]", fidelity: int) -> "dict[str, object]":
    """Analytic approximation of ``evaluate_sizing_candidate``.

    Replaces the SLA-driven minimum-server search with a closed-form point
    sizing: servers for a fixed per-unit utilization, one Erlang-C p99 check,
    and one closed-form monthly-TCO evaluation.  SLA feasibility is judged
    from the zero-load p99 (the same condition the real sizer raises on).
    """
    model = AnalyticPerformanceModel()
    suite = _partial_suite(params, fidelity)
    chip = _build_chip(params, suite, model)
    full_suite = suite_for(str(params.get("suite", "default")))
    workload = full_suite[str(params.get("workload", "Web Search"))]
    target_qps = float(params["target_qps"])  # type: ignore[arg-type]
    sla_p99_s = float(params["sla_p99_ms"]) / 1e3  # type: ignore[arg-type]
    memory_gb = int(params.get("memory_gb", 64))  # type: ignore[arg-type]

    metrics: "dict[str, object]" = {
        "fits_budgets": chip.satisfies(chip.node.constraints),
    }
    capacity = calibrate_chip(chip, workload, model)
    zero_load_p99 = _EXP_P99_FACTOR / capacity.unit_rate_rps
    if zero_load_p99 > sla_p99_s:
        metrics.update(sla_feasible=False, monthly_tco_usd=None, p99_ms=None)
        return metrics

    datacenter = DatacenterDesign(model=model, suite=suite)
    server = datacenter.build_server(chip, memory_gb=memory_gb)
    units = capacity.units_per_chip * server.sockets
    per_server_capacity = units * capacity.unit_rate_rps
    servers = max(1, math.ceil(target_qps / (per_server_capacity * _PROXY_UTILIZATION)))
    queue = MmkQueue(
        servers=units,
        service_rate_rps=capacity.unit_rate_rps,
        arrival_rate_rps=target_qps / servers,
    )
    p99_s = queue.latency_quantile(0.99)
    racks = max(1, math.ceil(servers / server.servers_per_rack()))
    price = datacenter.pricing.price(chip.name, chip.die_area_mm2)
    tco = datacenter.tco_model.monthly_tco(server, servers, racks, price)
    metrics.update(
        sla_feasible=bool(math.isfinite(p99_s) and p99_s <= sla_p99_s * 4.0),
        monthly_tco_usd=tco.total,
        p99_ms=p99_s * 1e3 if math.isfinite(p99_s) else None,
    )
    return metrics


#: Proxy per evaluator name; keys mirror :data:`repro.dse.evaluate.EVALUATORS`.
PROXIES = {
    "chip": chip_proxy,
    "sizing": sizing_proxy,
}

assert set(PROXIES) == set(EVALUATORS), "every evaluator needs a screening proxy"


def run_proxy(
    name: str, params: "Mapping[str, object]", fidelity: int
) -> "dict[str, object]":
    """Dispatch one candidate to the named evaluator's screening proxy."""
    try:
        proxy = PROXIES[name]
    except KeyError:
        raise KeyError(f"no screening proxy for {name!r}; known: {sorted(PROXIES)}") from None
    return proxy(params, fidelity)
