"""Seeded genetic-algorithm search over a :class:`~repro.dse.space.DesignSpace`.

The driver evolves genomes (one axis-value index per axis) toward the Pareto
frontier of the explorer's objectives:

* the initial population is a seeded :meth:`~repro.dse.space.DesignSpace.sample`
  of the constrained space;
* selection is size-``k`` tournament on the deterministic fitness of
  :func:`~repro.dse.search.base.rank_rows` (feasibility, then Pareto rank,
  then knee distance);
* variation is uniform per-axis crossover plus per-axis point mutation, with
  parameter-constraint repair by re-mutation;
* the top ``elite`` genomes survive each generation unchanged;
* a final knee-refinement phase spends the reserved tail of the budget
  (:attr:`GaConfig.knee_refine_fraction`) evaluating the proxy-ranked
  Hamming-<=2 neighborhood of each group's knee pick, pinning the reported
  knees onto the space's true knee designs.

Every generation's new genomes are evaluated in one batch through the
explorer's executor (order-preserving, so serial and parallel runs are
bit-identical) and deduplicated through the explorer's content-addressed
result cache -- a genome revisited within a run, across runs, or across
processes costs zero model evaluations.  The evaluation *budget* counts
unique genomes submitted for evaluation, so the search trajectory is
independent of cache warmth: a warm-cache re-run walks the exact same
genomes and reports ``evaluated == 0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dse.pareto import _group_key, knee_point, pareto_frontier
from repro.dse.search.base import SearchOutcome, rank_rows
from repro.dse.search.proxy import proxy_fidelity_limit, run_proxy

if TYPE_CHECKING:  # pragma: no cover - type-only import avoids a module cycle
    from repro.dse.explorer import Explorer


@dataclass(frozen=True)
class GaConfig:
    """Tunables of the genetic search (defaults suit 10^2..10^6-point spaces).

    Attributes:
        population_size: genomes per generation.
        elite: top genomes copied unchanged into the next generation.
        tournament_size: competitors per selection tournament.
        crossover_rate: probability a child is crossed over (else cloned).
        mutation_rate: per-axis probability of a point mutation.
        max_generations: hard generation cap.
        stall_generations: stop after this many generations with no new genome.
        repair_attempts: re-mutation tries to satisfy parameter constraints.
        knee_refine_fraction: budget share reserved for the knee-refinement
            phase.  Each refinement round ranks the unevaluated Hamming-<=2
            neighborhood of every group's current knee pick on the analytic
            proxy surface (see :mod:`repro.dse.search.proxy`) and evaluates
            the proxy-best few for real; repeated rounds walk the knee pick
            onto the space's true knee and evaluate the dominators that
            eliminate spurious frontier members.  0 disables the phase.
    """

    population_size: int = 16
    elite: int = 2
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    max_generations: int = 64
    stall_generations: int = 4
    repair_attempts: int = 32
    knee_refine_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0 <= self.elite < self.population_size:
            raise ValueError("elite must be in [0, population_size)")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= self.knee_refine_fraction < 1.0:
            raise ValueError("knee_refine_fraction must be in [0, 1)")


class GeneticSearch:
    """Runs one seeded GA over the explorer's space, objectives, and cache.

    Args:
        explorer: the configured :class:`~repro.dse.explorer.Explorer`; the
            driver reuses its space, objectives, grouping, executor, and cache.
        budget: maximum number of unique genomes to evaluate.
        seed: RNG seed; one :class:`random.Random` drives sampling, selection,
            and variation, so the whole trajectory replays from the seed.
        config: optional :class:`GaConfig` overriding the defaults.
    """

    def __init__(
        self,
        explorer: "Explorer",
        budget: int,
        seed: int = 0,
        config: "GaConfig | None" = None,
    ):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.explorer = explorer
        self.space = explorer.space
        self.budget = budget
        self.seed = seed
        self.config = config or GaConfig()
        self.rng = random.Random(seed)
        self._axes = self.space.axes
        self._index_of = [
            {repr(value): index for index, value in enumerate(axis.values)}
            for axis in self._axes
        ]

    # ------------------------------------------------------------- genome ops
    def _genome_of(self, candidate: "dict[str, object]") -> "tuple[int, ...]":
        return tuple(
            self._index_of[position][repr(candidate[axis.name])]
            for position, axis in enumerate(self._axes)
        )

    def _candidate_of(self, genome: "tuple[int, ...]") -> "dict[str, object]":
        return {
            axis.name: axis.values[index]
            for axis, index in zip(self._axes, genome)
        }

    def _satisfies_constraints(self, genome: "tuple[int, ...]") -> bool:
        candidate = self._candidate_of(genome)
        return all(c.accepts(candidate) for c in self.space.constraints)

    def _mutate(self, genome: "tuple[int, ...]") -> "tuple[int, ...]":
        mutated = list(genome)
        for position, axis in enumerate(self._axes):
            if len(axis) > 1 and self.rng.random() < self.config.mutation_rate:
                shifted = self.rng.randrange(len(axis) - 1)
                if shifted >= mutated[position]:
                    shifted += 1  # pick uniformly among the *other* values
                mutated[position] = shifted
        return tuple(mutated)

    def _crossover(
        self, first: "tuple[int, ...]", second: "tuple[int, ...]"
    ) -> "tuple[int, ...]":
        return tuple(
            a if self.rng.random() < 0.5 else b for a, b in zip(first, second)
        )

    def _make_child(
        self, first: "tuple[int, ...]", second: "tuple[int, ...]"
    ) -> "tuple[int, ...]":
        if self.rng.random() < self.config.crossover_rate:
            child = self._crossover(first, second)
        else:
            child = first
        child = self._mutate(child)
        for _ in range(self.config.repair_attempts):
            if self._satisfies_constraints(child):
                return child
            child = self._mutate(child)
        return first  # parents always satisfy the parameter constraints

    def _tournament(
        self, population: "list[tuple[int, ...]]", fitness: "dict[tuple[int, ...], object]"
    ) -> "tuple[int, ...]":
        size = min(self.config.tournament_size, len(population))
        contenders = [
            population[self.rng.randrange(len(population))] for _ in range(size)
        ]
        return min(contenders, key=lambda genome: fitness[genome])  # type: ignore[arg-type]

    # ------------------------------------------------------------ refinement
    def _neighborhood(self, genome: "tuple[int, ...]") -> "list[tuple[int, ...]]":
        """All genomes within Hamming distance 2 of ``genome``, in stable order.

        Distance 2 matters: Pareto-adjacent chip designs often trade one axis
        against another at a constant total (halve the pods, double the cores
        per pod), so the nearest frontier neighbor is frequently two single-axis
        steps away.
        """
        axes = self._axes
        neighbors: "list[tuple[int, ...]]" = []
        seen = {genome}
        for first_pos in range(len(axes)):
            for first_val in range(len(axes[first_pos])):
                if first_val == genome[first_pos]:
                    continue
                step = genome[:first_pos] + (first_val,) + genome[first_pos + 1:]
                if step not in seen:
                    seen.add(step)
                    neighbors.append(step)
                for second_pos in range(first_pos + 1, len(axes)):
                    for second_val in range(len(axes[second_pos])):
                        if second_val == step[second_pos]:
                            continue
                        double = (
                            step[:second_pos] + (second_val,) + step[second_pos + 1:]
                        )
                        if double not in seen:
                            seen.add(double)
                            neighbors.append(double)
        return neighbors

    def _current_knees(
        self,
        order: "list[tuple[int, ...]]",
        rows_by_genome: "dict[tuple[int, ...], dict[str, object]]",
    ) -> "list[tuple[int, ...]]":
        """The genome each frontier group's knee pick currently points at.

        Mirrors the explorer's result assembly (feasible rows, grouped
        frontier, knee per group), so refinement targets exactly the picks the
        final exploration result will report.
        """
        rows = []
        genome_of_row: "dict[int, tuple[int, ...]]" = {}
        for genome in order:
            row = rows_by_genome[genome]
            rows.append(row)
            genome_of_row[id(row)] = genome
        feasible = [
            row
            for row in rows
            if all(c.accepts(row) for c in self.space.metric_constraints)
        ]
        if not feasible:
            return []
        frontier = pareto_frontier(
            feasible, self.explorer.objectives, self.explorer.group_by
        )
        by_group: "dict[object, list[dict[str, object]]]" = {}
        for row in frontier:
            by_group.setdefault(
                _group_key(row, self.explorer.group_by), []
            ).append(row)
        knees = []
        for members in by_group.values():
            knee = knee_point(members, self.explorer.objectives)
            if knee is not None:
                knees.append(genome_of_row[id(knee)])
        return knees

    # ------------------------------------------------------------------ run
    def run(self) -> SearchOutcome:
        """Evolve until the budget, generation cap, or a stall stops the run.

        The run has two phases: the evolutionary loop proper, followed by a
        knee-refinement phase (see :attr:`GaConfig.knee_refine_fraction`) that
        sweeps single-axis neighborhoods of each group's knee pick until the
        picks stop moving or the budget is exhausted.
        """
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        config = self.config
        order: "list[tuple[int, ...]]" = []  # first-evaluation order
        rows_by_genome: "dict[tuple[int, ...], dict[str, object]]" = {}
        metrics_by_genome: "dict[tuple[int, ...], dict[str, object]]" = {}
        cache_hits = 0

        def evaluate(genomes: "list[tuple[int, ...]]", cap: int) -> None:
            """Evaluate the not-yet-seen genomes, trimmed to the budget cap."""
            nonlocal cache_hits
            fresh = []
            for genome in genomes:
                if genome not in metrics_by_genome and genome not in fresh:
                    fresh.append(genome)
            fresh = fresh[: max(0, cap - len(order))]
            if not fresh:
                return
            candidates = [self._candidate_of(genome) for genome in fresh]
            metrics, hits = self.explorer._evaluate(candidates)  # noqa: SLF001
            cache_hits += hits
            for genome, candidate, metric in zip(fresh, candidates, metrics):
                order.append(genome)
                metrics_by_genome[genome] = metric
                rows_by_genome[genome] = {**candidate, **metric}

        refine_budget = int(round(self.budget * config.knee_refine_fraction))
        ga_budget = max(1, self.budget - refine_budget)

        initial = self.space.sample(
            min(config.population_size, ga_budget), self.seed
        )
        population = [self._genome_of(candidate) for candidate in initial]
        with tracer.span(
            "search.generation", category="search", generation=0, population=len(population)
        ) as generation_span:
            evaluate(population, ga_budget)
            generation_span.annotate(evaluated=len(order))

        generations = 0
        stalled = 0
        while (
            len(order) < ga_budget
            and generations < config.max_generations
            and stalled < config.stall_generations
        ):
            generations += 1
            evaluated_rows = [rows_by_genome[genome] for genome in order]
            ranks = rank_rows(
                evaluated_rows,
                self.explorer.objectives,
                self.explorer.group_by,
                self.space.metric_constraints,
            )
            fitness = dict(zip(order, ranks))
            pool = [genome for genome in population if genome in fitness]
            if not pool:
                pool = list(order)
            with tracer.span(
                "search.generation",
                category="search",
                generation=generations,
                population=config.population_size,
            ) as generation_span:
                elites = sorted(pool, key=lambda genome: fitness[genome])[: config.elite]
                next_population = list(elites)
                while len(next_population) < config.population_size:
                    first = self._tournament(pool, fitness)
                    second = self._tournament(pool, fitness)
                    next_population.append(self._make_child(first, second))
                population = next_population
                before = len(order)
                evaluate(population, ga_budget)
                generation_span.annotate(evaluated=len(order) - before)
            stalled = stalled + 1 if len(order) == before else 0

        # Knee refinement: proxy-rank the Hamming-<=2 neighborhood of each
        # group's current knee pick, evaluate the proxy-best few for real,
        # and repeat until the picks are stable or the budget is spent.
        fidelity = (
            proxy_fidelity_limit(
                {**self.explorer.fixed_params, **self._candidate_of(order[0])}
            )
            if order
            else 1
        )
        wave_index = 0
        while len(order) < self.budget:
            knees = self._current_knees(order, rows_by_genome)
            pool: "list[tuple[int, ...]]" = []
            for genome in knees:
                for neighbor in self._neighborhood(genome):
                    if (
                        neighbor not in metrics_by_genome
                        and neighbor not in pool
                        and self._satisfies_constraints(neighbor)
                    ):
                        pool.append(neighbor)
            if not pool:
                break
            with tracer.span(
                "search.refine",
                category="search",
                wave=wave_index,
                knees=len(knees),
                neighborhood=len(pool),
            ) as refine_span:
                proxy_rows = []
                for genome in pool:
                    candidate = self._candidate_of(genome)
                    params = {**self.explorer.fixed_params, **candidate}
                    proxy_rows.append(
                        {**candidate, **run_proxy(self.explorer.evaluator, params, fidelity)}
                    )
                fitness = rank_rows(
                    proxy_rows,
                    self.explorer.objectives,
                    self.explorer.group_by,
                    self.space.metric_constraints,
                )
                ranked = sorted(range(len(pool)), key=lambda index: fitness[index])
                wave = [pool[index] for index in ranked[: max(4, 2 * len(knees))]]
                before = len(order)
                evaluate(wave, self.budget)
                refine_span.annotate(evaluated=len(order) - before)
            wave_index += 1
            if len(order) == before:
                break

        candidates = [self._candidate_of(genome) for genome in order]
        metrics = [metrics_by_genome[genome] for genome in order]
        return SearchOutcome(
            candidates=candidates,
            metrics=metrics,
            cache_hits=cache_hits,
            stats={
                "strategy": "ga",
                "budget": self.budget,
                "seed": self.seed,
                "generations": generations,
                "population_size": config.population_size,
            },
        )
