"""Search-based design-space exploration drivers.

Exhaustive enumeration stops scaling somewhere around 10^4 candidates; this
package provides the two search strategies the
:class:`~repro.dse.explorer.Explorer` dispatches to beyond that point:

* :class:`~repro.dse.search.ga.GeneticSearch` (``strategy="ga"``) -- a seeded
  genetic algorithm whose evaluations deduplicate through the
  content-addressed result cache;
* :class:`~repro.dse.search.halving.SuccessiveHalving`
  (``strategy="halving"``) -- proxy-screened successive halving that spends
  model evaluations only on the pool's analytically-best survivors.

Both return a :class:`~repro.dse.search.base.SearchOutcome` and are
deterministic in their seed, serial or parallel.
"""

from repro.dse.search.base import SearchOutcome, is_rankable, rank_rows
from repro.dse.search.ga import GaConfig, GeneticSearch
from repro.dse.search.halving import SuccessiveHalving
from repro.dse.search.proxy import PROXIES, run_proxy

#: Strategy names accepted by ``Explorer.explore`` and the CLI.
STRATEGIES = ("exhaustive", "ga", "halving")

__all__ = [
    "GaConfig",
    "GeneticSearch",
    "PROXIES",
    "STRATEGIES",
    "SearchOutcome",
    "SuccessiveHalving",
    "is_rankable",
    "rank_rows",
    "run_proxy",
]
