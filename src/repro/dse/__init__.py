"""Design-space exploration (DSE) on top of the chapter models.

The paper's contribution is a *methodology* for choosing a scale-out design;
this package turns the repo's models into a reusable exploration engine:

* :mod:`repro.dse.space` -- declarative :class:`DesignSpace` (named axes plus
  parameter/metric :class:`Constraint` predicates, enumeration, sampling);
* :mod:`repro.dse.evaluate` -- picklable candidate evaluators routing each
  point through the chip, TCO, and service models;
* :mod:`repro.dse.pareto` -- multi-objective dominance, frontier extraction
  (optionally grouped), 2-D frontier slices, and knee-point selection;
* :mod:`repro.dse.explorer` -- the :class:`Explorer` tying them together with
  the runtime's executor fan-out and content-addressed evaluation cache;
* :mod:`repro.dse.studies` -- the catalogued ``kind="explore"`` studies behind
  ``python -m repro explore``.
"""

from repro.dse.evaluate import (
    EVALUATORS,
    evaluate_chip_candidate,
    evaluate_sizing_candidate,
    evaluation_token,
    suite_for,
)
from repro.dse.explorer import DEFAULT_EVALUATION_CACHE, ExplorationResult, Explorer
from repro.dse.pareto import (
    Objective,
    dominates,
    frontier_2d,
    knee_point,
    pareto_frontier,
)
from repro.dse.space import Axis, Constraint, DesignSpace, EmptyDesignSpaceError
from repro.dse.studies import explore_pod_40nm, explore_scaling_20nm, explore_sla_sizing

__all__ = [
    "Axis",
    "Constraint",
    "DEFAULT_EVALUATION_CACHE",
    "DesignSpace",
    "EmptyDesignSpaceError",
    "EVALUATORS",
    "ExplorationResult",
    "Explorer",
    "Objective",
    "dominates",
    "evaluate_chip_candidate",
    "evaluate_sizing_candidate",
    "evaluation_token",
    "explore_pod_40nm",
    "explore_scaling_20nm",
    "explore_sla_sizing",
    "frontier_2d",
    "knee_point",
    "pareto_frontier",
    "suite_for",
]
