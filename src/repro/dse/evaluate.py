"""Candidate evaluators: design-space points through the chapter models.

Each evaluator is a module-level function (picklable, so the
:class:`~repro.runtime.SweepExecutor` can fan candidates out to a process
pool) that takes one candidate's parameter dictionary and returns a flat,
JSON-able metrics dictionary.  Evaluators are registered by name in
:data:`EVALUATORS`; the name plus the parameters form the content address
under which the :class:`~repro.runtime.ResultCache` deduplicates evaluations
across explorations and processes.

* ``"chip"`` -- builds the pod/chip described by the candidate, provisions
  memory channels for worst-case demand, and reports the paper's chip-level
  metrics (performance, density, perf/watt, perf/TCO, reference p99) plus
  budget feasibility.
* ``"sizing"`` -- additionally sizes the minimum SLA-compliant cluster of the
  candidate chip (servers, racks, monthly TCO) via the
  :class:`~repro.service.sizing.ClusterSizer`.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.chip import ScaleOutChip
from repro.core.pod import Pod
from repro.memory.dram import channel_for_standard
from repro.memory.provisioning import channels_required
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.service.calibration import calibrate_chip
from repro.service.sizing import ClusterSizer, MmkQueue, SlaInfeasibleError
from repro.tco.datacenter import DatacenterDesign
from repro.technology.node import get_node
from repro.workloads.suite import WorkloadSuite, default_suite

#: Versioned token prefix for evaluation cache keys; bump on schema changes.
EVALUATION_VERSION = 1


def suite_for(name: str) -> WorkloadSuite:
    """Resolve a workload-suite axis value to a :class:`WorkloadSuite`.

    Known names: ``"default"`` (the full CloudSuite) and
    ``"latency_sensitive"`` (its latency-sensitive sub-suite).
    """
    suite = default_suite()
    if name == "default":
        return suite
    if name == "latency_sensitive":
        return suite.latency_sensitive()
    raise KeyError(
        f"unknown workload suite {name!r}; known: default, latency_sensitive"
    )


#: Chip design knobs, in label order; they also name the candidate's chip.
_DESIGN_KEYS = ("core_type", "cores_per_pod", "llc_per_pod_mb", "interconnect",
                "pods_per_chip", "node")


def _design_label(params: "Mapping[str, object]") -> str:
    """Label of the chip design knobs only (used as the chip name)."""
    return "/".join(str(params[key]) for key in _DESIGN_KEYS if key in params)


def candidate_label(params: "Mapping[str, object]") -> str:
    """Compact human-readable identity of one candidate.

    Chip design knobs come first in canonical order; any other axes
    (e.g. the sizing study's ``memory_gb``) are appended as ``key=value`` so
    that candidates differing only on those axes stay distinguishable.
    """
    parts = [str(params[key]) for key in _DESIGN_KEYS if key in params]
    parts.extend(
        f"{key}={params[key]}" for key in sorted(params) if key not in _DESIGN_KEYS
    )
    return "/".join(parts) if parts else repr(dict(params))


def _build_chip(params: "Mapping[str, object]", suite: WorkloadSuite,
                model: AnalyticPerformanceModel) -> ScaleOutChip:
    """The candidate's chip: pod x pods-per-chip with demand-provisioned channels."""
    node = get_node(str(params.get("node", "40nm")))
    pod = Pod(
        cores=int(params["cores_per_pod"]),  # type: ignore[arg-type]
        core_type=str(params.get("core_type", "ooo")),
        llc_capacity_mb=float(params["llc_per_pod_mb"]),  # type: ignore[arg-type]
        interconnect=str(params.get("interconnect", "crossbar")),
        node=node,
    )
    num_pods = int(params.get("pods_per_chip", 1))  # type: ignore[arg-type]
    demand = pod.bandwidth_demand_gbps(model, suite) * num_pods
    channels = channels_required(demand, channel_for_standard(node.memory_standard))
    return ScaleOutChip(
        name=_design_label(params),
        pod=pod,
        num_pods=num_pods,
        memory_channels=channels,
        pod_performance=pod.performance(model, suite),
    )


def evaluate_chip_candidate(params: "Mapping[str, object]") -> "dict[str, object]":
    """Chip-level metrics for one candidate (picklable; see module docstring).

    Args:
        params: candidate dictionary with axes ``core_type``, ``cores_per_pod``,
            ``llc_per_pod_mb``, ``interconnect``, ``pods_per_chip``, ``node``,
            ``suite``, and optional ``workload`` / ``reference_utilization``
            for the service-latency reference metric.

    Returns:
        Flat metrics: total cores/LLC/channels, die area, power, performance,
        performance density, perf/watt, perf/TCO (x1000), reference p99 (ms),
        and budget feasibility (``fits_budgets`` / ``limiting_constraint``).
    """
    model = AnalyticPerformanceModel()
    suite = suite_for(str(params.get("suite", "default")))
    chip = _build_chip(params, suite, model)
    performance = chip.performance(model, suite)
    datacenter = DatacenterDesign(model=model, suite=suite)
    dc_result = datacenter.evaluate(chip)

    workload = suite[str(params.get("workload", "Web Search"))]
    utilization = float(params.get("reference_utilization", 0.8))  # type: ignore[arg-type]
    capacity = calibrate_chip(chip, workload, model)
    queue = MmkQueue(
        servers=capacity.units_per_chip,
        service_rate_rps=capacity.unit_rate_rps,
        arrival_rate_rps=utilization * capacity.chip_rate_rps,
    )
    p99 = queue.latency_quantile(0.99)

    return {
        "cores": chip.total_cores,
        "llc_mb": chip.total_llc_mb,
        "memory_channels": chip.memory_channels,
        "die_area_mm2": round(chip.die_area_mm2, 2),
        "power_w": round(chip.power_w, 2),
        "performance": round(performance, 4),
        "performance_density": round(performance / chip.die_area_mm2, 6),
        "performance_per_watt": round(performance / chip.power_w, 6),
        "performance_per_tco": round(dc_result.performance_per_tco, 6),
        "p99_ms": round(p99 * 1e3, 4) if math.isfinite(p99) else None,
        "fits_budgets": chip.satisfies(chip.node.constraints),
        "limiting_constraint": chip.limiting_constraint(chip.node.constraints),
    }


def evaluate_sizing_candidate(params: "Mapping[str, object]") -> "dict[str, object]":
    """Cluster-sizing metrics for one candidate chip under a QPS + SLA target.

    Args:
        params: the chip axes of :func:`evaluate_chip_candidate` plus
            ``workload`` (profile name), ``target_qps``, ``sla_p99_ms``, and
            ``memory_gb``.

    Returns:
        The chip feasibility metrics plus ``servers``, ``racks``,
        ``monthly_tco_usd``, ``tco_per_million_qps_usd``, achieved ``p99_ms``,
        per-server ``utilization``, and ``sla_feasible``.  When the SLA cannot
        be met at any cluster size the sizing metrics are ``None`` and
        ``sla_feasible`` is ``False``.
    """
    model = AnalyticPerformanceModel()
    suite = suite_for(str(params.get("suite", "default")))
    chip = _build_chip(params, suite, model)
    workload = suite[str(params.get("workload", "Web Search"))]
    target_qps = float(params["target_qps"])  # type: ignore[arg-type]
    sla_p99_s = float(params["sla_p99_ms"]) / 1e3  # type: ignore[arg-type]
    memory_gb = int(params.get("memory_gb", 64))  # type: ignore[arg-type]

    metrics: "dict[str, object]" = {
        "cores": chip.total_cores,
        "llc_mb": chip.total_llc_mb,
        "die_area_mm2": round(chip.die_area_mm2, 2),
        "power_w": round(chip.power_w, 2),
        "fits_budgets": chip.satisfies(chip.node.constraints),
    }
    sizer = ClusterSizer(DatacenterDesign(model=model, suite=suite), memory_gb=memory_gb)
    try:
        result = sizer.size(chip, workload, target_qps=target_qps, sla_p99_s=sla_p99_s)
    except SlaInfeasibleError as error:
        metrics.update(
            sla_feasible=False,
            sla_reason=str(error),
            servers=None,
            racks=None,
            utilization=None,
            p99_ms=None,
            monthly_tco_usd=None,
            tco_per_million_qps_usd=None,
        )
        return metrics
    metrics.update(
        sla_feasible=True,
        sla_reason="",
        servers=result.servers,
        racks=result.racks,
        utilization=round(result.utilization, 4),
        p99_ms=round(result.p99_s * 1e3, 4),
        monthly_tco_usd=round(result.monthly_tco_usd, 2),
        tco_per_million_qps_usd=round(result.tco_per_million_qps, 2),
    )
    return metrics


#: Evaluators by name; the name is part of every evaluation's cache address.
EVALUATORS = {
    "chip": evaluate_chip_candidate,
    "sizing": evaluate_sizing_candidate,
}


def run_evaluator(name: str, params: "Mapping[str, object]") -> "dict[str, object]":
    """Dispatch one candidate to a registered evaluator (pool-worker entry)."""
    try:
        evaluator = EVALUATORS[name]
    except KeyError:
        raise KeyError(f"unknown evaluator {name!r}; known: {sorted(EVALUATORS)}") from None
    return evaluator(params)


def evaluation_token(name: str) -> str:
    """Cache-token prefix identifying one evaluator at the current version."""
    if name not in EVALUATORS:
        raise KeyError(f"unknown evaluator {name!r}; known: {sorted(EVALUATORS)}")
    return f"repro.dse.evaluate.{name}@v{EVALUATION_VERSION}"
