"""Declarative design spaces: named axes, constraints, enumeration, sampling.

A :class:`DesignSpace` is the cross product of named :class:`Axis` value lists
(core model x pods per chip x LLC capacity x NoC topology x technology node x
workload suite, or any other set of knobs) restricted by named
:class:`Constraint` predicates.  Two kinds of constraint exist:

* **parameter constraints** see only the candidate's axis values and prune the
  space *before* any model runs (e.g. "no 64-core crossbar pods");
* **metric constraints** see the evaluated metrics and prune *after* the model
  runs (e.g. area or power caps, SLA feasibility) -- they are applied by the
  :class:`~repro.dse.explorer.Explorer`, which keeps infeasible candidates in
  the result flagged ``feasible=False``.

Enumeration order is deterministic (row-major over the axes in declaration
order) and :meth:`DesignSpace.sample` draws a seeded subset, so serial and
parallel exploration of the same space evaluate the same candidates.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence


class EmptyDesignSpaceError(ValueError):
    """Raised when constraints (or empty axes) leave nothing to explore."""


@dataclass(frozen=True)
class Axis:
    """One named dimension of a design space.

    Attributes:
        name: axis name; becomes the candidate dictionary key.
        values: the discrete values this axis can take, in sweep order.
    """

    name: str
    values: "tuple[object, ...]"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class Constraint:
    """A named predicate over a candidate (or its metrics).

    Attributes:
        name: short label used in error messages and result stats.
        predicate: callable receiving the candidate/metrics dictionary and
            returning truth (keep) or falsehood (prune).
    """

    name: str
    predicate: "Callable[[Mapping[str, object]], bool]"

    def accepts(self, values: "Mapping[str, object]") -> bool:
        """Whether ``values`` satisfies this constraint."""
        return bool(self.predicate(values))


@dataclass(frozen=True)
class DesignSpace:
    """A named cross product of axes with constraint predicates.

    Attributes:
        axes: the dimensions, in declaration (enumeration) order.
        constraints: parameter constraints applied during enumeration.
        metric_constraints: constraints over evaluated metrics, applied by the
            explorer after candidates run through the models.
    """

    axes: "tuple[Axis, ...]"
    constraints: "tuple[Constraint, ...]" = ()
    metric_constraints: "tuple[Constraint, ...]" = ()

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a DesignSpace needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {sorted(names)}")

    # -------------------------------------------------------------- geometry
    @property
    def axis_names(self) -> "list[str]":
        """Axis names in declaration order."""
        return [axis.name for axis in self.axes]

    @property
    def size(self) -> int:
        """Unconstrained cardinality (product of axis lengths)."""
        total = 1
        for axis in self.axes:
            total *= len(axis)
        return total

    def axis(self, name: str) -> Axis:
        """Look one axis up by name."""
        for candidate in self.axes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown axis {name!r}; known: {self.axis_names}")

    # ----------------------------------------------------------- enumeration
    def _raw_candidates(self) -> "Iterator[dict[str, object]]":
        """Row-major cross product of all axes, unconstrained."""
        names = self.axis_names
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            yield dict(zip(names, combo))

    def _feasible_candidates(self) -> "Iterator[dict[str, object]]":
        """Stream candidates passing the parameter constraints, in stable order."""
        for candidate in self._raw_candidates():
            if all(c.accepts(candidate) for c in self.constraints):
                yield candidate

    def _raise_empty(self) -> None:
        names = [c.name for c in self.constraints]
        raise EmptyDesignSpaceError(
            f"all {self.size} candidates were filtered out by the parameter "
            f"constraints {names}; relax a constraint or widen an axis"
        )

    def feasible_count(self) -> int:
        """Number of candidates passing the parameter constraints.

        Streams over the cross product without materializing it, so it is
        usable on spaces far too large to :meth:`enumerate`.
        """
        return sum(1 for _ in self._feasible_candidates())

    def enumerate(self) -> "list[dict[str, object]]":
        """All candidates passing the parameter constraints, in stable order.

        Raises:
            EmptyDesignSpaceError: if the constraints prune every candidate,
                naming the constraints so the caller can see what to relax.
        """
        candidates = list(self._feasible_candidates())
        if not candidates:
            self._raise_empty()
        return candidates

    def sample(self, count: int, seed: int = 0) -> "list[dict[str, object]]":
        """A seeded, order-preserving subset of the constrained enumeration.

        Streams over the cross product twice (a counting pass, then a
        collection pass over a seeded index set), so memory is O(count) even
        for million-candidate spaces -- the full enumeration is never
        materialized.  The selected subset is identical to what the historical
        materialize-then-sample implementation picked for the same seed.

        Args:
            count: number of candidates to keep (every feasible candidate is
                returned when ``count`` meets or exceeds the feasible count).
            seed: RNG seed; the same seed always selects the same subset.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        total = self.feasible_count()
        if total == 0:
            self._raise_empty()
        if count >= total:
            return list(self._feasible_candidates())
        picked = set(random.Random(seed).sample(range(total), count))
        selection: "list[dict[str, object]]" = []
        for index, candidate in enumerate(self._feasible_candidates()):
            if index in picked:
                selection.append(candidate)
                if len(selection) == count:
                    break
        return selection

    # ------------------------------------------------------------- describe
    def describe(self) -> "dict[str, object]":
        """JSON-able summary: axis values and constraint names."""
        return {
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "size": self.size,
            "constraints": [c.name for c in self.constraints],
            "metric_constraints": [c.name for c in self.metric_constraints],
        }


def node_axis(nodes: "Sequence[object] | None" = None) -> Axis:
    """A ``"node"`` axis over the technology family, validated and normalized.

    Args:
        nodes: node keys (names like ``"40nm"``, bare strings, feature sizes,
            or :class:`~repro.technology.node.TechnologyNode` objects); ``None``
            selects the whole default family, oldest node first.

    Returns:
        An :class:`Axis` named ``"node"`` whose values are canonical node
        names, so candidate dictionaries stay JSON-able and cache keys stay
        stable regardless of how callers spelled the nodes.
    """
    from repro.technology.family import DEFAULT_FAMILY

    if nodes is None:
        names = tuple(DEFAULT_FAMILY.names)
    else:
        names = tuple(DEFAULT_FAMILY.node(key).name for key in nodes)
    return Axis("node", names)
