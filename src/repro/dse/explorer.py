"""The explorer: enumerate a design space, evaluate it, extract the frontier.

:class:`Explorer` wires the DSE layer into the experiment runtime: candidates
come from a :class:`~repro.dse.space.DesignSpace`, evaluations fan out over a
:class:`~repro.runtime.SweepExecutor` (serial and parallel runs are
bit-identical because candidate order and the evaluators are deterministic),
and every evaluation is deduplicated through a content-addressed
:class:`~repro.runtime.ResultCache` -- re-exploring an overlapping space, or
re-running with a warm cache, performs zero model re-evaluations.

The result is an :class:`ExplorationResult`: every evaluated candidate (with a
``feasible`` flag from the space's metric constraints and an ``on_frontier``
flag from Pareto dominance), the frontier subset, and a knee-point selection
per frontier group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dse.evaluate import candidate_label, evaluation_token, run_evaluator
from repro.dse.pareto import Objective, group_label, knee_point, pareto_frontier
from repro.dse.space import DesignSpace, EmptyDesignSpaceError
from repro.runtime.cache import ResultCache, result_key
from repro.runtime.executor import SweepExecutor

#: Process-wide evaluation cache; add a disk tier by setting ``REPRO_CACHE_DIR``.
DEFAULT_EVALUATION_CACHE = ResultCache.from_env()

#: Evaluation budget the search strategies use when none is given.
DEFAULT_SEARCH_BUDGET = 64


@dataclass
class ExplorationResult:
    """Everything one exploration produced.

    Attributes:
        rows: one dictionary per evaluated candidate -- axis values, metrics,
            ``candidate`` label, ``feasible``, and ``on_frontier`` flags -- in
            enumeration order.
        frontier: the Pareto-optimal subset of the feasible rows (same
            dictionaries, same relative order).
        knees: knee-point selection per frontier group (one entry keyed ``""``
            when the exploration is ungrouped).
        objectives: the objectives dominance was evaluated under.
        group_by: the grouping key(s), if any.
        stats: exploration accounting (space size, evaluations, cache hits...).
    """

    rows: "list[dict[str, object]]"
    frontier: "list[dict[str, object]]"
    knees: "dict[str, dict[str, object]]"
    objectives: "tuple[Objective, ...]"
    group_by: "str | tuple[str, ...] | None" = None
    stats: "dict[str, object]" = field(default_factory=dict)

    def payload(self) -> "dict[str, object]":
        """JSON-able envelope body consumed by the CLI and the catalog specs."""
        return {
            "objectives": [objective.describe() for objective in self.objectives],
            "group_by": list(self.group_by) if isinstance(self.group_by, tuple) else self.group_by,
            "candidates": self.rows,
            "frontier": self.frontier,
            "knees": self.knees,
            "stats": self.stats,
        }


class Explorer:
    """Evaluates a :class:`DesignSpace` and extracts its Pareto frontier.

    Args:
        space: the design space to explore.
        objectives: dominance objectives over the evaluators' metric names.
        evaluator: registered evaluator name (``"chip"`` or ``"sizing"``).
        fixed_params: parameters merged into every candidate before evaluation
            (e.g. the sizing study's ``target_qps``); part of the cache key.
        group_by: optional axis name(s) partitioning frontier extraction
            (e.g. ``"core_type"`` for the paper's separate OoO/in-order tracks).
        executor: sweep executor for fan-out (a default ``auto`` one if omitted).
        cache: evaluation cache; defaults to the process-wide
            :data:`DEFAULT_EVALUATION_CACHE`.
        use_cache: disable to force every candidate through the models.
    """

    def __init__(
        self,
        space: DesignSpace,
        objectives: "Sequence[Objective]",
        evaluator: str = "chip",
        fixed_params: "Mapping[str, object] | None" = None,
        group_by: "str | Sequence[str] | None" = None,
        executor: "SweepExecutor | None" = None,
        cache: "ResultCache | None" = None,
        use_cache: bool = True,
    ):
        if not objectives:
            raise ValueError("an Explorer needs at least one objective")
        self.space = space
        self.objectives = tuple(objectives)
        self.evaluator = evaluator
        self.token = evaluation_token(evaluator)  # validates the name
        self.fixed_params = dict(fixed_params or {})
        self.group_by = tuple(group_by) if isinstance(group_by, (list, tuple)) else group_by
        self.executor = executor or SweepExecutor()
        self.cache = cache if cache is not None else DEFAULT_EVALUATION_CACHE
        self.use_cache = use_cache

    # ------------------------------------------------------------ evaluation
    def _evaluate(
        self, candidates: "list[dict[str, object]]"
    ) -> "tuple[list[dict[str, object]], int]":
        """Metrics per candidate (enumeration order) and the cache-hit count."""
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        merged = [{**self.fixed_params, **candidate} for candidate in candidates]
        keys = [result_key(self.token, params) for params in merged]
        metrics: "list[dict[str, object] | None]" = []
        hits = 0
        with tracer.span(
            "search.evaluate", category="search", candidates=len(merged)
        ) as evaluate_span:
            if self.use_cache:
                with tracer.span("cache.lookup", category="cache", keys=len(keys)) as lookup_span:
                    for key in keys:
                        cached = self.cache.get(key, category="evaluation")
                        metrics.append(cached if isinstance(cached, dict) else None)
                        hits += metrics[-1] is not None
                    lookup_span.annotate(hits=hits)
            else:
                metrics = [None] * len(merged)
            missing = [i for i, value in enumerate(metrics) if value is None]
            if missing:
                computed = self.executor.map(
                    run_evaluator, [(self.evaluator, merged[i]) for i in missing]
                )
                for i, value in zip(missing, computed):
                    metrics[i] = value  # type: ignore[assignment]
                if self.use_cache:
                    with tracer.span("cache.store", category="cache", keys=len(missing)):
                        for i in missing:
                            self.cache.put(keys[i], metrics[i], category="evaluation")
            evaluate_span.annotate(cache_hits=hits, evaluated=len(missing))
        if tracer.enabled and hits:
            tracer.counter("search.evaluations_saved").add(hits)
        return metrics, hits  # type: ignore[return-value]

    # ------------------------------------------------------------ exploration
    def explore(
        self,
        sample: "int | None" = None,
        seed: int = 0,
        strategy: str = "exhaustive",
        budget: "int | None" = None,
    ) -> ExplorationResult:
        """Run the exploration (exhaustively, or via a search strategy).

        Args:
            sample: with ``strategy="exhaustive"``, evaluate only a seeded
                sample of this many candidates instead of the whole space.
            seed: seed of the sample draw and of the search drivers.
            strategy: ``"exhaustive"`` (default) enumerates and evaluates the
                space; ``"ga"`` runs the genetic search; ``"halving"`` runs
                proxy-screened successive halving.  The search strategies
                evaluate at most ``budget`` candidates and return the frontier
                of everything they evaluated.
            budget: unique-candidate evaluation budget for the search
                strategies (default :data:`DEFAULT_SEARCH_BUDGET`); counted
                independently of cache warmth, so a warm-cache re-run walks
                the same candidates with zero model evaluations.

        Raises:
            EmptyDesignSpaceError: when the parameter constraints prune every
                candidate, or the metric constraints leave nothing feasible.
            ValueError: for an unknown strategy, or ``budget`` passed to the
                exhaustive strategy (use ``sample`` there).
        """
        from repro.dse.search import STRATEGIES, GeneticSearch, SuccessiveHalving
        from repro.obs.tracer import get_tracer

        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        tracer = get_tracer()
        extra_stats: "dict[str, object]" = {"strategy": strategy}
        with tracer.span(
            "search.explore",
            category="search",
            strategy=strategy,
            evaluator=self.evaluator,
            seed=seed,
        ) as explore_span:
            if strategy == "exhaustive":
                if budget is not None:
                    raise ValueError(
                        "budget only applies to the search strategies; use "
                        "sample= to bound an exhaustive exploration"
                    )
                candidates = (
                    self.space.sample(sample, seed)
                    if sample is not None
                    else self.space.enumerate()
                )
                metrics, cache_hits = self._evaluate(candidates)
            else:
                driver_class = GeneticSearch if strategy == "ga" else SuccessiveHalving
                driver = driver_class(
                    self, budget=budget or DEFAULT_SEARCH_BUDGET, seed=seed
                )
                outcome = driver.run()
                candidates, metrics = outcome.candidates, outcome.metrics
                cache_hits = outcome.cache_hits
                extra_stats.update(outcome.stats)
            explore_span.annotate(candidates=len(candidates), cache_hits=cache_hits)

        rows: "list[dict[str, object]]" = []
        for candidate, metric in zip(candidates, metrics):
            feasible = all(
                constraint.accepts(metric) for constraint in self.space.metric_constraints
            )
            rows.append(
                {
                    "candidate": candidate_label(candidate),
                    **candidate,
                    **metric,
                    "feasible": feasible,
                }
            )
        feasible_rows = [row for row in rows if row["feasible"]]
        if not feasible_rows:
            names = [c.name for c in self.space.metric_constraints]
            raise EmptyDesignSpaceError(
                f"all {len(rows)} evaluated candidates violate the metric "
                f"constraints {names}; relax a constraint or widen an axis"
            )

        frontier = pareto_frontier(feasible_rows, self.objectives, self.group_by)
        frontier_ids = {id(row) for row in frontier}
        for row in rows:
            row["on_frontier"] = id(row) in frontier_ids

        knees: "dict[str, dict[str, object]]" = {}
        by_group: "dict[str, list[dict[str, object]]]" = {}
        for row in frontier:
            by_group.setdefault(group_label(row, self.group_by), []).append(row)
        for label, members in by_group.items():
            knee = knee_point(members, self.objectives)
            if knee is not None:
                knees[label] = knee

        stats = {
            "space_size": self.space.size,
            "candidates": len(rows),
            "evaluated": len(rows) - cache_hits,
            "cache_hits": cache_hits,
            "feasible": len(feasible_rows),
            "frontier_size": len(frontier),
            **extra_stats,
        }
        return ExplorationResult(
            rows=rows,
            frontier=frontier,
            knees=knees,
            objectives=self.objectives,
            group_by=self.group_by,
            stats=stats,
        )
