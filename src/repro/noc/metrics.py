"""NoC area and power models (ORION-style accounting, Figures 4.7 and 4.4.4).

Area is broken down into links (repeaters only -- wires route over logic),
buffers (flip-flops for the mesh and NOC-Out trees, SRAM for the flattened
butterfly's deep buffers), and crossbars (quadratic in port count).  The constants
are calibrated so that the three 64-core / 128-bit-link organizations land at the
paper's reported totals: mesh ~3.5 mm^2, flattened butterfly ~23 mm^2, NOC-Out
~2.5 mm^2 at 32nm.  Power follows the paper's observation that all three NOCs
dissipate 1-2 W, dominated by link energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.network import NocConfig
from repro.noc.topology import NocTopology
from repro.technology.node import NODE_32NM, TechnologyNode
from repro.technology.wires import WireModel


@dataclass(frozen=True)
class NocAreaBreakdown:
    """Itemized NoC area (mm^2)."""

    links_mm2: float
    buffers_mm2: float
    crossbars_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total NoC area."""
        return self.links_mm2 + self.buffers_mm2 + self.crossbars_mm2

    def as_dict(self) -> "dict[str, float]":
        """Breakdown as a dictionary (for the Figure 4.7 bars)."""
        return {
            "links": self.links_mm2,
            "buffers": self.buffers_mm2,
            "crossbars": self.crossbars_mm2,
            "total": self.total_mm2,
        }


class NocAreaModel:
    """Area accounting for a NoC topology at a given link width."""

    #: Buffer area per flit of storage (mm^2) for flip-flop based buffers at 32nm.
    FLIPFLOP_MM2_PER_FLIT_128B = 0.00035
    #: Buffer area per flit for SRAM-based buffers (flattened butterfly).
    SRAM_MM2_PER_FLIT_128B = 0.0004
    #: Crossbar area coefficient: area = k * ports^2 * (width/128)^2.
    CROSSBAR_MM2_PER_PORT2 = 0.00045

    def __init__(self, node: TechnologyNode = NODE_32NM, config: "NocConfig | None" = None):
        self.node = node
        self.config = config or NocConfig()
        self.wires = WireModel(node)

    # ------------------------------------------------------------------ parts
    def link_area_mm2(self, topology: NocTopology) -> float:
        """Repeater area of every directed link."""
        width = self.config.link_width_bits
        total = 0.0
        for a, b in topology.graph.edges:
            length = topology.link(a, b).length_mm
            total += self.wires.repeater_area_mm2(length, width)
        return total

    def buffer_area_mm2(self, topology: NocTopology) -> float:
        """Input-buffer area of every router port."""
        width_scale = self.config.link_width_bits / 128.0
        per_flit = (
            self.SRAM_MM2_PER_FLIT_128B
            if topology.name == "fbfly"
            else self.FLIPFLOP_MM2_PER_FLIT_128B
        )
        total = 0.0
        for node in topology.graph.nodes:
            in_ports = topology.graph.in_degree(node) + 1  # plus the local port
            if topology.name == "fbfly":
                # Deep buffers cover the flight time of long links (Section 4.3.1).
                depth = self.config.buffer_flits_per_vc * 2
            elif topology.name == "nocout" and node in topology.llc_nodes:
                depth = self.config.buffer_flits_per_vc
            elif topology.name == "nocout":
                depth = 2  # trivial two-port tree nodes with a couple of flits
            else:
                depth = self.config.buffer_flits_per_vc
            vcs = 2 if (topology.name == "nocout" and node not in topology.llc_nodes) else self.config.vcs_per_port
            total += in_ports * vcs * depth * per_flit * width_scale
        return total * self.node.logic_area_scale / 0.64

    def crossbar_area_mm2(self, topology: NocTopology) -> float:
        """Switch-fabric area of every router."""
        width_scale = (self.config.link_width_bits / 128.0) ** 2
        total = 0.0
        for node in topology.graph.nodes:
            ports = topology.graph.in_degree(node) + 1
            if topology.name == "nocout" and node not in topology.llc_nodes:
                # Tree nodes are two-input muxes, not crossbars.
                total += 0.0005 * width_scale
                continue
            total += self.CROSSBAR_MM2_PER_PORT2 * ports**2 * width_scale
        return total * self.node.logic_area_scale / 0.64

    def breakdown(self, topology: NocTopology) -> NocAreaBreakdown:
        """Full area breakdown for ``topology``."""
        return NocAreaBreakdown(
            links_mm2=self.link_area_mm2(topology),
            buffers_mm2=self.buffer_area_mm2(topology),
            crossbars_mm2=self.crossbar_area_mm2(topology),
        )

    # ------------------------------------------------------- width for budget
    def width_for_area_budget(
        self, topology: NocTopology, budget_mm2: float, min_bits: int = 16, max_bits: int = 512
    ) -> int:
        """Largest power-of-two link width whose total area fits ``budget_mm2``.

        Used by the area-normalized comparison (Figure 4.8): the mesh and the
        flattened butterfly are narrowed until they fit NOC-Out's 2.5 mm^2 budget.
        """
        if budget_mm2 <= 0:
            raise ValueError("budget_mm2 must be positive")
        width = max_bits
        while width >= min_bits:
            model = NocAreaModel(self.node, NocConfig(link_width_bits=width))
            if model.breakdown(topology).total_mm2 <= budget_mm2:
                return width
            width //= 2
        return min_bits


class NocPowerModel:
    """Energy/power accounting: links dominate, total stays below ~2 W."""

    #: Router energy per flit traversal (pJ) at 32nm, 128-bit flits.
    ROUTER_PJ_PER_FLIT_128B = 8.0

    def __init__(self, node: TechnologyNode = NODE_32NM, config: "NocConfig | None" = None):
        self.node = node
        self.config = config or NocConfig()
        self.wires = WireModel(node)

    def average_power_w(
        self,
        topology: NocTopology,
        flit_hops: int,
        duration_cycles: float,
        average_link_length_mm: float = 1.4,
    ) -> float:
        """Average NoC power over a window with ``flit_hops`` total flit-hops."""
        if duration_cycles <= 0:
            raise ValueError("duration_cycles must be positive")
        width = self.config.link_width_bits
        link_energy_pj = self.wires.energy_pj(average_link_length_mm, width) * flit_hops
        router_energy_pj = self.ROUTER_PJ_PER_FLIT_128B * (width / 128.0) * flit_hops
        leakage_w = 0.15 + 0.01 * topology.graph.number_of_nodes() * (width / 128.0)
        seconds = duration_cycles / (self.node.frequency_ghz * 1e9)
        dynamic_w = (link_energy_pj + router_energy_pj) * 1e-12 / seconds
        return leakage_w + dynamic_w
