"""End-to-end NoC study harness for Chapter 4.

:class:`PodNocStudy` evaluates a 64-core pod under the three interconnect
organizations: it builds the topology, generates the bilateral traffic for each
workload, measures average LLC-access network latency with the packet simulator,
feeds that latency back into the analytic performance model to obtain system
performance, and reports area/power from the ORION-style models.  This is the
pipeline behind Figures 4.6, 4.7 and 4.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from repro.noc.metrics import NocAreaBreakdown, NocAreaModel, NocPowerModel
from repro.noc.network import NocConfig, NocNetwork
from repro.noc.packet import MessageClass
from repro.noc.topology import NocTopology, TOPOLOGY_BUILDERS
from repro.noc.traffic import (
    BilateralTrafficGenerator,
    bilateral_injection_rate,
    generate_bilateral_batch,
)
from repro.perfmodel.amat import LlcAccessLatency
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.runtime.executor import SweepExecutor
from repro.technology.node import NODE_32NM, TechnologyNode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite, default_suite


@lru_cache(maxsize=16)
def _cached_topology(name: str, cores: int) -> NocTopology:
    """Process-local memo of built topologies.

    Topology construction is deterministic, and the instance's route cache is
    the expensive part to rebuild (NOC-Out pairs run a shortest-path search).
    Sharing one instance per (name, cores) lets every sweep point in a worker
    process reuse warm routes.
    """
    return TOPOLOGY_BUILDERS[name.lower()](cores=cores)


@lru_cache(maxsize=64)
def _cached_traffic_batch(
    core_nodes: "tuple[int, ...]",
    llc_nodes: "tuple[int, ...]",
    injection_rate: float,
    snoop_fraction: float,
    seed: int,
    duration_cycles: int,
    active_cores: int,
):
    """Memoized traffic batches, keyed by everything the generator draws from.

    The generator's random stream is fully determined by the node id lists,
    the per-core injection rate, the snoop fraction, and the seed -- not by
    the topology's links -- so topologies with identical core/LLC numbering
    (mesh and the flattened butterfly) share one generated batch per
    (workload, seed) point.  Callers must treat the returned batch as
    immutable.
    """
    return generate_bilateral_batch(
        core_nodes=list(core_nodes),
        llc_nodes=list(llc_nodes),
        injection_rate=injection_rate,
        snoop_fraction=snoop_fraction,
        seed=seed,
        duration_cycles=duration_cycles,
        active_cores=active_cores,
    )


@dataclass(frozen=True)
class NocSimulationResult:
    """Result of evaluating one (topology, workload) pair.

    Attributes:
        topology: topology name.
        workload: workload name.
        average_request_latency: mean one-way request latency (cycles).
        average_packet_latency: mean latency over all packet classes.
        average_hops: mean hop count.
        system_ipc: aggregate pod IPC with this network latency.
        max_link_utilization: utilization of the busiest link.
    """

    topology: str
    workload: str
    average_request_latency: float
    average_packet_latency: float
    average_hops: float
    system_ipc: float
    max_link_utilization: float


@dataclass(frozen=True)
class NocPointSpec:
    """Everything a pool worker needs to evaluate one NoC sweep point.

    A frozen value object shipped to workers instead of pickling the whole
    :class:`PodNocStudy` (whose workload suite and analytic model dominated the
    per-point IPC payload); :meth:`PodNocStudy.from_spec` reconstitutes an
    equivalent study on the other side.
    """

    cores: int
    llc_mb: float
    node: TechnologyNode
    config: NocConfig
    duration_cycles: int
    seed: int
    use_fastpath: bool = True


def _evaluate_noc_point(
    spec: NocPointSpec,
    topology_name: str,
    workload: WorkloadProfile,
    link_width_bits: "int | None",
) -> NocSimulationResult:
    """Evaluate one (topology, workload) sweep point.

    Module-level so :class:`~repro.runtime.SweepExecutor` can ship it to pool
    workers; the topology is built from the deterministic spec (and memoized
    per process), keeping the serial and parallel paths on identical code.
    """
    study = PodNocStudy.from_spec(spec)
    topology = study.build_topology(topology_name)
    request_latency, packet_latency, hops, util = study.measure_latency(
        topology, workload, link_width_bits=link_width_bits
    )
    return NocSimulationResult(
        topology=topology_name,
        workload=workload.name,
        average_request_latency=request_latency,
        average_packet_latency=packet_latency,
        average_hops=hops,
        system_ipc=study.system_performance(workload, request_latency),
        max_link_utilization=util,
    )


class PodNocStudy:
    """Chapter 4 evaluation: a 64-core, 8 MB, 4-channel pod at 32nm (Table 4.1)."""

    def __init__(
        self,
        cores: int = 64,
        llc_mb: float = 8.0,
        node: TechnologyNode = NODE_32NM,
        suite: "WorkloadSuite | None" = None,
        config: "NocConfig | None" = None,
        duration_cycles: int = 8_000,
        seed: int = 1,
        use_fastpath: bool = True,
    ):
        self.cores = cores
        self.llc_mb = llc_mb
        self.node = node
        self._suite = suite
        self.config = config or NocConfig()
        self.duration_cycles = duration_cycles
        self.seed = seed
        self.use_fastpath = use_fastpath
        self.model = AnalyticPerformanceModel()

    @property
    def suite(self) -> WorkloadSuite:
        """Workload suite (built lazily; sweep workers never need it)."""
        if self._suite is None:
            self._suite = default_suite()
        return self._suite

    # ------------------------------------------------------------------ specs
    def point_spec(self) -> NocPointSpec:
        """The frozen per-point description shipped to sweep workers."""
        return NocPointSpec(
            cores=self.cores,
            llc_mb=self.llc_mb,
            node=self.node,
            config=self.config,
            duration_cycles=self.duration_cycles,
            seed=self.seed,
            use_fastpath=self.use_fastpath,
        )

    @classmethod
    def from_spec(cls, spec: NocPointSpec) -> "PodNocStudy":
        """Reconstitute a study from a :class:`NocPointSpec` (worker side).

        The suite stays unset (it is lazy and sweep workers never touch it).
        """
        return cls(
            cores=spec.cores,
            llc_mb=spec.llc_mb,
            node=spec.node,
            suite=None,
            config=spec.config,
            duration_cycles=spec.duration_cycles,
            seed=spec.seed,
            use_fastpath=spec.use_fastpath,
        )

    # --------------------------------------------------------------- topology
    def build_topology(self, name: str) -> NocTopology:
        """Build the named topology sized for this pod (memoized per process)."""
        return _cached_topology(name, self.cores)

    # ----------------------------------------------------------- measurements
    def active_cores_for(self, workload: WorkloadProfile) -> int:
        """Cores used by a workload (poorly scaling workloads use only 16)."""
        return min(self.cores, workload.max_cores)

    def measure_latency(
        self, topology: NocTopology, workload: WorkloadProfile, link_width_bits: "int | None" = None
    ) -> "tuple[float, float, float, float]":
        """(request latency, all-packet latency, hops, max link utilization)."""
        from repro.obs.tracer import get_tracer

        config = self.config
        if link_width_bits is not None:
            config = NocConfig(
                link_width_bits=link_width_bits,
                vcs_per_port=self.config.vcs_per_port,
                buffer_flits_per_vc=self.config.buffer_flits_per_vc,
            )
        tracer = get_tracer()
        engine = "fastpath" if self.use_fastpath else "reference"
        if tracer.enabled:
            tracer.counter(f"noc.engine.{engine}").add()
        with tracer.span(
            "noc.measure",
            category="noc",
            topology=topology.name,
            workload=workload.name,
            engine=engine,
        ):
            return self._measure_latency(topology, workload, config)

    def _measure_latency(
        self, topology: NocTopology, workload: WorkloadProfile, config: NocConfig
    ) -> "tuple[float, float, float, float]":
        """The measurement body of :meth:`measure_latency` (span-wrapped)."""
        network = NocNetwork(topology, config, use_fastpath=self.use_fastpath)
        if self.use_fastpath:
            # Array path: no Packet objects are ever materialized, and the
            # batch is shared across topologies with identical node numbering.
            injection_rate = bilateral_injection_rate(workload, per_core_ipc=0.5)
            batch = _cached_traffic_batch(
                tuple(topology.core_nodes),
                tuple(topology.llc_nodes),
                injection_rate,
                workload.snoop_fraction,
                self.seed,
                self.duration_cycles,
                self.active_cores_for(workload),
            )
            network.run_batch(batch)
        else:
            generator = BilateralTrafficGenerator(
                topology, workload, per_core_ipc=0.5, seed=self.seed
            )
            network.run(
                generator.generate(
                    duration_cycles=self.duration_cycles,
                    active_cores=self.active_cores_for(workload),
                )
            )
        by_class = network.average_latency_by_class()
        request_latency = by_class.get(MessageClass.DATA_REQUEST, network.average_latency())
        response_latency = by_class.get(MessageClass.RESPONSE, request_latency)
        # The LLC load-to-use path crosses the network twice (request out,
        # response back); the model's network term is an average one-way
        # traversal, so the effective latency is the mean of the two directions.
        # This is what exposes the serialization penalty of narrow links: with a
        # fixed area budget the flattened butterfly's responses stretch to dozens
        # of flits (Section 4.4.3).
        effective_latency = 0.5 * (request_latency + response_latency)
        return (
            effective_latency,
            network.average_latency(),
            network.average_hops(),
            network.max_link_utilization(self.duration_cycles),
        )

    def system_performance(self, workload: WorkloadProfile, network_latency: float) -> float:
        """Aggregate pod IPC for ``workload`` given a measured network latency."""
        active = self.active_cores_for(workload)
        config = SystemConfig(
            cores=active,
            core_type="ooo",
            llc_capacity_mb=self.llc_mb,
            interconnect="ideal",
            node=self.node,
        )
        base_latency = self.model.llc_access_latency(config)
        latency = LlcAccessLatency(
            bank_cycles=base_latency.bank_cycles,
            network_cycles=network_latency,
            contention_cycles=base_latency.contention_cycles,
        )
        cpi = self.model.cpi_breakdown(workload, config, latency)
        return cpi.ipc * active

    # ------------------------------------------------------------- evaluation
    def evaluate(
        self, topology_names: Sequence[str] = ("mesh", "fbfly", "nocout"),
        link_width_bits_by_topology: "dict[str, int] | None" = None,
        executor: "SweepExecutor | None" = None,
    ) -> "list[NocSimulationResult]":
        """Evaluate every (topology, workload) pair; Figure 4.6's data.

        The (topology x workload) points are independent, so they fan out over
        ``executor`` (a process pool by default for full-suite sweeps).  Serial
        and parallel execution run the same per-point worker in the same order
        and therefore produce identical result lists.
        """
        executor = executor or SweepExecutor()
        spec = self.point_spec()
        points = []
        for name in topology_names:
            width = None
            if link_width_bits_by_topology is not None:
                width = link_width_bits_by_topology.get(name)
            for workload in self.suite:
                points.append((spec, name, workload, width))
        return executor.map(_evaluate_noc_point, points)

    def normalized_performance(
        self,
        results: "list[NocSimulationResult]",
        baseline: str = "mesh",
    ) -> "dict[str, dict[str, float]]":
        """Per-workload performance normalized to ``baseline`` (Figure 4.6)."""
        by_topology: "dict[str, dict[str, float]]" = {}
        for result in results:
            by_topology.setdefault(result.topology, {})[result.workload] = result.system_ipc
        baseline_perf = by_topology[baseline]
        normalized: "dict[str, dict[str, float]]" = {}
        for topology, per_workload in by_topology.items():
            normalized[topology] = {
                workload: ipc / baseline_perf[workload]
                for workload, ipc in per_workload.items()
            }
        return normalized

    # ------------------------------------------------------------ area & power
    def area_breakdowns(
        self, topology_names: Sequence[str] = ("mesh", "fbfly", "nocout")
    ) -> "dict[str, NocAreaBreakdown]":
        """NoC area breakdowns for Figure 4.7."""
        model = NocAreaModel(self.node, self.config)
        return {name: model.breakdown(self.build_topology(name)) for name in topology_names}

    def area_normalized_widths(
        self, budget_topology: str = "nocout",
        topology_names: Sequence[str] = ("mesh", "fbfly", "nocout"),
    ) -> "dict[str, int]":
        """Link widths that fit every topology inside NOC-Out's area budget (Fig 4.8)."""
        model = NocAreaModel(self.node, self.config)
        budget = model.breakdown(self.build_topology(budget_topology)).total_mm2
        widths: "dict[str, int]" = {}
        for name in topology_names:
            if name == budget_topology:
                widths[name] = self.config.link_width_bits
            else:
                widths[name] = model.width_for_area_budget(self.build_topology(name), budget)
        return widths


def evaluate_topologies(
    cores: int = 64,
    duration_cycles: int = 6_000,
    suite: "WorkloadSuite | None" = None,
    seed: int = 1,
    use_fastpath: bool = True,
) -> "dict[str, dict[str, float]]":
    """Convenience wrapper returning Figure 4.6 (performance normalized to mesh)."""
    study = PodNocStudy(
        cores=cores,
        duration_cycles=duration_cycles,
        suite=suite,
        seed=seed,
        use_fastpath=use_fastpath,
    )
    results = study.evaluate()
    return study.normalized_performance(results)
