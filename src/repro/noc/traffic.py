"""Bilateral core-to-LLC traffic generation.

Scale-out workloads exhibit a *core-to-cache bilateral* access pattern
(Section 4.2.1): cores send requests to LLC banks and receive responses; there is
essentially no core-to-core traffic, and only ~2.7 % of LLC accesses trigger a
snoop.  The traffic generator turns a workload profile and a per-core IPC into a
stream of request/response (and occasional snoop) packets for the NoC simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.fastpath import CLASS_CODES, PacketBatch
from repro.noc.packet import MessageClass, Packet
from repro.noc.topology import NocTopology
from repro.workloads.profile import WorkloadProfile

_REQUEST = CLASS_CODES[MessageClass.DATA_REQUEST]
_SNOOP = CLASS_CODES[MessageClass.SNOOP_REQUEST]
_RESPONSE = CLASS_CODES[MessageClass.RESPONSE]


def bilateral_injection_rate(
    workload: WorkloadProfile, per_core_ipc: float, core_type: str = "ooo"
) -> float:
    """LLC accesses injected per core per cycle (the generator's rate law).

    The single definition shared by the generator, the study's memoized batch
    path, and the benchmark unit counter -- change it here and every consumer
    stays in lockstep.
    """
    apki = workload.llc_accesses_per_kilo_instruction(core_type)
    return apki / 1000.0 * per_core_ipc


@dataclass(frozen=True)
class TrafficSummary:
    """Summary of one generated traffic batch."""

    packets: int
    requests: int
    responses: int
    snoops: int
    duration_cycles: float


class BilateralTrafficGenerator:
    """Generates the request/response/snoop packet stream for one workload.

    Args:
        topology: the NoC topology packets travel over.
        workload: workload profile (LLC access rate, snoop fraction).
        per_core_ipc: sustained per-core IPC used to convert accesses per
            instruction into injection rates.
        core_type: core model name (L1 filtering differs per core).
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: NocTopology,
        workload: WorkloadProfile,
        per_core_ipc: float = 0.8,
        core_type: str = "ooo",
        seed: int = 1,
    ):
        if per_core_ipc <= 0:
            raise ValueError("per_core_ipc must be positive")
        self.topology = topology
        self.workload = workload
        self.per_core_ipc = per_core_ipc
        self.core_type = core_type
        self.seed = seed
        #: LLC accesses injected per core per cycle.
        self.injection_rate = bilateral_injection_rate(workload, per_core_ipc, core_type)

    def generate(
        self, duration_cycles: int = 20_000, active_cores: "int | None" = None
    ) -> "list[Packet]":
        """Generate all packets injected during ``duration_cycles``.

        Each LLC access produces a request packet from the core to a (uniformly
        chosen) LLC node and a response packet back after a nominal bank service
        delay; a ``snoop_fraction`` of accesses additionally produce a snoop
        packet from the LLC node to another core.

        This is the object adapter over :meth:`generate_batch` -- both views
        draw from the random stream identically, so seeded traffic is the same
        whether consumed as objects or as arrays.
        """
        return self.generate_batch(duration_cycles, active_cores).to_packets()

    def generate_batch(
        self, duration_cycles: int = 20_000, active_cores: "int | None" = None
    ) -> PacketBatch:
        """Generate the same traffic as :meth:`generate`, as a :class:`PacketBatch`.

        Emission order, packet ids, and every random draw match the historical
        per-object generator: each core draws its access count (Poisson), sorted
        injection times, LLC targets, and snoop flags, then one victim per snoop
        in arrival order.  Packets are laid out interleaved per access
        (request, response, optional snoop), exactly as the object stream was.
        """
        return generate_bilateral_batch(
            core_nodes=self.topology.core_nodes,
            llc_nodes=self.topology.llc_nodes,
            injection_rate=self.injection_rate,
            snoop_fraction=self.workload.snoop_fraction,
            seed=self.seed,
            duration_cycles=duration_cycles,
            active_cores=active_cores,
        )

    def summarize(
        self, packets: "list[Packet] | PacketBatch", duration_cycles: float
    ) -> TrafficSummary:
        """Summary statistics of a generated batch (objects or arrays)."""
        if isinstance(packets, PacketBatch):
            codes = packets.class_code
            requests = int((codes == _REQUEST).sum())
            responses = int((codes == _RESPONSE).sum())
            snoops = int((codes == _SNOOP).sum())
        else:
            requests = sum(1 for p in packets if p.message_class is MessageClass.DATA_REQUEST)
            responses = sum(1 for p in packets if p.message_class is MessageClass.RESPONSE)
            snoops = sum(1 for p in packets if p.message_class is MessageClass.SNOOP_REQUEST)
        return TrafficSummary(
            packets=len(packets),
            requests=requests,
            responses=responses,
            snoops=snoops,
            duration_cycles=duration_cycles,
        )


def generate_bilateral_batch(
    core_nodes: "list[int]",
    llc_nodes: "list[int]",
    injection_rate: float,
    snoop_fraction: float,
    seed: int,
    duration_cycles: int,
    active_cores: "int | None" = None,
) -> PacketBatch:
    """The bilateral traffic pattern as arrays (the generator's pure core).

    Module-level so callers that know the scalar inputs (rate, fraction, seed)
    can generate -- and memoize -- batches without building a topology-bound
    generator object.
    """
    if duration_cycles <= 0:
        raise ValueError("duration_cycles must be positive")
    rng = np.random.default_rng((seed, 0xABCD, duration_cycles))
    cores = core_nodes
    if active_cores is not None:
        cores = cores[:active_cores]
    llcs = llc_nodes
    bank_service = 4.0
    blocks: "list[PacketBatch]" = []
    packet_base = 0
    for core in cores:
        expected = injection_rate * duration_cycles
        count = int(rng.poisson(expected))
        times = np.sort(rng.uniform(0, duration_cycles, size=count))
        targets = rng.choice(llcs, size=count).astype(np.int64)
        snoops = rng.random(count) < snoop_fraction
        num_snoops = int(snoops.sum())
        # Victims draw one at a time, in arrival order, matching the
        # historical per-packet stream consumption.
        victims = np.array(
            [int(rng.choice(cores)) for _ in range(num_snoops)], dtype=np.int64
        )
        if count == 0:
            continue

        # Interleaved emission positions: access j emits its request at
        # slot 2*j + (snoops before j), its response right after, and its
        # snoop (if any) right after that.
        snoops_before = np.cumsum(snoops) - snoops
        request_pos = 2 * np.arange(count, dtype=np.int64) + snoops_before
        snoop_pos = request_pos[snoops] + 2
        block_len = 2 * count + num_snoops

        injection = np.empty(block_len, dtype=np.float64)
        source = np.empty(block_len, dtype=np.int64)
        destination = np.empty(block_len, dtype=np.int64)
        class_code = np.empty(block_len, dtype=np.int64)

        responses_at = times + bank_service
        injection[request_pos] = times
        injection[request_pos + 1] = responses_at
        source[request_pos] = core
        source[request_pos + 1] = targets
        destination[request_pos] = targets
        destination[request_pos + 1] = core
        class_code[request_pos] = _REQUEST
        class_code[request_pos + 1] = _RESPONSE
        if num_snoops:
            injection[snoop_pos] = responses_at[snoops]
            source[snoop_pos] = targets[snoops]
            destination[snoop_pos] = victims
            class_code[snoop_pos] = _SNOOP

        blocks.append(
            PacketBatch(
                injection_time=injection,
                source=source,
                destination=destination,
                class_code=class_code,
                # Left at 0 so the network sizes packets from its own link
                # width, exactly like the object stream.
                flits=np.zeros(block_len, dtype=np.int64),
                packet_id=packet_base + np.arange(block_len, dtype=np.int64),
            )
        )
        packet_base += block_len
    return PacketBatch.concatenate(blocks)
