"""Bilateral core-to-LLC traffic generation.

Scale-out workloads exhibit a *core-to-cache bilateral* access pattern
(Section 4.2.1): cores send requests to LLC banks and receive responses; there is
essentially no core-to-core traffic, and only ~2.7 % of LLC accesses trigger a
snoop.  The traffic generator turns a workload profile and a per-core IPC into a
stream of request/response (and occasional snoop) packets for the NoC simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.packet import MessageClass, Packet
from repro.noc.topology import NocTopology
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class TrafficSummary:
    """Summary of one generated traffic batch."""

    packets: int
    requests: int
    responses: int
    snoops: int
    duration_cycles: float


class BilateralTrafficGenerator:
    """Generates the request/response/snoop packet stream for one workload.

    Args:
        topology: the NoC topology packets travel over.
        workload: workload profile (LLC access rate, snoop fraction).
        per_core_ipc: sustained per-core IPC used to convert accesses per
            instruction into injection rates.
        core_type: core model name (L1 filtering differs per core).
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: NocTopology,
        workload: WorkloadProfile,
        per_core_ipc: float = 0.8,
        core_type: str = "ooo",
        seed: int = 1,
    ):
        if per_core_ipc <= 0:
            raise ValueError("per_core_ipc must be positive")
        self.topology = topology
        self.workload = workload
        self.per_core_ipc = per_core_ipc
        self.core_type = core_type
        self.seed = seed
        apki = workload.llc_accesses_per_kilo_instruction(core_type)
        #: LLC accesses injected per core per cycle.
        self.injection_rate = apki / 1000.0 * per_core_ipc

    def generate(
        self, duration_cycles: int = 20_000, active_cores: "int | None" = None
    ) -> "list[Packet]":
        """Generate all packets injected during ``duration_cycles``.

        Each LLC access produces a request packet from the core to a (uniformly
        chosen) LLC node and a response packet back after a nominal bank service
        delay; a ``snoop_fraction`` of accesses additionally produce a snoop
        packet from the LLC node to another core.
        """
        if duration_cycles <= 0:
            raise ValueError("duration_cycles must be positive")
        rng = np.random.default_rng((self.seed, 0xABCD, duration_cycles))
        cores = self.topology.core_nodes
        if active_cores is not None:
            cores = cores[:active_cores]
        llcs = self.topology.llc_nodes
        packets: "list[Packet]" = []
        packet_id = 0
        bank_service = 4.0
        for core in cores:
            expected = self.injection_rate * duration_cycles
            count = int(rng.poisson(expected))
            times = np.sort(rng.uniform(0, duration_cycles, size=count))
            targets = rng.choice(llcs, size=count)
            snoops = rng.random(count) < self.workload.snoop_fraction
            for t, target, makes_snoop in zip(times, targets, snoops):
                packets.append(
                    Packet(
                        source=core,
                        destination=int(target),
                        message_class=MessageClass.DATA_REQUEST,
                        injection_time=float(t),
                        packet_id=packet_id,
                    )
                )
                packet_id += 1
                packets.append(
                    Packet(
                        source=int(target),
                        destination=core,
                        message_class=MessageClass.RESPONSE,
                        injection_time=float(t) + bank_service,
                        packet_id=packet_id,
                    )
                )
                packet_id += 1
                if makes_snoop:
                    victim = int(rng.choice(cores))
                    packets.append(
                        Packet(
                            source=int(target),
                            destination=victim,
                            message_class=MessageClass.SNOOP_REQUEST,
                            injection_time=float(t) + bank_service,
                            packet_id=packet_id,
                        )
                    )
                    packet_id += 1
        return packets

    def summarize(self, packets: "list[Packet]", duration_cycles: float) -> TrafficSummary:
        """Summary statistics of a generated batch."""
        requests = sum(1 for p in packets if p.message_class is MessageClass.DATA_REQUEST)
        responses = sum(1 for p in packets if p.message_class is MessageClass.RESPONSE)
        snoops = sum(1 for p in packets if p.message_class is MessageClass.SNOOP_REQUEST)
        return TrafficSummary(
            packets=len(packets),
            requests=requests,
            responses=responses,
            snoops=snoops,
            duration_cycles=duration_cycles,
        )
