"""NoC topology builders.

A :class:`NocTopology` is a directed graph of router nodes plus a routing
function.  Three builders cover the organizations of Chapter 4:

* :func:`build_mesh` -- an ``R x C`` grid of core+LLC tiles, dimension-ordered
  (XY) routing, 3-cycle hops;
* :func:`build_flattened_butterfly` -- the same grid with full row/column
  connectivity, at most two network hops, link delay proportional to span;
* :func:`build_nocout` -- cores on either side of a central row of LLC tiles,
  reached through routing-free reduction/dispersion trees; LLC tiles are linked
  by a one-dimensional flattened butterfly.

Every node is identified by an integer id; core nodes and LLC nodes are listed
separately so the traffic generator can produce the bilateral core-to-cache
pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

import networkx as nx


@dataclass(frozen=True)
class LinkAttributes:
    """Physical attributes of one directed link."""

    latency_cycles: int
    length_mm: float


@dataclass
class NocTopology:
    """A routed NoC topology.

    Attributes:
        name: topology name ("mesh", "fbfly", "nocout").
        graph: directed graph; edges carry :class:`LinkAttributes` under ``attrs``.
        core_nodes: node ids that host cores (traffic sources/sinks).
        llc_nodes: node ids that host LLC banks (traffic destinations).
        router_pipeline_cycles: per-router pipeline depth, by node id.
        positions: (x, y) grid coordinates of each node (for link lengths).
    """

    name: str
    graph: "nx.DiGraph"
    core_nodes: "list[int]"
    llc_nodes: "list[int]"
    router_pipeline_cycles: "dict[int, int]"
    positions: "dict[int, tuple[float, float]]"
    #: optional deterministic routing function (e.g. XY dimension-order routing);
    #: falls back to a shortest path when None.
    routing: "Callable[[int, int], list[int]] | None" = None

    #: cached shortest paths (filled lazily)
    _paths: "dict[tuple[int, int], list[int]]" = field(default_factory=dict, repr=False)

    def route(self, source: int, destination: int) -> "list[int]":
        """Nodes along the route from ``source`` to ``destination`` (inclusive)."""
        key = (source, destination)
        path = self._paths.get(key)
        if path is None:
            if self.routing is not None:
                path = self.routing(source, destination)
            else:
                path = nx.shortest_path(self.graph, source, destination, weight="weight")
            self._paths[key] = path
        return path

    def link(self, a: int, b: int) -> LinkAttributes:
        """Attributes of the directed link from ``a`` to ``b``."""
        return self.graph.edges[a, b]["attrs"]

    def zero_load_latency(self, source: int, destination: int, flits: int = 1) -> float:
        """Zero-load latency of a packet: routers + links + serialization."""
        path = self.route(source, destination)
        latency = 0.0
        for a, b in zip(path[:-1], path[1:]):
            latency += self.router_pipeline_cycles.get(a, 1)
            latency += self.link(a, b).latency_cycles
        latency += self.router_pipeline_cycles.get(path[-1], 1)
        latency += max(0, flits - 1)  # serialization of the packet body
        return latency

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return self.graph.number_of_edges()

    def average_hop_count(self) -> float:
        """Average hop count over all core -> LLC pairs."""
        total, pairs = 0, 0
        for core in self.core_nodes:
            for llc in self.llc_nodes:
                total += len(self.route(core, llc)) - 1
                pairs += 1
        return total / max(1, pairs)


def _grid_dims(tiles: int) -> "tuple[int, int]":
    cols = int(math.ceil(math.sqrt(tiles)))
    rows = int(math.ceil(tiles / cols))
    return rows, cols


def build_mesh(
    cores: int = 64,
    tile_pitch_mm: float = 1.4,
    hop_latency_cycles: int = 3,
    router_pipeline_cycles: int = 2,
) -> NocTopology:
    """2D mesh of core+LLC tiles with XY (shortest-path) routing.

    Each hop costs ``hop_latency_cycles`` total (a 2-stage router plus a 1-cycle
    link, Table 4.1); the link latency carried by the edges is the hop latency
    minus the router pipeline so that zero-load latency matches the paper's
    3 cycles/hop.
    """
    rows, cols = _grid_dims(cores)
    graph = nx.DiGraph()
    positions: "dict[int, tuple[float, float]]" = {}
    link_cycles = max(1, hop_latency_cycles - router_pipeline_cycles)
    for node in range(rows * cols):
        r, c = divmod(node, cols)
        positions[node] = (c, r)
        graph.add_node(node)
    for node in range(rows * cols):
        r, c = divmod(node, cols)
        for dr, dc in ((0, 1), (1, 0), (0, -1), (-1, 0)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < rows and 0 <= nc < cols:
                neighbour = nr * cols + nc
                attrs = LinkAttributes(latency_cycles=link_cycles, length_mm=tile_pitch_mm)
                graph.add_edge(node, neighbour, attrs=attrs, weight=1.0)
    nodes = list(range(rows * cols))[:cores]

    def xy_route(source: int, destination: int) -> "list[int]":
        """Dimension-ordered (X then Y) routing -- balanced and deadlock-free."""
        sr, sc = divmod(source, cols)
        dr, dc = divmod(destination, cols)
        path = [source]
        r, c = sr, sc
        while c != dc:
            c += 1 if dc > c else -1
            path.append(r * cols + c)
        while r != dr:
            r += 1 if dr > r else -1
            path.append(r * cols + c)
        return path

    return NocTopology(
        name="mesh",
        graph=graph,
        core_nodes=nodes,
        llc_nodes=nodes,  # every tile holds an LLC slice
        router_pipeline_cycles={n: router_pipeline_cycles for n in graph.nodes},
        positions=positions,
        routing=xy_route,
    )


def build_flattened_butterfly(
    cores: int = 64,
    tile_pitch_mm: float = 1.4,
    router_pipeline_cycles: int = 3,
    tiles_per_cycle: float = 2.0,
) -> NocTopology:
    """Flattened butterfly: full connectivity along every row and column.

    Link latency grows with the span of the link (a flit covers up to
    ``tiles_per_cycle`` tiles per cycle, Table 4.1); routing needs at most two
    hops.
    """
    rows, cols = _grid_dims(cores)
    graph = nx.DiGraph()
    positions: "dict[int, tuple[float, float]]" = {}
    for node in range(rows * cols):
        r, c = divmod(node, cols)
        positions[node] = (c, r)
        graph.add_node(node)
    for node in range(rows * cols):
        r, c = divmod(node, cols)
        for other_c in range(cols):
            if other_c != c:
                span = abs(other_c - c)
                latency = max(1, int(math.ceil(span / tiles_per_cycle)))
                attrs = LinkAttributes(latency_cycles=latency, length_mm=span * tile_pitch_mm)
                graph.add_edge(node, r * cols + other_c, attrs=attrs, weight=1.0)
        for other_r in range(rows):
            if other_r != r:
                span = abs(other_r - r)
                latency = max(1, int(math.ceil(span / tiles_per_cycle)))
                attrs = LinkAttributes(latency_cycles=latency, length_mm=span * tile_pitch_mm)
                graph.add_edge(node, other_r * cols + c, attrs=attrs, weight=1.0)
    nodes = list(range(rows * cols))[:cores]

    def row_column_route(source: int, destination: int) -> "list[int]":
        """At most two hops: one along the row, then one along the column."""
        sr, sc = divmod(source, cols)
        dr, dc = divmod(destination, cols)
        path = [source]
        if sc != dc:
            path.append(sr * cols + dc)
        if sr != dr:
            path.append(dr * cols + dc)
        return path

    return NocTopology(
        name="fbfly",
        graph=graph,
        core_nodes=nodes,
        llc_nodes=nodes,
        router_pipeline_cycles={n: router_pipeline_cycles for n in graph.nodes},
        positions=positions,
        routing=row_column_route,
    )


def build_nocout(
    cores: int = 64,
    llc_tiles: int = 8,
    tile_pitch_mm: float = 1.4,
    tree_hop_cycles: int = 1,
    llc_router_pipeline_cycles: int = 3,
    tiles_per_cycle: float = 2.0,
) -> NocTopology:
    """NOC-Out: reduction/dispersion trees into a central flattened-butterfly LLC row.

    Core nodes are numbered ``0 .. cores-1``; LLC nodes are ``cores .. cores +
    llc_tiles - 1``.  Cores are split into columns above and below the LLC row;
    each column is chained into the LLC tile at its foot (a reduction tree in one
    direction, a dispersion tree in the other -- modelled as symmetric 1-cycle
    links).  LLC tiles are fully connected to each other.
    """
    if cores % llc_tiles != 0:
        raise ValueError("cores must be a multiple of llc_tiles")
    cores_per_tree = cores // llc_tiles // 2  # trees above and below the LLC row
    cores_per_tree = max(1, cores_per_tree)
    graph = nx.DiGraph()
    positions: "dict[int, tuple[float, float]]" = {}
    router_pipeline: "dict[int, int]" = {}

    llc_nodes = [cores + i for i in range(llc_tiles)]
    llc_row_y = cores_per_tree
    for i, llc in enumerate(llc_nodes):
        graph.add_node(llc)
        positions[llc] = (i, llc_row_y)
        router_pipeline[llc] = llc_router_pipeline_cycles

    # Reduction/dispersion trees: chains of cores feeding each LLC tile from
    # above and below (Figure 4.4).
    core_id = 0
    for i, llc in enumerate(llc_nodes):
        for side in (-1, +1):
            previous = llc
            for depth in range(1, cores_per_tree + 1):
                node = core_id
                core_id += 1
                if core_id > cores:
                    break
                graph.add_node(node)
                positions[node] = (i, llc_row_y + side * depth)
                router_pipeline[node] = tree_hop_cycles
                attrs = LinkAttributes(latency_cycles=tree_hop_cycles, length_mm=tile_pitch_mm)
                graph.add_edge(node, previous, attrs=attrs, weight=1.0)
                graph.add_edge(previous, node, attrs=attrs, weight=1.0)
                previous = node

    # One-dimensional flattened butterfly among the LLC tiles.
    for a_idx, a in enumerate(llc_nodes):
        for b_idx, b in enumerate(llc_nodes):
            if a == b:
                continue
            span = abs(a_idx - b_idx)
            latency = max(1, int(math.ceil(span / tiles_per_cycle)))
            attrs = LinkAttributes(latency_cycles=latency, length_mm=span * tile_pitch_mm)
            graph.add_edge(a, b, attrs=attrs, weight=1.0)

    core_nodes = list(range(cores))
    return NocTopology(
        name="nocout",
        graph=graph,
        core_nodes=core_nodes,
        llc_nodes=llc_nodes,
        router_pipeline_cycles=router_pipeline,
        positions=positions,
    )


TOPOLOGY_BUILDERS: "dict[str, Callable[..., NocTopology]]" = {
    "mesh": build_mesh,
    "fbfly": build_flattened_butterfly,
    "flattened_butterfly": build_flattened_butterfly,
    "nocout": build_nocout,
}
