"""Packet-level network-on-chip simulator and area/energy models (Chapter 4).

The NOC-Out study compares three pod interconnects for a 64-core pod at 32nm:

* a 2D **mesh** (the tiled baseline, 3 cycles per hop),
* a richly connected **flattened butterfly** (at most two hops, expensive
  many-ported routers and long links), and
* **NOC-Out** (reduction/dispersion trees into a central LLC row linked by a
  small one-dimensional flattened butterfly).

This package provides a packet-level simulator (topology graphs, per-port router
occupancy, pipeline and serialization delays) driven by the bilateral
core-to-LLC traffic of scale-out workloads, plus the ORION-style area and energy
accounting used for Figures 4.7 and 4.8.
"""

from repro.noc.packet import Packet, MessageClass
from repro.noc.fastpath import CompiledTopology, PacketBatch
from repro.noc.topology import NocTopology, build_mesh, build_flattened_butterfly, build_nocout
from repro.noc.network import NocNetwork, NocConfig
from repro.noc.traffic import BilateralTrafficGenerator
from repro.noc.metrics import NocAreaModel, NocAreaBreakdown, NocPowerModel
from repro.noc.simulation import NocPointSpec, NocSimulationResult, PodNocStudy, evaluate_topologies

__all__ = [
    "Packet",
    "MessageClass",
    "CompiledTopology",
    "PacketBatch",
    "NocPointSpec",
    "NocTopology",
    "build_mesh",
    "build_flattened_butterfly",
    "build_nocout",
    "NocNetwork",
    "NocConfig",
    "BilateralTrafficGenerator",
    "NocAreaModel",
    "NocAreaBreakdown",
    "NocPowerModel",
    "NocSimulationResult",
    "PodNocStudy",
    "evaluate_topologies",
]
