"""Structure-of-arrays fast path for the packet-level NoC simulator.

The reference implementation (:class:`~repro.noc.network.NocNetwork` with
``use_fastpath=False``) routes one ``Packet`` object at a time: every hop costs
a networkx edge lookup, a dict probe for the router pipeline depth, and a
``LinkState`` attribute update.  Under sweep traffic those per-object costs
dominate the wall clock.  This module keeps the *model* identical but changes
the *representation*:

* :class:`CompiledTopology` flattens a :class:`~repro.noc.topology.NocTopology`
  into integer arrays -- a dense link index, per-hop ``(pipeline, link,
  latency)`` triples for every (source, destination) pair actually routed, and
  the destination pipeline depth -- so the inner loop touches no graphs and no
  dicts of objects.
* :class:`PacketBatch` carries a whole traffic batch as parallel numpy arrays
  (injection time, source, destination, message class, flits, packet id)
  instead of a list of ``Packet`` objects, with a lazy adapter back to objects
  for callers that want them.
* :func:`process_batch` replays the batch in injection-time order through a
  tight loop over preallocated link-state arrays and returns per-packet arrival
  times plus per-link occupancy counters.

Bit-exactness contract: the kernel performs *the same floating-point
operations in the same order* as ``NocNetwork.send`` -- per-hop pipeline add,
``max`` against the link's next-free time, link-latency add, then destination
pipeline and serialization adds as two separate additions.  Statistics that sum
floats use ``np.cumsum(...)[-1]``, whose strictly sequential accumulation
matches a left-to-right Python ``sum`` bit for bit (``np.sum`` does not: it
sums pairwise).  The equivalence suite in ``tests/test_noc_fastpath.py`` holds
both paths to exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.noc.packet import MessageClass, Packet
from repro.noc.topology import NocTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.noc.network import NocConfig

#: Stable integer codes for the message classes (array representation).
CLASS_ORDER: "tuple[MessageClass, ...]" = (
    MessageClass.DATA_REQUEST,
    MessageClass.SNOOP_REQUEST,
    MessageClass.RESPONSE,
)
CLASS_CODES: "dict[MessageClass, int]" = {cls: i for i, cls in enumerate(CLASS_ORDER)}


@dataclass(frozen=True)
class PacketBatch:
    """A traffic batch as a structure of arrays (one row per packet).

    Attributes:
        injection_time: injection cycle per packet (float64).
        source: source node id per packet (int64).
        destination: destination node id per packet (int64).
        class_code: message-class code per packet (see ``CLASS_CODES``).
        flits: packet length in flits; 0 means "sized by the network config",
            exactly like ``Packet.flits``.
        packet_id: unique id per packet (the run order tie-breaker).
    """

    injection_time: np.ndarray
    source: np.ndarray
    destination: np.ndarray
    class_code: np.ndarray
    flits: np.ndarray
    packet_id: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.injection_time)
        for name in ("source", "destination", "class_code", "flits", "packet_id"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"PacketBatch column {name!r} has mismatched length")

    def __len__(self) -> int:
        return len(self.injection_time)

    @classmethod
    def from_packets(cls, packets: "Sequence[Packet]") -> "PacketBatch":
        """Column-ify a list of ``Packet`` objects (the reverse adapter)."""
        return cls(
            injection_time=np.array([p.injection_time for p in packets], dtype=np.float64),
            source=np.array([p.source for p in packets], dtype=np.int64),
            destination=np.array([p.destination for p in packets], dtype=np.int64),
            class_code=np.array([CLASS_CODES[p.message_class] for p in packets], dtype=np.int64),
            flits=np.array([p.flits for p in packets], dtype=np.int64),
            packet_id=np.array([p.packet_id for p in packets], dtype=np.int64),
        )

    def to_packets(self) -> "list[Packet]":
        """Materialize ``Packet`` objects, in batch (emission) order."""
        return [
            Packet(
                source=src,
                destination=dst,
                message_class=CLASS_ORDER[code],
                injection_time=t,
                flits=flits,
                packet_id=pid,
            )
            for src, dst, code, t, flits, pid in zip(
                self.source.tolist(),
                self.destination.tolist(),
                self.class_code.tolist(),
                self.injection_time.tolist(),
                self.flits.tolist(),
                self.packet_id.tolist(),
            )
        ]

    @classmethod
    def concatenate(cls, batches: "Iterable[PacketBatch]") -> "PacketBatch":
        """Stack several batches into one (emission order preserved)."""
        parts = list(batches)
        if not parts:
            return cls(*(np.empty(0, dtype=d) for d in (np.float64,) + (np.int64,) * 5))
        return cls(
            injection_time=np.concatenate([b.injection_time for b in parts]),
            source=np.concatenate([b.source for b in parts]),
            destination=np.concatenate([b.destination for b in parts]),
            class_code=np.concatenate([b.class_code for b in parts]),
            flits=np.concatenate([b.flits for b in parts]),
            packet_id=np.concatenate([b.packet_id for b in parts]),
        )


@dataclass(frozen=True)
class CompiledRoute:
    """One (source, destination) pair's route in flat form.

    ``hops`` holds one ``(router_pipeline, link_index, link_latency)`` triple
    per traversed link, in path order; ``tail_pipeline`` is the destination
    router's pipeline depth.
    """

    hops: "tuple[tuple[int, int, int], ...]"
    tail_pipeline: int

    @property
    def num_hops(self) -> int:
        """Number of links the route traverses."""
        return len(self.hops)


class CompiledTopology:
    """A :class:`NocTopology` flattened into integer arrays for the kernel.

    Link indices follow the graph's edge iteration order (the same order the
    reference path builds its ``LinkState`` dict in), and routes are compiled
    lazily per (source, destination) pair -- only the pairs a traffic pattern
    actually uses pay the routing cost, and the underlying topology's own route
    cache keeps recompilation across networks cheap.
    """

    def __init__(self, topology: NocTopology):
        self.topology = topology
        self.edge_index: "dict[tuple[int, int], int]" = {
            (a, b): i for i, (a, b) in enumerate(topology.graph.edges)
        }
        self.num_links = len(self.edge_index)
        self._routes: "dict[tuple[int, int], CompiledRoute]" = {}

    def route_for(self, source: int, destination: int) -> CompiledRoute:
        """The compiled route for one pair (compiled on first use)."""
        key = (source, destination)
        route = self._routes.get(key)
        if route is None:
            topology = self.topology
            path = topology.route(source, destination)
            pipelines = topology.router_pipeline_cycles
            hops = tuple(
                (
                    pipelines.get(a, 1),
                    self.edge_index[(a, b)],
                    topology.link(a, b).latency_cycles,
                )
                for a, b in zip(path[:-1], path[1:])
            )
            route = CompiledRoute(hops=hops, tail_pipeline=pipelines.get(path[-1], 1))
            self._routes[key] = route
        return route


def compile_topology(topology: NocTopology) -> CompiledTopology:
    """The shared :class:`CompiledTopology` for ``topology`` (one per instance).

    Cached on the topology object itself so every network over the same
    topology -- and every sweep point in the same process -- reuses the
    compiled routes instead of re-flattening them.
    """
    compiled = topology.__dict__.get("_fastpath_compiled")
    if compiled is None:
        compiled = CompiledTopology(topology)
        topology.__dict__["_fastpath_compiled"] = compiled
    return compiled


@dataclass
class BatchResult:
    """Per-packet outcome of one :func:`process_batch` call (batch order)."""

    arrival_time: np.ndarray
    latency: np.ndarray
    hops: np.ndarray
    flits: np.ndarray
    class_code: np.ndarray
    #: indices that sort the batch by (injection_time, packet_id) -- the
    #: delivery order, which sequential-sum statistics must follow.
    order: np.ndarray

    def __len__(self) -> int:
        return len(self.arrival_time)


def flit_table(config: "NocConfig") -> np.ndarray:
    """Flits per message-class code at ``config``'s link width."""
    return np.array([config.flits_for(cls) for cls in CLASS_ORDER], dtype=np.int64)


def process_batch(
    compiled: CompiledTopology,
    batch: PacketBatch,
    config: "NocConfig",
    next_free: "list[float]",
    flits_carried: "list[int]",
) -> BatchResult:
    """Deliver ``batch`` over ``compiled``, mutating the link-state lists.

    ``next_free`` and ``flits_carried`` are the network's persistent per-link
    occupancy state (one slot per link, ``compiled.edge_index`` order); they
    are updated in place so repeated batches see earlier traffic, exactly like
    repeated ``send`` calls on the reference path.
    """
    n = len(batch)
    resolved = np.where(
        batch.flits > 0, batch.flits, flit_table(config)[batch.class_code]
    )
    # Delivery order: injection time, ties broken by packet id (lexsort keys
    # are significance-last, and both sorts are stable) -- identical to the
    # reference path's sorted(key=(injection_time, packet_id)).
    order = np.lexsort((batch.packet_id, batch.injection_time))

    # Compile each unique (source, destination) pair once, then address routes
    # by a small per-batch integer code so the packet loop never touches a
    # dict or builds a tuple key.
    num_nodes = max(compiled.topology.graph.number_of_nodes(), 1)
    pair_key = batch.source * num_nodes + batch.destination
    unique_pairs, pair_code = np.unique(pair_key, return_inverse=True)
    routes = [
        compiled.route_for(int(pair) // num_nodes, int(pair) % num_nodes)
        for pair in unique_pairs
    ]
    hops_by_code = [route.hops for route in routes]
    tail_by_code = [route.tail_pipeline for route in routes]

    injections = batch.injection_time.tolist()
    codes = pair_code.tolist()
    flits_list = resolved.tolist()
    arrivals = [0.0] * n

    for index in order.tolist():
        time = injections[index]
        flits = flits_list[index]
        code = codes[index]
        for pipeline, link, latency in hops_by_code[code]:
            time += pipeline
            free = next_free[link]
            start = time if time >= free else free
            next_free[link] = start + flits
            flits_carried[link] += flits
            time = start + latency
        # Same two separate additions as the reference path (float addition is
        # not associative; the order is part of the bit-exactness contract).
        time += tail_by_code[code]
        time += flits - 1
        arrivals[index] = time

    arrival_time = np.array(arrivals, dtype=np.float64)
    return BatchResult(
        arrival_time=arrival_time,
        latency=arrival_time - batch.injection_time,
        hops=np.array([route.num_hops for route in routes], dtype=np.int64)[pair_code],
        flits=resolved,
        class_code=batch.class_code,
        order=order,
    )


def sequential_sum(values: np.ndarray, initial: float = 0.0) -> float:
    """Left-to-right float sum from ``initial``, bit-identical to a Python
    running sum over the same values.

    ``np.cumsum`` accumulates strictly sequentially, unlike ``np.sum``'s
    pairwise reduction, so seeding the scan with the current running total
    reproduces ``(((initial + v0) + v1) + ...)`` exactly -- the accumulation
    order the reference path's per-packet statistics use.
    """
    if len(values) == 0:
        return initial
    return float(np.cumsum(np.concatenate(([initial], values)))[-1])
