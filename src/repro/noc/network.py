"""Packet-level NoC timing simulation.

The network model routes each packet along its topology path, charging router
pipeline delay, link traversal delay, serialization delay, and contention delay.
Contention is modelled at output-port granularity: each directed link can accept
one flit per cycle, so a packet occupies the link for ``flits`` cycles and later
packets queue behind it.  This captures the first-order effects the paper relies
on (zero-load latency differences between topologies, serialization penalties of
narrow links, mild queueing at hot spots) without simulating individual flits and
credits.

Two execution paths produce bit-identical results (see
``tests/test_noc_fastpath.py``):

* the **fast path** (default) compiles the topology into flat arrays once and
  drives packets -- individually via :meth:`NocNetwork.send` or wholesale via
  :meth:`NocNetwork.run_batch` on a :class:`~repro.noc.fastpath.PacketBatch` --
  through :mod:`repro.noc.fastpath`'s tight kernel;
* the **reference path** (``use_fastpath=False``) walks the networkx graph per
  packet, exactly as the original implementation did.

Latency statistics are maintained as running (sum, count) pairs updated at
delivery time, so collection is O(1) memory per message class on both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.noc.fastpath import (
    CLASS_ORDER,
    BatchResult,
    PacketBatch,
    compile_topology,
    process_batch,
    sequential_sum,
)
from repro.noc.packet import MessageClass, Packet
from repro.noc.topology import NocTopology


@dataclass(frozen=True)
class NocConfig:
    """Operating parameters of the simulated network.

    Attributes:
        link_width_bits: flit width; response packets carrying a 64-byte line are
            ``512 / link_width_bits + 1`` flits long.
        vcs_per_port: virtual channels per port (per message class); only used by
            the area/power models, the timing model resolves deadlock by
            construction (responses are consumed unconditionally).
        buffer_flits_per_vc: buffer depth per VC (area/power models).
    """

    link_width_bits: int = 128
    vcs_per_port: int = 3
    buffer_flits_per_vc: int = 5

    def flits_for(self, message_class: MessageClass) -> int:
        """Packet length in flits for ``message_class`` at this link width."""
        if message_class is MessageClass.RESPONSE:
            payload_bits = 64 * 8
        else:
            payload_bits = 0
        return 1 + -(-payload_bits // self.link_width_bits)  # ceil division


@dataclass
class LinkState:
    """Occupancy bookkeeping for one directed link (reference path)."""

    next_free: float = 0.0
    flits_carried: int = 0
    busy_cycles: float = 0.0


class NocNetwork:
    """Packet-level timing model over a :class:`NocTopology`.

    Args:
        topology: the routed topology packets travel over.
        config: operating parameters (link width, VCs).
        use_fastpath: drive timing through the compiled structure-of-arrays
            kernel (default).  ``False`` selects the original per-packet
            graph-walking implementation; both produce identical results.
    """

    def __init__(
        self,
        topology: NocTopology,
        config: "NocConfig | None" = None,
        use_fastpath: bool = True,
    ):
        self.topology = topology
        self.config = config or NocConfig()
        self.use_fastpath = use_fastpath
        self.delivered: "list[Packet]" = []
        # Running statistics (O(1) memory per class), updated at delivery time.
        self._delivered_count = 0
        self._latency_sum = 0.0
        self._hops_sum = 0
        self._class_sums: "dict[MessageClass, list]" = {}
        if use_fastpath:
            self._compiled = compile_topology(topology)
            self._next_free: "list[float]" = [0.0] * self._compiled.num_links
            self._flits_carried: "list[int]" = [0] * self._compiled.num_links
            self._links = None
        else:
            self._compiled = None
            self._links: "dict[tuple[int, int], LinkState] | None" = {
                (a, b): LinkState() for a, b in topology.graph.edges
            }

    # ----------------------------------------------------------------- timing
    def send(self, packet: Packet) -> float:
        """Route ``packet`` through the network; returns its arrival time."""
        if packet.flits <= 0:
            packet.flits = self.config.flits_for(packet.message_class)
        if packet.flits <= 0:  # pragma: no cover - defensive
            packet.flits = packet.default_flits()
        if self.use_fastpath:
            time, hops = self._send_fast(packet)
        else:
            time, hops = self._send_reference(packet)
        packet.arrival_time = time
        packet.hops = hops
        self.delivered.append(packet)
        self._record(packet.message_class, time - packet.injection_time, hops)
        return time

    def _send_fast(self, packet: Packet) -> "tuple[float, int]":
        """One packet through the compiled kernel's per-hop recurrence."""
        route = self._compiled.route_for(packet.source, packet.destination)
        next_free = self._next_free
        flits_carried = self._flits_carried
        flits = packet.flits
        time = packet.injection_time
        for pipeline, link, latency in route.hops:
            time += pipeline
            free = next_free[link]
            start = time if time >= free else free
            next_free[link] = start + flits
            flits_carried[link] += flits
            time = start + latency
        time += route.tail_pipeline
        time += flits - 1
        return time, route.num_hops

    def _send_reference(self, packet: Packet) -> "tuple[float, int]":
        """The original per-packet graph walk (escape hatch)."""
        path = self.topology.route(packet.source, packet.destination)
        time = packet.injection_time
        for a, b in zip(path[:-1], path[1:]):
            # Router pipeline at the upstream node.
            time += self.topology.router_pipeline_cycles.get(a, 1)
            link = self._links[(a, b)]
            # Wait for the link if an earlier packet still occupies it.
            start = max(time, link.next_free)
            occupancy = packet.flits  # one flit per cycle
            link.next_free = start + occupancy
            link.flits_carried += packet.flits
            link.busy_cycles += occupancy
            time = start + self.topology.link(a, b).latency_cycles
        # Serialization: the tail flit arrives packet.flits - 1 cycles after the head.
        time += self.topology.router_pipeline_cycles.get(path[-1], 1)
        time += packet.flits - 1
        return time, len(path) - 1

    def run(self, packets: "Iterable[Packet] | PacketBatch") -> "list[Packet]":
        """Send ``packets`` in injection-time order and return the delivered list.

        A :class:`PacketBatch` is delivered through :meth:`run_batch` (no
        ``Packet`` objects are materialized; the returned list only holds
        previously object-delivered packets).
        """
        from repro.obs.tracer import get_tracer

        if isinstance(packets, PacketBatch):
            self.run_batch(packets)
            return self.delivered
        ordered = sorted(packets, key=lambda p: (p.injection_time, p.packet_id))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("noc.packets").add(len(ordered))
        for packet in ordered:
            self.send(packet)
        return self.delivered

    def run_batch(self, batch: PacketBatch) -> BatchResult:
        """Deliver a whole :class:`PacketBatch` through the array kernel.

        On the reference path the batch is materialized into objects and
        replayed through :meth:`run`, so the escape hatch accepts batches too.
        Statistics accumulate into the same running sums :meth:`send` feeds,
        in delivery order, keeping the two paths bit-identical.
        """
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("noc.batches").add()
        if not self.use_fastpath:
            delivered_before = len(self.delivered)
            self.run(batch.to_packets())
            return _batch_result_from_packets(self.delivered[delivered_before:], batch)
        if tracer.enabled:
            tracer.counter("noc.packets").add(len(batch))
        result = process_batch(
            self._compiled, batch, self.config, self._next_free, self._flits_carried
        )
        # Sequential sums in delivery order, *seeded with the current running
        # sum*, match the reference path's per-packet accumulation bit for bit
        # even across multiple batches or mixed send/run_batch usage.
        ordered_latency = result.latency[result.order]
        ordered_codes = result.class_code[result.order]
        self._latency_sum = sequential_sum(ordered_latency, initial=self._latency_sum)
        self._hops_sum += int(result.hops.sum())
        self._delivered_count += len(batch)
        for code, cls in enumerate(CLASS_ORDER):
            mask = ordered_codes == code
            count = int(mask.sum())
            if count == 0:
                continue
            sums = self._class_sums.setdefault(cls, [0.0, 0])
            sums[0] = sequential_sum(ordered_latency[mask], initial=sums[0])
            sums[1] += count
        return result

    def _record(self, message_class: MessageClass, latency: float, hops: int) -> None:
        self._delivered_count += 1
        self._latency_sum += latency
        self._hops_sum += hops
        sums = self._class_sums.setdefault(message_class, [0.0, 0])
        sums[0] += latency
        sums[1] += 1

    # ------------------------------------------------------------------ stats
    def average_latency(self) -> float:
        """Average end-to-end packet latency."""
        if self._delivered_count == 0:
            return 0.0
        return self._latency_sum / self._delivered_count

    def average_latency_by_class(self) -> "dict[MessageClass, float]":
        """Average latency per message class (running sums; O(1) memory)."""
        return {cls: sums[0] / sums[1] for cls, sums in self._class_sums.items()}

    def average_hops(self) -> float:
        """Average hop count of delivered packets."""
        if self._delivered_count == 0:
            return 0.0
        return self._hops_sum / self._delivered_count

    def total_flit_hops(self) -> int:
        """Total flit-hops carried (the energy model's activity measure)."""
        if self.use_fastpath:
            return sum(self._flits_carried)
        return sum(state.flits_carried for state in self._links.values())

    def max_link_utilization(self, elapsed_cycles: float) -> float:
        """Utilization of the busiest link (congestion indicator)."""
        if elapsed_cycles <= 0:
            return 0.0
        if self.use_fastpath:
            if not self._flits_carried:
                return 0.0
            # Busy cycles equal flits carried: every traversal occupies the
            # link for exactly one cycle per flit.
            busiest = float(max(self._flits_carried))
        else:
            if not self._links:
                return 0.0
            busiest = max(s.busy_cycles for s in self._links.values())
        return min(1.0, busiest / elapsed_cycles)


def _batch_result_from_packets(
    packets: "Sequence[Packet]", batch: PacketBatch
) -> BatchResult:
    """Assemble a :class:`BatchResult` from object-delivered packets.

    ``packets`` arrive in delivery order; the result columns follow batch
    order, re-aligned through the (unique) packet ids.
    """
    by_id = {p.packet_id: p for p in packets}
    packets = [by_id[pid] for pid in batch.packet_id.tolist()]
    arrival = np.array([p.arrival_time for p in packets], dtype=np.float64)
    return BatchResult(
        arrival_time=arrival,
        latency=arrival - batch.injection_time,
        hops=np.array([p.hops for p in packets], dtype=np.int64),
        flits=np.array([p.flits for p in packets], dtype=np.int64),
        class_code=batch.class_code,
        order=np.lexsort((batch.packet_id, batch.injection_time)),
    )
