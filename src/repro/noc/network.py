"""Packet-level NoC timing simulation.

The network model routes each packet along its topology path, charging router
pipeline delay, link traversal delay, serialization delay, and contention delay.
Contention is modelled at output-port granularity: each directed link can accept
one flit per cycle, so a packet occupies the link for ``flits`` cycles and later
packets queue behind it.  This captures the first-order effects the paper relies
on (zero-load latency differences between topologies, serialization penalties of
narrow links, mild queueing at hot spots) without simulating individual flits and
credits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.noc.packet import MessageClass, Packet
from repro.noc.topology import NocTopology


@dataclass(frozen=True)
class NocConfig:
    """Operating parameters of the simulated network.

    Attributes:
        link_width_bits: flit width; response packets carrying a 64-byte line are
            ``512 / link_width_bits + 1`` flits long.
        vcs_per_port: virtual channels per port (per message class); only used by
            the area/power models, the timing model resolves deadlock by
            construction (responses are consumed unconditionally).
        buffer_flits_per_vc: buffer depth per VC (area/power models).
    """

    link_width_bits: int = 128
    vcs_per_port: int = 3
    buffer_flits_per_vc: int = 5

    def flits_for(self, message_class: MessageClass) -> int:
        """Packet length in flits for ``message_class`` at this link width."""
        if message_class is MessageClass.RESPONSE:
            payload_bits = 64 * 8
        else:
            payload_bits = 0
        return 1 + -(-payload_bits // self.link_width_bits)  # ceil division


@dataclass
class LinkState:
    """Occupancy bookkeeping for one directed link."""

    next_free: float = 0.0
    flits_carried: int = 0
    busy_cycles: float = 0.0


class NocNetwork:
    """Packet-level timing model over a :class:`NocTopology`."""

    def __init__(self, topology: NocTopology, config: "NocConfig | None" = None):
        self.topology = topology
        self.config = config or NocConfig()
        self._links: "dict[tuple[int, int], LinkState]" = {
            (a, b): LinkState() for a, b in topology.graph.edges
        }
        self.delivered: "list[Packet]" = []

    # ----------------------------------------------------------------- timing
    def send(self, packet: Packet) -> float:
        """Route ``packet`` through the network; returns its arrival time."""
        if packet.flits <= 0:
            packet.flits = self.config.flits_for(packet.message_class)
        if packet.flits <= 0:  # pragma: no cover - defensive
            packet.flits = packet.default_flits()
        path = self.topology.route(packet.source, packet.destination)
        time = packet.injection_time
        for a, b in zip(path[:-1], path[1:]):
            # Router pipeline at the upstream node.
            time += self.topology.router_pipeline_cycles.get(a, 1)
            link = self._links[(a, b)]
            # Wait for the link if an earlier packet still occupies it.
            start = max(time, link.next_free)
            occupancy = packet.flits  # one flit per cycle
            link.next_free = start + occupancy
            link.flits_carried += packet.flits
            link.busy_cycles += occupancy
            time = start + self.topology.link(a, b).latency_cycles
        # Serialization: the tail flit arrives packet.flits - 1 cycles after the head.
        time += self.topology.router_pipeline_cycles.get(path[-1], 1)
        time += packet.flits - 1
        packet.arrival_time = time
        packet.hops = len(path) - 1
        self.delivered.append(packet)
        return time

    def run(self, packets: Iterable[Packet]) -> "list[Packet]":
        """Send ``packets`` in injection-time order and return the delivered list."""
        ordered = sorted(packets, key=lambda p: (p.injection_time, p.packet_id))
        for packet in ordered:
            self.send(packet)
        return self.delivered

    # ------------------------------------------------------------------ stats
    def average_latency(self) -> float:
        """Average end-to-end packet latency."""
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)

    def average_latency_by_class(self) -> "dict[MessageClass, float]":
        """Average latency per message class."""
        sums: "dict[MessageClass, list[float]]" = {}
        for packet in self.delivered:
            sums.setdefault(packet.message_class, []).append(packet.latency)
        return {cls: sum(v) / len(v) for cls, v in sums.items()}

    def average_hops(self) -> float:
        """Average hop count of delivered packets."""
        if not self.delivered:
            return 0.0
        return sum(p.hops for p in self.delivered) / len(self.delivered)

    def total_flit_hops(self) -> int:
        """Total flit-hops carried (the energy model's activity measure)."""
        return sum(state.flits_carried for state in self._links.values())

    def max_link_utilization(self, elapsed_cycles: float) -> float:
        """Utilization of the busiest link (congestion indicator)."""
        if elapsed_cycles <= 0 or not self._links:
            return 0.0
        return min(1.0, max(s.busy_cycles for s in self._links.values()) / elapsed_cycles)
