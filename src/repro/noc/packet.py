"""Packet and message-class definitions for the NoC simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MessageClass(enum.Enum):
    """Coherence message classes (three classes guarantee protocol deadlock freedom).

    NOC-Out's reduction trees only ever carry requests and responses; snoop
    requests originate at the directory nodes in the LLC region (Section 4.2.2).
    """

    DATA_REQUEST = "data_request"
    SNOOP_REQUEST = "snoop_request"
    RESPONSE = "response"


#: Flit payload sizes per message class for 128-bit links: a request/snoop is a
#: single head flit; a response carries a 64-byte cache line (4 flits of payload
#: plus the head flit).
FLITS_BY_CLASS = {
    MessageClass.DATA_REQUEST: 1,
    MessageClass.SNOOP_REQUEST: 1,
    MessageClass.RESPONSE: 5,
}


@dataclass
class Packet:
    """One network packet.

    Attributes:
        source: source node id.
        destination: destination node id.
        message_class: coherence message class (selects the virtual channel).
        injection_time: cycle at which the packet enters the network interface.
        flits: packet length in flits (derived from the message class and link
            width when omitted).
        packet_id: unique id (assigned by the traffic generator).
    """

    source: int
    destination: int
    message_class: MessageClass
    injection_time: float
    #: Packet length in flits.  Left at 0 by the traffic generator so the network
    #: sizes it from its own link width (narrow links mean longer packets).
    flits: int = 0
    packet_id: int = -1
    arrival_time: float = field(default=-1.0)
    hops: int = field(default=0)

    def default_flits(self) -> int:
        """Packet length assuming the nominal 128-bit links."""
        return FLITS_BY_CLASS[self.message_class]

    @property
    def latency(self) -> float:
        """End-to-end latency (valid after delivery)."""
        if self.arrival_time < 0:
            raise ValueError("packet has not been delivered yet")
        return self.arrival_time - self.injection_time
