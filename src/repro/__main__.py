"""``python -m repro``: drive the experiment runtime from the command line."""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
