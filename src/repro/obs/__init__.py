"""Runtime observability: tracing spans, counters, trace export, run ledger.

The package instruments the repo's hot layers (cache, executor, simulators,
search, report validation) without perturbing them: the process-wide default
tracer is a no-op whose overhead is a single attribute check, and enabling a
real tracer only *observes* -- simulation results stay bitwise identical.

Entry points:

* :func:`~repro.obs.tracer.get_tracer` / :func:`~repro.obs.tracer.use_tracer`
  -- the process-wide tracer the instrumented layers consult.
* :func:`~repro.obs.chrome.write_chrome_trace` -- Chrome-trace/Perfetto JSON
  (the CLI's ``--trace out.json``).
* :func:`~repro.obs.telemetry.telemetry_block` -- the envelope ``telemetry``
  section.
* :mod:`repro.obs.ledger` -- the append-only per-invocation run ledger
  behind ``python -m repro stats``.
"""

from repro.obs.chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.counters import Counter, NullCounter
from repro.obs.ledger import (
    LEDGER_DIR_ENV,
    append_record,
    invocation_record,
    ledger_path,
    read_records,
    rotate,
    summarize,
)
from repro.obs.telemetry import cache_sections, counter_deltas, telemetry_block
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "LEDGER_DIR_ENV",
    "NULL_TRACER",
    "NullCounter",
    "NullTracer",
    "Span",
    "Tracer",
    "append_record",
    "cache_sections",
    "chrome_trace",
    "counter_deltas",
    "get_tracer",
    "invocation_record",
    "ledger_path",
    "read_records",
    "rotate",
    "set_tracer",
    "summarize",
    "telemetry_block",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]
