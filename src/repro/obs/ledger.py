"""Append-only run ledger: one JSONL record per CLI invocation.

Every ``run``/``sweep``/``explore``/``report``/``bench`` invocation appends
one JSON line to ``.repro/ledger.jsonl`` (override the directory with the
``REPRO_LEDGER_DIR`` environment variable) recording what ran, how it was
cached, and how long it took -- the first step toward the ROADMAP's
persistent result store.  ``python -m repro stats`` summarizes the ledger.

Record schema (``schema: 1``)::

    {
      "schema": 1,
      "ts_utc": "2026-08-07T12:00:00Z",
      "command": "explore",                  # CLI subcommand
      "argv": ["explore", "explore_pod_40nm", "--strategy", "ga"],
      "host": "buildbox",
      "git_rev": "17bb30e",
      "experiments": ["explore_pod_40nm"],
      "strategy": "ga",                      # search strategy, when any
      "runs": [                              # one entry per experiment run
        {"experiment": "explore_pod_40nm", "cache_status": "miss",
         "wall_time_s": 2.1, "compute_time_s": 2.0, "rows": 64,
         "strategy": "ga", "cache_hits": 0, "evaluated": 64}
      ],
      "cache_hits": 0, "cache_misses": 1, "cache_hit_ratio": 0.0,
      "wall_time_s": 2.1, "compute_time_s": 2.0
    }

The ledger is durable against its own failure modes: reads skip corrupt
(truncated, non-JSON) lines instead of raising, appends rotate the file once
it exceeds :data:`MAX_RECORDS` records, and a read-only filesystem degrades
to not recording rather than failing the run.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping, Sequence

#: Schema version stamped into every ledger record.
LEDGER_SCHEMA = 1

#: Environment variable overriding the ledger directory (default ``.repro``).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Default directory holding the ledger (relative to the working directory).
DEFAULT_LEDGER_DIR = ".repro"

#: Ledger file name inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Records kept when an append triggers rotation.
MAX_RECORDS = 4096


def ledger_path(directory: "str | os.PathLike[str] | None" = None) -> Path:
    """The ledger file path for ``directory`` (env override, then default)."""
    if directory is None:
        directory = os.environ.get(LEDGER_DIR_ENV) or DEFAULT_LEDGER_DIR
    return Path(directory) / LEDGER_FILENAME


def git_revision(repo_dir: "str | os.PathLike[str]" = ".") -> str:
    """Short git revision of ``repo_dir``, or ``"unknown"``.

    Reads ``.git/HEAD`` (and the ref file it points at) directly instead of
    shelling out, so ledger appends stay subprocess-free.
    """
    git_dir = Path(repo_dir) / ".git"
    try:
        head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
        if head.startswith("ref:"):
            ref = head.partition(":")[2].strip()
            ref_path = git_dir / ref
            if ref_path.exists():
                head = ref_path.read_text(encoding="utf-8").strip()
            else:
                packed = git_dir / "packed-refs"
                for line in packed.read_text(encoding="utf-8").splitlines():
                    if line.endswith(f" {ref}"):
                        head = line.split(" ", 1)[0]
                        break
                else:
                    return "unknown"
        return head[:7] if head else "unknown"
    except OSError:
        return "unknown"


def invocation_record(
    command: str,
    runs: "Sequence[Mapping[str, object]]",
    argv: "Sequence[str] | None" = None,
    strategy: "str | None" = None,
) -> "dict[str, object]":
    """Build one ledger record from a CLI invocation's per-run entries.

    Args:
        command: the CLI subcommand (``"run"``, ``"explore"``, ...).
        runs: per-experiment entries with ``experiment``, ``cache_status``,
            ``wall_time_s``, ``compute_time_s``, ``rows``, and -- for
            explorations -- ``strategy``, ``cache_hits``, ``evaluated``.
        argv: the raw CLI arguments, for replayability.
        strategy: search strategy override; defaults to the first per-run
            strategy found.

    The envelope-level cache statuses and the explorations' internal
    evaluation-cache accounting both roll into the record's
    ``cache_hits``/``cache_misses``/``cache_hit_ratio``.
    """
    hits = misses = 0
    for run in runs:
        status = run.get("cache_status")
        hits += status == "hit"
        misses += status in ("miss", "disabled")
        hits += int(run.get("cache_hits") or 0)
        misses += int(run.get("evaluated") or 0) if run.get("cache_hits") is not None else 0
        if strategy is None and run.get("strategy"):
            strategy = str(run["strategy"])
    lookups = hits + misses
    record: "dict[str, object]" = {
        "schema": LEDGER_SCHEMA,
        "ts_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "command": command,
        "argv": list(argv or []),
        "host": platform.node() or "unknown",
        "git_rev": git_revision(),
        "experiments": sorted({str(run.get("experiment", "?")) for run in runs}),
        "strategy": strategy,
        "runs": [dict(run) for run in runs],
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_ratio": round(hits / lookups, 4) if lookups else None,
        "wall_time_s": round(sum(float(run.get("wall_time_s", 0.0)) for run in runs), 6),
        "compute_time_s": round(
            sum(float(run.get("compute_time_s", 0.0)) for run in runs), 6
        ),
    }
    return record


def append_record(
    record: "Mapping[str, object]",
    directory: "str | os.PathLike[str] | None" = None,
    max_records: int = MAX_RECORDS,
) -> "Path | None":
    """Append one record to the ledger; returns its path (``None`` on failure).

    The ledger must never break a run: filesystem errors (read-only
    directory, permission denied) are swallowed and reported as ``None``.
    When the file already holds ``max_records`` records the oldest are
    rotated out first.
    """
    path = ledger_path(directory)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists() and max_records > 0:
            rotate(path, keep_last=max_records - 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:
        return None
    return path


def read_records(
    path: "str | os.PathLike[str] | None" = None,
    last: "int | None" = None,
    experiment: "str | None" = None,
) -> "list[dict[str, object]]":
    """Parse the ledger, skipping corrupt lines; newest records last.

    Args:
        path: ledger file (default: :func:`ledger_path`).
        last: keep only the newest ``last`` records (after filtering).
        experiment: keep only records whose ``experiments`` include this id.
    """
    path = Path(path) if path is not None else ledger_path()
    records: "list[dict[str, object]]" = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # corrupt / truncated line: tolerate and move on
        if isinstance(record, dict):
            records.append(record)
    if experiment is not None:
        records = [
            record
            for record in records
            if experiment in (record.get("experiments") or [])
        ]
    if last is not None and last >= 0:
        records = records[-last:] if last else []
    return records


def rotate(path: "str | os.PathLike[str]", keep_last: int) -> int:
    """Trim the ledger to its newest ``keep_last`` records; returns #dropped.

    Corrupt lines are dropped during rotation (they are unreadable anyway).
    """
    path = Path(path)
    records = read_records(path)
    if len(records) <= keep_last:
        return 0
    kept = records[-keep_last:] if keep_last > 0 else []
    text = "".join(json.dumps(record, sort_keys=True) + "\n" for record in kept)
    path.write_text(text, encoding="utf-8")
    return len(records) - len(kept)


def summarize(records: "Sequence[Mapping[str, object]]") -> "dict[str, object]":
    """Aggregate ledger records for ``python -m repro stats``.

    Returns:
        A dict with ``invocations``, per-command counts, and one row per
        experiment id (invocations, total/mean wall time, aggregate cache
        hit ratio, last run timestamp), sorted by experiment id.
    """
    commands: "dict[str, int]" = {}
    per_experiment: "dict[str, dict[str, object]]" = {}
    for record in records:
        command = str(record.get("command", "?"))
        commands[command] = commands.get(command, 0) + 1
        for run in record.get("runs") or []:
            if not isinstance(run, Mapping):
                continue
            experiment = str(run.get("experiment", "?"))
            row = per_experiment.setdefault(
                experiment,
                {"experiment": experiment, "invocations": 0, "wall_time_s": 0.0,
                 "hits": 0, "lookups": 0, "last_utc": ""},
            )
            row["invocations"] = int(row["invocations"]) + 1
            row["wall_time_s"] = float(row["wall_time_s"]) + float(run.get("wall_time_s", 0.0))
            hits = (run.get("cache_status") == "hit") + int(run.get("cache_hits") or 0)
            lookups = hits + (run.get("cache_status") in ("miss", "disabled"))
            if run.get("cache_hits") is not None:
                lookups += int(run.get("evaluated") or 0)
            row["hits"] = int(row["hits"]) + hits
            row["lookups"] = int(row["lookups"]) + lookups
            row["last_utc"] = max(str(row["last_utc"]), str(record.get("ts_utc", "")))
    experiments = []
    for row in sorted(per_experiment.values(), key=lambda item: str(item["experiment"])):
        lookups = int(row.pop("lookups"))
        hits = int(row.pop("hits"))
        invocations = int(row["invocations"])
        row["wall_time_s"] = round(float(row["wall_time_s"]), 6)
        row["mean_wall_s"] = round(float(row["wall_time_s"]) / invocations, 6)
        row["cache_hit_ratio"] = round(hits / lookups, 4) if lookups else None
        experiments.append(row)
    return {
        "invocations": len(records),
        "commands": dict(sorted(commands.items())),
        "experiments": experiments,
    }
