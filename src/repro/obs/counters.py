"""Monotonic counters: named, integer-valued, add-only.

Counters accumulate event totals (packets delivered, cache hits, events
processed) alongside the tracer's spans.  They are deliberately minimal:
creation is a dict lookup on the owning tracer, and the hot-path cost of an
increment is one attribute add -- cheap enough to leave in simulator inner
loops behind a single ``tracer.enabled`` check.

:class:`NullCounter` is the disabled-mode stand-in: a shared, stateless
singleton whose :meth:`~NullCounter.add` does nothing, so instrumented code
never needs a second conditional.
"""

from __future__ import annotations


class Counter:
    """A named monotonic counter owned by a :class:`~repro.obs.tracer.Tracer`.

    Attributes:
        name: dotted counter name, e.g. ``"cache.evaluation.hits"``.
        value: current total (starts at 0, only ever grows).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (monotonic: negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; cannot add {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class NullCounter:
    """Disabled-mode counter: :meth:`add` is a no-op.

    A single shared instance (:data:`NULL_COUNTER`) is handed out for every
    counter name, so disabled-mode instrumentation allocates nothing.
    """

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        """Discard the increment."""


#: The shared disabled-mode counter instance.
NULL_COUNTER = NullCounter()
