"""Process-pool-safe tracing: nested spans, counters, and a no-op mode.

The tracer records a tree of :class:`Span` objects (name, category, start,
duration, attributes) plus the monotonic :class:`~repro.obs.counters.Counter`
totals accumulated while tracing.  Three properties make it safe to leave in
the repo's hot layers permanently:

* **Disabled mode is (almost) free.**  The process-wide default tracer is
  :data:`NULL_TRACER`, whose ``enabled`` class attribute is ``False``; hot
  loops guard their instrumentation with ``if tracer.enabled:`` (a single
  attribute check), and the non-loop layers call the null tracer's no-op
  ``span()``/``counter()`` directly.  Simulation results are bitwise
  identical either way -- instrumentation only ever *observes*.

* **Process pools compose.**  Worker processes start from a fresh import, so
  their default tracer is the null tracer; traced executors explicitly build
  a worker-local :class:`Tracer`, ship its picklable span roots and counter
  totals back with the chunk results, and the parent re-attaches them with
  :meth:`Tracer.adopt` in submission order -- so serial and parallel runs of
  the same sweep produce the same trace *structure*.

* **Span ids are deterministic.**  :meth:`Tracer.finalize` assigns each span
  an id from its position in the tree (``"s0"``, ``"s0.1"``, ...), not from
  wall-clock or arrival order, which is what makes serial==parallel trace
  structure testable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

from repro.obs.counters import NULL_COUNTER, Counter, NullCounter


@dataclass
class Span:
    """One timed, attributed region of work (picklable).

    Attributes:
        name: span name, e.g. ``"executor.chunk"`` (see the taxonomy table in
            ``docs/observability.md``).
        category: coarse grouping for trace viewers (``"executor"``,
            ``"cache"``, ``"search"``, ...).
        start_s: start time in seconds relative to the owning tracer's epoch.
        duration_s: elapsed seconds (0 until the span closes).
        attributes: free-form JSON-able annotations (point index, hit flag...).
        children: spans opened while this one was the innermost active span.
        span_id: deterministic tree-position id, assigned by
            :meth:`Tracer.finalize` (empty until then).
    """

    name: str
    category: str = ""
    start_s: float = 0.0
    duration_s: float = 0.0
    attributes: "dict[str, object]" = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    span_id: str = ""

    def annotate(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def iter(self) -> "Iterator[Span]":
        """This span and every descendant, depth-first in child order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def shift(self, offset_s: float) -> None:
        """Translate this subtree's start times by ``offset_s`` (adoption)."""
        self.start_s += offset_s
        for child in self.children:
            child.shift(offset_s)

    def structure(self, prune: "tuple[str, ...]" = ()) -> "dict[str, object]":
        """Timing-free view of the subtree, for structural comparisons.

        Args:
            prune: attribute names to drop (e.g. backend-dependent ones like
                ``mode`` or ``worker`` when comparing serial vs parallel runs).
        """
        return {
            "name": self.name,
            "category": self.category,
            "attributes": {
                key: value
                for key, value in sorted(self.attributes.items())
                if key not in prune
            },
            "children": [child.structure(prune) for child in self.children],
        }


class _ActiveSpan:
    """Context manager pushing a span onto its tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start_s = self._tracer.now()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration_s = self._tracer.now() - self._span.start_s
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects a span tree plus counter totals for one traced region.

    The tracer keeps a stack of active spans; :meth:`span` opens a child of
    the innermost active span (or a new root).  Spans and counters are plain
    picklable data, so a worker-side tracer's ``roots`` and ``counters()``
    travel back through a process pool intact.
    """

    #: Class attribute so the hot-path guard ``tracer.enabled`` is a plain
    #: attribute load for both the real and the null tracer.
    enabled = True

    def __init__(self) -> None:
        self.roots: "list[Span]" = []
        self._stack: "list[Span]" = []
        self._counters: "dict[str, Counter]" = {}
        self._epoch = perf_counter()

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return perf_counter() - self._epoch

    # ----------------------------------------------------------------- spans
    def span(self, name: str, category: str = "", **attributes: object) -> _ActiveSpan:
        """Open a span as a context manager; yields the :class:`Span`."""
        return _ActiveSpan(self, Span(name=name, category=category, attributes=dict(attributes)))

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def current(self) -> "Span | None":
        """The innermost active span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    # -------------------------------------------------------------- counters
    def counter(self, name: str) -> Counter:
        """The named monotonic counter (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def counters(self) -> "dict[str, int]":
        """Snapshot of every counter total, keyed by name."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    # -------------------------------------------------------------- adoption
    def adopt(
        self,
        spans: "list[Span]",
        counters: "dict[str, int] | None" = None,
        offset_s: "float | None" = None,
    ) -> None:
        """Attach worker-produced spans (and counter totals) to this tracer.

        Args:
            spans: root spans from a worker-local tracer, in point order.
            counters: the worker tracer's :meth:`counters` snapshot; totals
                merge additively into this tracer's counters.
            offset_s: translation applied to the adopted spans' start times
                (the parent-side time the chunk was handed off); defaults to
                :meth:`now`, which preserves relative ordering even without
                a recorded handoff time.
        """
        offset = self.now() if offset_s is None else offset_s
        parent = self._stack[-1].children if self._stack else self.roots
        for span in spans:
            span.shift(offset)
            parent.append(span)
        for name, value in (counters or {}).items():
            self.counter(name).add(value)

    # ------------------------------------------------------------- finishing
    def finalize(self) -> "list[Span]":
        """Assign deterministic tree-position ids and return the root spans.

        Ids encode the path from the root: roots are ``"s0"``, ``"s1"``, ...;
        the second child of the first root is ``"s0.1"``.  Identical span
        trees therefore get identical ids regardless of execution backend.
        Safe to call repeatedly (ids are simply reassigned).
        """

        def assign(span: Span, span_id: str) -> None:
            """Set the subtree's ids from its root's path id."""
            span.span_id = span_id
            for index, child in enumerate(span.children):
                assign(child, f"{span_id}.{index}")

        for index, root in enumerate(self.roots):
            assign(root, f"s{index}")
        return self.roots

    def iter_spans(self) -> "Iterator[Span]":
        """Every recorded span, depth-first from each root."""
        for root in self.roots:
            yield from root.iter()

    def find_spans(self, name: "str | None" = None, category: "str | None" = None) -> "list[Span]":
        """Spans matching a name and/or category, in deterministic DFS order."""
        return [
            span
            for span in self.iter_spans()
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]


class _NullActiveSpan:
    """Shared no-op context manager yielding the shared no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullSpan:
    """Stateless stand-in span whose :meth:`annotate` discards everything."""

    __slots__ = ()
    name = ""
    category = ""
    duration_s = 0.0

    def annotate(self, **attributes: object) -> None:
        """Discard the attributes."""


_NULL_SPAN = _NullSpan()
_NULL_ACTIVE = _NullActiveSpan()


class NullTracer:
    """Disabled-mode tracer: every operation is a shared-singleton no-op.

    ``enabled`` is ``False`` so hot loops skip their instrumentation with one
    attribute check; the structural methods (``span``/``counter``/``adopt``)
    still exist so non-loop call sites need no conditionals at all.
    """

    enabled = False

    def span(self, name: str, category: str = "", **attributes: object) -> _NullActiveSpan:
        """A shared no-op context manager (allocates nothing)."""
        return _NULL_ACTIVE

    def counter(self, name: str) -> NullCounter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def counters(self) -> "dict[str, int]":
        """Always empty."""
        return {}

    def adopt(self, spans, counters=None, offset_s=None) -> None:
        """Discard worker-produced spans and counters."""

    def current(self) -> None:
        """Always ``None``."""
        return None

    def finalize(self) -> "list[Span]":
        """Always empty."""
        return []

    def iter_spans(self) -> "Iterator[Span]":
        """Empty iterator."""
        return iter(())

    def find_spans(self, name: "str | None" = None, category: "str | None" = None) -> "list[Span]":
        """Always empty."""
        return []


#: The process-wide disabled tracer (the default; workers start here too).
NULL_TRACER = NullTracer()

_ACTIVE_TRACER: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide active tracer (the null tracer unless one is set)."""
    return _ACTIVE_TRACER


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide (``None`` restores the null tracer).

    Returns:
        The previously active tracer, so callers can restore it.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer | None") -> "Iterator[Tracer | NullTracer]":
    """Scoped :func:`set_tracer`: installs ``tracer``, restores on exit."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
