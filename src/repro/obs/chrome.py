"""Chrome-trace / Perfetto JSON export of a tracer's spans and counters.

Emits the Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: one ``"X"`` (complete) event per span with
microsecond ``ts``/``dur``, one ``"C"`` (counter) event per counter total,
and ``"M"`` metadata naming the process.  Spans produced in pool workers
carry a ``worker`` attribute; the exporter maps each worker to its own
``tid`` row so parallel chunks render side by side.

:func:`validate_chrome_trace` is the schema check the test suite and the CI
smoke step run against emitted files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.tracer import NullTracer, Span, Tracer

#: Seconds -> Trace Event Format microseconds.
_MICROSECONDS = 1_000_000.0

#: ``pid`` stamped on every event (one traced process per file).
_PID = 1

#: ``tid`` of spans not attributed to a pool worker.
_MAIN_TID = 1


def _span_events(span: "Span", tid: int, events: "list[dict[str, object]]") -> None:
    """Append the subtree's ``"X"`` events depth-first (deterministic order)."""
    worker = span.attributes.get("worker")
    if isinstance(worker, int):
        tid = _MAIN_TID + 1 + worker
    events.append(
        {
            "name": span.name,
            "cat": span.category or "repro",
            "ph": "X",
            "ts": round(span.start_s * _MICROSECONDS, 3),
            "dur": round(span.duration_s * _MICROSECONDS, 3),
            "pid": _PID,
            "tid": tid,
            "args": {"span_id": span.span_id, **span.attributes},
        }
    )
    for child in span.children:
        _span_events(child, tid, events)


def chrome_trace(tracer: "Tracer | NullTracer", process_name: str = "repro") -> "dict[str, object]":
    """The tracer's spans and counters as a Trace Event Format payload.

    Calls :meth:`~repro.obs.tracer.Tracer.finalize` first, so every exported
    span carries its deterministic ``span_id`` in ``args``.
    """
    roots = tracer.finalize()
    events: "list[dict[str, object]]" = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": process_name},
        }
    ]
    for root in roots:
        _span_events(root, _MAIN_TID, events)
    end_ts = max(
        (event["ts"] + event["dur"] for event in events if event["ph"] == "X"),
        default=0.0,
    )
    for name, value in tracer.counters().items():
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": end_ts,
                "pid": _PID,
                "tid": _MAIN_TID,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, tracer: "Tracer | NullTracer", process_name: str = "repro"
) -> "dict[str, object]":
    """Write the tracer's Chrome-trace JSON to ``path``; returns the payload."""
    payload = chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload


def validate_chrome_trace(payload: object) -> int:
    """Schema-check a Trace Event Format payload; returns the event count.

    Raises:
        ValueError: when the payload is not a well-formed trace -- missing
            ``traceEvents``, a non-dict event, an unknown phase, a negative
            or non-numeric ``ts``/``dur``, or a counter without a numeric
            value.
    """
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = payload["traceEvents"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"event {index} has no name")
        phase = event.get("ph")
        if phase not in ("X", "C", "M"):
            raise ValueError(f"event {index} has unsupported phase {phase!r}")
        if phase == "M":
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"event {index} has non-integer {field!r}")
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            raise ValueError(f"event {index} has invalid ts")
        if phase == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                raise ValueError(f"event {index} has invalid dur")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                raise ValueError(f"counter event {index} needs numeric args")
    return len(events)
