"""Envelope telemetry: compress one traced experiment into a JSON block.

:func:`telemetry_block` condenses the tracer state around a single
``run_experiment`` call into the ``telemetry`` entry of the
:class:`~repro.runtime.ExperimentResult` envelope: the counter totals that
accumulated during the run, per-category cache sections (hits, misses,
stores, hit ratio) derived from the ``cache.<category>.<kind>`` counters,
and the top-level phase timings (the experiment span's direct children).

The block only exists when a tracer is enabled; disabled runs carry
``telemetry=None`` and serialize without the key, keeping their envelopes
identical to pre-telemetry output.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.tracer import NullTracer, Span, Tracer

#: Cache-counter kinds folded into the per-category cache sections.
_CACHE_KINDS = ("hits", "misses", "stores")


def counter_deltas(
    after: "Mapping[str, int]", before: "Mapping[str, int] | None"
) -> "dict[str, int]":
    """Per-counter growth between two :meth:`Tracer.counters` snapshots."""
    if not before:
        return dict(after)
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value - before.get(name, 0)
    }


def cache_sections(counters: "Mapping[str, int]") -> "dict[str, dict[str, object]]":
    """Per-category cache accounting parsed from ``cache.<category>.<kind>``.

    Each section carries the raw counts plus a ``hit_ratio`` over lookups
    (``hits / (hits + misses)``, ``None`` when the category saw no lookups).
    """
    sections: "dict[str, dict[str, object]]" = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "cache" or parts[2] not in _CACHE_KINDS:
            continue
        section = sections.setdefault(
            parts[1], {kind: 0 for kind in _CACHE_KINDS}
        )
        section[parts[2]] = value
    for section in sections.values():
        lookups = int(section["hits"]) + int(section["misses"])  # type: ignore[arg-type]
        section["hit_ratio"] = (
            round(int(section["hits"]) / lookups, 4) if lookups else None  # type: ignore[arg-type]
        )
    return dict(sorted(sections.items()))


def telemetry_block(
    tracer: "Tracer | NullTracer",
    span: "Span | None" = None,
    counters_before: "Mapping[str, int] | None" = None,
) -> "dict[str, object] | None":
    """The envelope's ``telemetry`` block for one traced experiment run.

    Args:
        tracer: the active tracer (``None`` is returned when it is disabled).
        span: the experiment's own span; its direct children become the
            ``phases`` list.
        counters_before: counter snapshot taken before the run, so the block
            reports this run's growth rather than process-lifetime totals.
    """
    if not tracer.enabled:
        return None
    counters = counter_deltas(tracer.counters(), counters_before)
    phases = [
        {
            "name": child.name,
            "category": child.category,
            "duration_s": round(child.duration_s, 6),
        }
        for child in (span.children if span is not None else tracer.roots)
    ]
    return {
        "counters": dict(sorted(counters.items())),
        "cache": cache_sections(counters),
        "phases": phases,
    }
