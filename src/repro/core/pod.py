"""The pod: the PD-optimal building block of a Scale-Out Processor.

A pod (Section 3.2.1) tightly couples a number of cores to a modestly sized LLC
through a low-latency interconnect.  Each pod is a complete, stand-alone server
running its own operating system; pods share nothing except the die, the memory
interfaces, and the I/O ports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cores.models import CoreModel, core_model
from repro.interconnect import interconnect_model
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.perfmodel.density import AreaBudget, performance_density
from repro.technology.components import ComponentCatalog
from repro.technology.node import NODE_40NM, TechnologyNode
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class Pod:
    """One pod: cores + LLC + intra-pod interconnect, a complete server-on-a-die.

    Attributes:
        cores: number of cores in the pod.
        core_type: core microarchitecture ("conventional", "ooo", "inorder").
        llc_capacity_mb: shared LLC capacity of the pod.
        interconnect: intra-pod interconnect ("crossbar", "nocout", "mesh", ...).
        node: technology node the pod is implemented in.
        instruction_replication: whether the LLC replicates instruction blocks
            (used only by the optimized-tiled baselines, never by actual pods).
        effective_capacity_factor: capacity-pressure multiplier forwarded to the
            performance model.
        offchip_traffic_factor: off-chip-traffic multiplier forwarded to the model.
    """

    cores: int
    core_type: str = "ooo"
    llc_capacity_mb: float = 4.0
    interconnect: str = "crossbar"
    node: TechnologyNode = NODE_40NM
    instruction_replication: bool = False
    effective_capacity_factor: float = 1.0
    offchip_traffic_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.llc_capacity_mb <= 0:
            raise ValueError("llc_capacity_mb must be positive")
        core_model(self.core_type)  # validates the core type
        interconnect_model(self.interconnect)  # validates the interconnect

    # --------------------------------------------------------------- helpers
    def config(self) -> SystemConfig:
        """The performance-model configuration corresponding to this pod."""
        return SystemConfig(
            cores=self.cores,
            core_type=self.core_type,
            llc_capacity_mb=self.llc_capacity_mb,
            interconnect=self.interconnect,
            node=self.node,
            instruction_replication=self.instruction_replication,
            effective_capacity_factor=self.effective_capacity_factor,
            offchip_traffic_factor=self.offchip_traffic_factor,
        )

    def core(self) -> CoreModel:
        """The core microarchitecture model used by this pod."""
        return core_model(self.core_type)

    # -------------------------------------------------------------- physical
    def area_budget(self) -> AreaBudget:
        """Itemized pod area: cores, LLC, and intra-pod interconnect."""
        catalog = ComponentCatalog(self.node)
        config = self.config()
        network = config.resolved_interconnect()
        return AreaBudget(
            cores_mm2=catalog.core(self.core().name).area_mm2 * self.cores,
            llc_mm2=catalog.llc_area_mm2(self.llc_capacity_mb),
            interconnect_mm2=network.area_mm2(config.floorplan(), self.node),
        )

    @property
    def area_mm2(self) -> float:
        """Total pod area."""
        return self.area_budget().total_mm2

    @property
    def power_w(self) -> float:
        """Total pod power (cores + LLC + interconnect)."""
        catalog = ComponentCatalog(self.node)
        config = self.config()
        network = config.resolved_interconnect()
        return (
            catalog.core(self.core().name).power_w * self.cores
            + catalog.llc_power_w(self.llc_capacity_mb)
            + network.power_w(config.floorplan(), self.node)
        )

    # ------------------------------------------------------------ performance
    def performance(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Average aggregate application IPC of the pod across the workload suite."""
        model = model or AnalyticPerformanceModel()
        return model.average_aggregate_ipc(self.config(), suite or default_suite())

    def performance_density(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Pod-level performance density: aggregate IPC per mm^2 of pod area."""
        return performance_density(self.performance(model, suite), self.area_mm2)

    def bandwidth_demand_gbps(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Worst-case off-chip bandwidth demand of the pod across the suite."""
        model = model or AnalyticPerformanceModel()
        return model.worst_case_bandwidth_gbps(self.config(), suite or default_suite())

    # ---------------------------------------------------------------- update
    def with_node(self, node: TechnologyNode) -> "Pod":
        """The same pod organization re-targeted to another technology node."""
        return replace(self, node=node)

    def scaled(self, core_factor: int, llc_factor: float) -> "Pod":
        """Pod with core count and LLC capacity multiplied (used by 3D studies)."""
        if core_factor < 1:
            raise ValueError("core_factor must be >= 1")
        if llc_factor <= 0:
            raise ValueError("llc_factor must be positive")
        return replace(
            self,
            cores=self.cores * core_factor,
            llc_capacity_mb=self.llc_capacity_mb * llc_factor,
        )

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.cores}x {self.core_type} cores, {self.llc_capacity_mb:g} MB LLC, "
            f"{self.interconnect} interconnect @ {self.node.name}"
        )
