"""Design-space comparison engine (Tables 2.3, 2.4, and 3.2).

Evaluates a collection of chip designs with the analytic model and produces the
table the paper reports: performance density, core count, LLC capacity, memory
channels, die area, power, and performance per Watt for every design, plus
normalized ratios between designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chip import ScaleOutChip
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import TechnologyNode
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class DesignRow:
    """One row of the design comparison table.

    Field names mirror the columns of the paper's Table 3.2.
    """

    design: str
    node: str
    performance_density: float
    cores: int
    llc_mb: float
    memory_channels: int
    die_area_mm2: float
    power_w: float
    performance: float
    performance_per_watt: float
    pods: int = 1

    def as_dict(self) -> "dict[str, float | int | str]":
        """Row as a plain dictionary (for printing and serialization)."""
        return {
            "design": self.design,
            "node": self.node,
            "PD": round(self.performance_density, 3),
            "cores": self.cores,
            "LLC (MB)": round(self.llc_mb, 1),
            "MCs": self.memory_channels,
            "die (mm2)": round(self.die_area_mm2, 0),
            "power (W)": round(self.power_w, 0),
            "perf": round(self.performance, 1),
            "perf/W": round(self.performance_per_watt, 2),
            "pods": self.pods,
        }


@dataclass(frozen=True)
class DesignComparison:
    """A collection of design rows with normalization helpers."""

    rows: "tuple[DesignRow, ...]"

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("a DesignComparison needs at least one row")

    def row(self, design: str) -> DesignRow:
        """Look up a row by (substring of the) design name."""
        for candidate in self.rows:
            if candidate.design.lower() == design.lower():
                return candidate
        for candidate in self.rows:
            if design.lower() in candidate.design.lower():
                return candidate
        raise KeyError(f"no design matching {design!r}")

    def pd_ratio(self, design: str, baseline: str) -> float:
        """Performance-density ratio of ``design`` over ``baseline``."""
        return self.row(design).performance_density / self.row(baseline).performance_density

    def perf_per_watt_ratio(self, design: str, baseline: str) -> float:
        """Performance-per-Watt ratio of ``design`` over ``baseline``."""
        return self.row(design).performance_per_watt / self.row(baseline).performance_per_watt

    def names(self) -> "list[str]":
        """Design names in table order."""
        return [r.design for r in self.rows]

    def as_dicts(self) -> "list[dict[str, float | int | str]]":
        """All rows as dictionaries (ready to print as a table)."""
        return [r.as_dict() for r in self.rows]


def compare_designs(
    designs: Sequence[ScaleOutChip],
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> DesignComparison:
    """Evaluate every design and assemble the comparison table."""
    model = model or AnalyticPerformanceModel()
    suite = suite or default_suite()
    rows: "list[DesignRow]" = []
    for chip in designs:
        performance = chip.performance(model, suite)
        rows.append(
            DesignRow(
                design=chip.name,
                node=chip.node.name,
                performance_density=performance / (chip.die_area_mm2 * chip.num_dies),
                cores=chip.total_cores,
                llc_mb=chip.total_llc_mb,
                memory_channels=chip.memory_channels,
                die_area_mm2=chip.die_area_mm2,
                power_w=chip.power_w,
                performance=performance,
                performance_per_watt=performance / chip.power_w,
                pods=chip.num_pods,
            )
        )
    return DesignComparison(tuple(rows))
