"""The paper's primary contribution: pods, Scale-Out chips, and the design methodology."""

from repro.core.pod import Pod
from repro.core.chip import ScaleOutChip
from repro.core.methodology import (
    PodSweepPoint,
    ScaleOutDesignMethodology,
    design_scale_out_processor,
)
from repro.core.designs import (
    DesignSpec,
    build_conventional,
    build_tiled,
    build_llc_optimal_tiled,
    build_llc_optimal_tiled_ir,
    build_ideal,
    build_scale_out,
    build_single_pod,
    standard_designs,
)
from repro.core.comparison import DesignComparison, DesignRow, compare_designs

__all__ = [
    "Pod",
    "ScaleOutChip",
    "PodSweepPoint",
    "ScaleOutDesignMethodology",
    "design_scale_out_processor",
    "DesignSpec",
    "build_conventional",
    "build_tiled",
    "build_llc_optimal_tiled",
    "build_llc_optimal_tiled_ir",
    "build_ideal",
    "build_scale_out",
    "build_single_pod",
    "standard_designs",
    "DesignComparison",
    "DesignRow",
    "compare_designs",
]
