"""Builders for the processor designs evaluated in the paper.

Tables 2.3, 2.4, and 3.2 compare nine/ten chip organizations:

* **Conventional** -- a handful of aggressive cores with 2 MB of LLC per core,
  connected by a crossbar, one DDR channel per four cores (Xeon-class).
* **Tiled** -- mesh-connected tiles, each with a core and a 1 MB LLC slice (OoO)
  or the same core:cache area ratio (in-order); Tilera-class.
* **LLC-optimal tiled** -- tiled, but with only as much LLC per tile as scale-out
  workloads need (256 KB per OoO tile, 64 KB per in-order tile).
* **LLC-optimal tiled with IR** -- additionally replicates instructions in the LLC
  (R-NUCA style) so instruction fetches are at most one hop away.
* **Ideal** -- the same cores/LLC as LLC-optimal tiled but with an ideal 4-cycle
  interconnect; the performance-density upper bound.
* **Scale-Out** -- the pod-based design produced by the methodology of Chapter 3.
* **1-pod** -- a die holding a single PD-optimal pod (used by the TCO study of
  Chapter 5).

Every builder sizes its design by integrating as many cores as possible without
exceeding the node's area, power, and memory-bandwidth budgets (Section 2.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.chip import ScaleOutChip
from repro.core.methodology import ScaleOutDesignMethodology
from repro.core.pod import Pod
from repro.memory.dram import channel_for_standard
from repro.memory.provisioning import channels_required
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import NODE_40NM, ChipConstraints, TechnologyNode
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class DesignSpec:
    """Sizing rules for one whole-die (single coherence domain) organization.

    Attributes:
        name: design name used in tables.
        core_type: core microarchitecture.
        interconnect: on-die interconnect.
        llc_mb_per_core: LLC capacity added per core (None if ``llc_total_mb`` is
            fixed).
        llc_total_mb: fixed total LLC capacity (None if per-core).
        channels_per_core: memory channels provisioned per core (conventional
            designs use 1 per 4 cores); None provisions from modelled demand.
        instruction_replication: whether the LLC replicates instructions.
        requires_square_grid: tiled designs must form a near-square tile grid.
        effective_capacity_factor: capacity-pressure multiplier (IR).
        offchip_traffic_factor: off-chip traffic multiplier (IR).
    """

    name: str
    core_type: str
    interconnect: str
    llc_mb_per_core: "float | None" = None
    llc_total_mb: "float | None" = None
    channels_per_core: "float | None" = None
    instruction_replication: bool = False
    requires_square_grid: bool = False
    effective_capacity_factor: float = 1.0
    offchip_traffic_factor: float = 1.0

    def llc_capacity(self, cores: int) -> float:
        """Total LLC capacity for a ``cores``-core instance of this design."""
        if self.llc_total_mb is not None:
            return self.llc_total_mb
        if self.llc_mb_per_core is None:
            raise ValueError(f"design {self.name} has no LLC sizing rule")
        return self.llc_mb_per_core * cores


#: Maximum tile-grid aspect ratio considered "reasonable" for tiled layouts.
_MAX_GRID_ASPECT = 1.34


def _grid_is_reasonable(cores: int) -> bool:
    """Whether ``cores`` tiles can form a near-square grid (Section 2.5.1)."""
    cols = int(math.ceil(math.sqrt(cores)))
    for c in range(cols, cols + 2):
        if cores % c == 0:
            rows = cores // c
            if max(rows, c) / min(rows, c) <= _MAX_GRID_ASPECT:
                return True
    return False


class DesignSizer:
    """Sizes whole-die designs under area, power, and bandwidth constraints."""

    def __init__(
        self,
        node: TechnologyNode = NODE_40NM,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
        constraints: "ChipConstraints | None" = None,
    ):
        self.node = node
        self.model = model or AnalyticPerformanceModel()
        self.suite = suite or default_suite()
        self.constraints = constraints or node.constraints

    # ----------------------------------------------------------- candidates
    def _candidate_core_counts(self, spec: DesignSpec) -> "list[int]":
        counts = list(range(1, 513))
        if spec.requires_square_grid:
            counts = [c for c in counts if c == 1 or _grid_is_reasonable(c)]
        return counts

    def _build_chip(self, spec: DesignSpec, cores: int) -> ScaleOutChip:
        llc_mb = spec.llc_capacity(cores)
        pod = Pod(
            cores=cores,
            core_type=spec.core_type,
            llc_capacity_mb=llc_mb,
            interconnect=spec.interconnect,
            node=self.node,
            instruction_replication=spec.instruction_replication,
            effective_capacity_factor=spec.effective_capacity_factor,
            offchip_traffic_factor=spec.offchip_traffic_factor,
        )
        if spec.channels_per_core is not None:
            channels = max(1, int(math.ceil(cores * spec.channels_per_core)))
        else:
            demand = pod.bandwidth_demand_gbps(self.model, self.suite)
            channel = channel_for_standard(self.node.memory_standard)
            channels = channels_required(demand, channel)
        return ScaleOutChip(
            name=spec.name,
            pod=pod,
            num_pods=1,
            memory_channels=channels,
        )

    # ---------------------------------------------------------------- sizing
    def size(self, spec: DesignSpec) -> ScaleOutChip:
        """Largest instance of ``spec`` that satisfies the chip constraints."""
        best: "ScaleOutChip | None" = None
        for cores in self._candidate_core_counts(spec):
            chip = self._build_chip(spec, cores)
            if chip.memory_channels > self.constraints.max_memory_channels:
                continue
            if chip.die_area_mm2 > self.constraints.max_area_mm2:
                break  # area grows monotonically with cores
            if chip.power_w > self.constraints.max_power_w:
                continue
            best = chip
        if best is None:
            raise ValueError(f"design {spec.name} cannot fit within the chip constraints")
        return best


# ---------------------------------------------------------------------------
# Named design builders.
# ---------------------------------------------------------------------------


def _label(core_type: str) -> str:
    return {"ooo": "OoO", "inorder": "In-order", "conventional": "Conv"}.get(core_type, core_type)


def build_conventional(
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """Conventional server processor: few aggressive cores, 2 MB LLC per core."""
    spec = DesignSpec(
        name="Conventional",
        core_type="conventional",
        interconnect="crossbar",
        llc_mb_per_core=2.0,
        channels_per_core=0.25,
    )
    return DesignSizer(node, model, suite).size(spec)


def build_tiled(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """Tiled processor: mesh of tiles, each a core plus a large LLC slice."""
    if core_type == "ooo":
        llc_per_core = 1.0
    else:
        # The in-order tiled design maintains the OoO design's core:cache area
        # ratio (Section 2.5.1): 4.5 mm^2 of core per 5 mm^2 (1 MB) of cache.
        llc_per_core = 1.0 * (1.3 / 4.5)
    spec = DesignSpec(
        name=f"Tiled ({_label(core_type)})",
        core_type=core_type,
        interconnect="mesh",
        llc_mb_per_core=llc_per_core,
        requires_square_grid=True,
    )
    return DesignSizer(node, model, suite).size(spec)


def build_llc_optimal_tiled(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
    instruction_replication: bool = False,
) -> ScaleOutChip:
    """LLC-optimal tiled processor: only as much LLC as scale-out workloads need."""
    llc_per_core = 0.25 if core_type == "ooo" else 0.0625
    suffix = " with IR" if instruction_replication else ""
    spec = DesignSpec(
        name=f"LLC-Optimal Tiled{suffix} ({_label(core_type)})",
        core_type=core_type,
        interconnect="mesh",
        llc_mb_per_core=llc_per_core,
        requires_square_grid=True,
        instruction_replication=instruction_replication,
        effective_capacity_factor=0.85 if instruction_replication else 1.0,
        offchip_traffic_factor=1.2 if instruction_replication else 1.0,
    )
    return DesignSizer(node, model, suite).size(spec)


def build_llc_optimal_tiled_ir(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """LLC-optimal tiled processor with R-NUCA-style instruction replication."""
    return build_llc_optimal_tiled(
        core_type, node, model, suite, instruction_replication=True
    )


def build_ideal(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """Ideal processor: the LLC-optimal core/cache budget with a 4-cycle interconnect."""
    reference = build_llc_optimal_tiled(core_type, node, model, suite)
    pod = Pod(
        cores=reference.total_cores,
        core_type=core_type,
        llc_capacity_mb=reference.total_llc_mb,
        interconnect="ideal",
        node=node,
    )
    sizer = DesignSizer(node, model, suite)
    demand = pod.bandwidth_demand_gbps(sizer.model, sizer.suite)
    channels = channels_required(demand, channel_for_standard(node.memory_standard))
    channels = min(channels, node.constraints.max_memory_channels)
    return ScaleOutChip(
        name=f"Ideal ({_label(core_type)})",
        pod=pod,
        num_pods=1,
        memory_channels=channels,
    )


def build_scale_out(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """Scale-Out Processor: the multi-pod design produced by the methodology."""
    methodology = ScaleOutDesignMethodology(node=node, model=model, suite=suite)
    return methodology.design(
        core_type=core_type, name=f"Scale-Out ({_label(core_type)})"
    )


def build_single_pod(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """1-pod chip: a die carrying a single PD-optimal pod (Chapter 5's "1Pod")."""
    methodology = ScaleOutDesignMethodology(node=node, model=model, suite=suite)
    point = methodology.pd_optimal_pod(core_type=core_type)
    channels = methodology.provision_memory_channels(point.pod, 1)
    channels = min(channels, node.constraints.max_memory_channels)
    return ScaleOutChip(
        name=f"1Pod ({_label(core_type)})",
        pod=point.pod,
        num_pods=1,
        memory_channels=channels,
        pod_performance=point.performance,
    )


def standard_designs(
    node: TechnologyNode = NODE_40NM,
    model: "AnalyticPerformanceModel | None" = None,
    suite: "WorkloadSuite | None" = None,
    include_ideal: bool = True,
    include_scale_out: bool = True,
) -> "list[ScaleOutChip]":
    """All designs of Table 3.2, in the paper's presentation order."""
    model = model or AnalyticPerformanceModel()
    suite = suite or default_suite()
    designs: "list[ScaleOutChip]" = [build_conventional(node, model, suite)]
    for core_type in ("ooo", "inorder"):
        designs.append(build_tiled(core_type, node, model, suite))
        designs.append(build_llc_optimal_tiled(core_type, node, model, suite))
        designs.append(build_llc_optimal_tiled_ir(core_type, node, model, suite))
        if include_scale_out:
            designs.append(build_scale_out(core_type, node, model, suite))
        if include_ideal:
            designs.append(build_ideal(core_type, node, model, suite))
    return designs
