"""The scale-out design methodology (Chapter 3).

The methodology has two steps:

1. **Find the PD-optimal pod**: sweep core count and LLC capacity for a given core
   microarchitecture and intra-pod interconnect, evaluate performance density with
   the analytic model, and pick the configuration that maximizes PD.  Because the
   PD peak is nearly flat, the paper prefers a *near-optimal* pod with fewer cores
   (lower coherence/crossbar complexity and no reliance on software scalability):
   the smallest configuration within a small tolerance of the peak.
2. **Compose the chip**: tile as many pods as the die area, power, and memory
   bandwidth budgets allow, provisioning memory channels for the worst-case
   off-chip demand.  Pods are fully independent, so chip throughput is simply the
   pod count times the pod throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chip import ScaleOutChip
from repro.core.pod import Pod
from repro.memory.dram import channel_for_standard
from repro.memory.provisioning import channels_required
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import NODE_40NM, ChipConstraints, TechnologyNode
from repro.workloads.suite import WorkloadSuite, default_suite

#: Core counts swept when searching for the PD-optimal pod (Figures 3.4-3.6).
DEFAULT_CORE_COUNTS: "tuple[int, ...]" = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: LLC capacities swept when searching for the PD-optimal pod (MB).
DEFAULT_LLC_SIZES_MB: "tuple[float, ...]" = (1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class PodSweepPoint:
    """One evaluated point of the pod design-space sweep.

    Attributes:
        pod: the evaluated pod configuration.
        performance: average aggregate IPC across the workload suite.
        area_mm2: pod area.
        performance_density: performance / area.
    """

    pod: Pod
    performance: float
    area_mm2: float
    performance_density: float


class ScaleOutDesignMethodology:
    """Performance-density driven design of Scale-Out Processors.

    Args:
        node: technology node to design for.
        model: analytic performance model (a default instance if omitted).
        suite: workload suite used for evaluation (the full CloudSuite by default).
        constraints: chip-level budgets; defaults to the node's constraints.
    """

    def __init__(
        self,
        node: TechnologyNode = NODE_40NM,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
        constraints: "ChipConstraints | None" = None,
    ):
        self.node = node
        self.model = model or AnalyticPerformanceModel()
        self.suite = suite or default_suite()
        self.constraints = constraints or node.constraints

    # ------------------------------------------------------------- the sweep
    def evaluate_pod(self, pod: Pod) -> PodSweepPoint:
        """Evaluate one pod configuration."""
        performance = pod.performance(self.model, self.suite)
        area = pod.area_mm2
        return PodSweepPoint(
            pod=pod,
            performance=performance,
            area_mm2=area,
            performance_density=performance / area,
        )

    def sweep_pods(
        self,
        core_type: str = "ooo",
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        llc_sizes_mb: Sequence[float] = DEFAULT_LLC_SIZES_MB,
        interconnects: Sequence[str] = ("crossbar",),
    ) -> "list[PodSweepPoint]":
        """Evaluate the full (core count x LLC size x interconnect) pod space."""
        points: "list[PodSweepPoint]" = []
        for interconnect in interconnects:
            for llc_mb in llc_sizes_mb:
                for cores in core_counts:
                    pod = Pod(
                        cores=cores,
                        core_type=core_type,
                        llc_capacity_mb=llc_mb,
                        interconnect=interconnect,
                        node=self.node,
                    )
                    points.append(self.evaluate_pod(pod))
        return points

    # --------------------------------------------------------- pod selection
    def pd_optimal_pod(
        self,
        core_type: str = "ooo",
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        llc_sizes_mb: Sequence[float] = DEFAULT_LLC_SIZES_MB,
        interconnect: str = "crossbar",
        complexity_tolerance: float = 0.03,
        max_cores: "int | None" = None,
    ) -> PodSweepPoint:
        """Select the preferred pod: near-peak PD with the fewest cores.

        The PD peak is flat (Section 3.4.2), so among all configurations whose PD
        is within ``complexity_tolerance`` of the true peak, the one with the
        fewest cores (breaking ties by smaller LLC) is chosen -- mirroring the
        paper's choice of a 16-core / 4 MB pod over the 32-core true optimum.

        Args:
            max_cores: optional hard cap on pod core count (e.g. crossbar
                implementability limits).
        """
        if not 0.0 <= complexity_tolerance < 1.0:
            raise ValueError("complexity_tolerance must be in [0, 1)")
        points = self.sweep_pods(core_type, core_counts, llc_sizes_mb, (interconnect,))
        if max_cores is not None:
            points = [p for p in points if p.pod.cores <= max_cores]
            if not points:
                raise ValueError(f"no pod configurations with <= {max_cores} cores")
        peak = max(points, key=lambda p: p.performance_density)
        threshold = peak.performance_density * (1.0 - complexity_tolerance)
        near_optimal = [p for p in points if p.performance_density >= threshold]
        return min(
            near_optimal,
            key=lambda p: (p.pod.cores, p.pod.llc_capacity_mb, -p.performance_density),
        )

    # ------------------------------------------------------ chip composition
    def provision_memory_channels(self, pod: Pod, num_pods: int) -> int:
        """Memory channels needed for ``num_pods`` pods' worst-case demand."""
        demand = pod.bandwidth_demand_gbps(self.model, self.suite) * num_pods
        channel = channel_for_standard(self.node.memory_standard)
        return channels_required(demand, channel)

    def compose_chip(self, pod: Pod, name: "str | None" = None) -> ScaleOutChip:
        """Integrate as many pods as the area/power/bandwidth budgets afford.

        Channels are provisioned for the worst-case demand; if even a single pod
        cannot be supported within the budgets, a one-pod chip is returned (and
        callers can check :meth:`ScaleOutChip.satisfies`).
        """
        pod_performance = pod.performance(self.model, self.suite)
        best: "ScaleOutChip | None" = None
        for num_pods in range(1, 65):
            channels = self.provision_memory_channels(pod, num_pods)
            if channels > self.constraints.max_memory_channels:
                break
            chip = ScaleOutChip(
                name=name or f"Scale-Out ({pod.core_type})",
                pod=pod,
                num_pods=num_pods,
                memory_channels=channels,
                pod_performance=pod_performance,
            )
            if (
                chip.die_area_mm2 > self.constraints.max_area_mm2
                or chip.power_w > self.constraints.max_power_w
            ):
                break
            best = chip
        if best is None:
            channels = min(
                self.constraints.max_memory_channels,
                self.provision_memory_channels(pod, 1),
            )
            best = ScaleOutChip(
                name=name or f"Scale-Out ({pod.core_type})",
                pod=pod,
                num_pods=1,
                memory_channels=channels,
                pod_performance=pod_performance,
            )
        return best

    # ------------------------------------------------------------ end-to-end
    def candidate_pods(
        self,
        core_type: str = "ooo",
        interconnect: str = "crossbar",
        complexity_tolerance: float = 0.05,
    ) -> "list[PodSweepPoint]":
        """Pods whose PD is within ``complexity_tolerance`` of the sweep's peak."""
        points = self.sweep_pods(core_type, interconnects=(interconnect,))
        peak = max(points, key=lambda p: p.performance_density)
        threshold = peak.performance_density * (1.0 - complexity_tolerance)
        return [p for p in points if p.performance_density >= threshold]

    def design(
        self,
        core_type: str = "ooo",
        interconnect: str = "crossbar",
        complexity_tolerance: float = 0.05,
        name: "str | None" = None,
    ) -> ScaleOutChip:
        """Run the full methodology: pick the pod, then fill the die with pods.

        Pod selection is chip-aware (Section 3.2.3, chip-level considerations):
        among the pods whose PD is within ``complexity_tolerance`` of the sweep's
        peak, the one whose *composed chip* reaches the highest chip-level
        performance density is chosen, breaking ties toward fewer cores per pod
        (lower design complexity, no reliance on software scalability).  This is
        what makes the methodology prefer a slightly larger LLC when memory
        bandwidth, rather than area, binds the pod count.
        """
        label = name or f"Scale-Out ({'OoO' if core_type == 'ooo' else core_type.capitalize()})"
        candidates = self.candidate_pods(core_type, interconnect, complexity_tolerance)
        best_chip: "ScaleOutChip | None" = None
        best_key: "tuple[float, float] | None" = None
        for point in candidates:
            chip = self.compose_chip(point.pod, name=label)
            if not chip.satisfies(self.constraints):
                continue
            chip_pd = chip.performance(self.model, self.suite) / chip.die_area_mm2
            # Chip PD is compared at coarse granularity so that, when two pod
            # choices are effectively equivalent at the chip level, the smaller
            # (lower-complexity) pod wins -- the paper's 2x16-core choice over a
            # single 32-core pod.
            key = (round(chip_pd, 3), -point.pod.cores)
            if best_key is None or key > best_key:
                best_key = key
                best_chip = chip
        if best_chip is None:
            # Fall back to the pure pod-PD selection if nothing fits the budgets.
            point = self.pd_optimal_pod(
                core_type=core_type,
                interconnect=interconnect,
                complexity_tolerance=complexity_tolerance,
            )
            best_chip = self.compose_chip(point.pod, name=label)
        return best_chip


def design_scale_out_processor(
    core_type: str = "ooo",
    node: TechnologyNode = NODE_40NM,
    interconnect: str = "crossbar",
    suite: "WorkloadSuite | None" = None,
) -> ScaleOutChip:
    """Convenience entry point: design a Scale-Out Processor for ``core_type`` at ``node``."""
    methodology = ScaleOutDesignMethodology(node=node, suite=suite)
    return methodology.design(core_type=core_type, interconnect=interconnect)
