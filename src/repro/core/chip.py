"""Chip-level composition of pods into a Scale-Out Processor.

A Scale-Out chip (Section 3.2.3) is a simple composition of one or more pods plus
memory and I/O interfaces.  Pods have no inter-pod connectivity or coherence, so
the chip-level "interconnect" is a trivial layer routing pod traffic to the shared
memory channels.  The same class also represents the baseline processors
(conventional, tiled, ideal): those are simply single-"pod" chips whose
organization unit spans the whole die.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.pod import Pod
from repro.memory.dram import DramChannel, channel_for_standard
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.perfmodel.density import AreaBudget, performance_density
from repro.technology.components import ComponentCatalog
from repro.technology.node import ChipConstraints, TechnologyNode
from repro.workloads.suite import WorkloadSuite, default_suite


@dataclass(frozen=True)
class ScaleOutChip:
    """A server processor composed of ``num_pods`` identical pods.

    Attributes:
        name: design name used in tables ("Scale-Out (OoO)", "Conventional", ...).
        pod: the organization unit (an actual pod, or the whole-die organization of
            a baseline design).
        num_pods: number of pod instances on the die.
        memory_channels: number of DRAM channels provisioned on the die.
        num_dies: number of stacked logic dies (1 for planar chips; Chapter 6
            stacks 2-4).
        pod_performance: optional pre-computed average aggregate IPC of one pod
            (lets callers reuse model evaluations); computed on demand otherwise.
    """

    name: str
    pod: Pod
    num_pods: int = 1
    memory_channels: int = 1
    num_dies: int = 1
    pod_performance: "float | None" = None

    def __post_init__(self) -> None:
        if self.num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        if self.memory_channels < 1:
            raise ValueError("memory_channels must be >= 1")
        if self.num_dies < 1:
            raise ValueError("num_dies must be >= 1")

    # ---------------------------------------------------------------- basics
    @property
    def node(self) -> TechnologyNode:
        """Technology node of the chip (that of its pods)."""
        return self.pod.node

    @property
    def total_cores(self) -> int:
        """Total core count across all pods."""
        return self.pod.cores * self.num_pods

    @property
    def total_llc_mb(self) -> float:
        """Total LLC capacity across all pods."""
        return self.pod.llc_capacity_mb * self.num_pods

    def dram_channel(self) -> DramChannel:
        """The DRAM channel model of this chip's node."""
        return channel_for_standard(self.node.memory_standard)

    # ------------------------------------------------------------------ area
    def area_budget(self) -> AreaBudget:
        """Itemized die area: pods + memory interfaces + SoC glue.

        For multi-die (3D) chips, this is the area of *one* logic die footprint:
        pods are distributed evenly across the stacked dies, while the memory
        interfaces and SoC components sit on the base die.  The footprint is the
        largest die in the stack.
        """
        catalog = ComponentCatalog(self.node)
        pods_budget = self.pod.area_budget().scaled(self.num_pods / self.num_dies)
        interfaces = AreaBudget(
            memory_interfaces_mm2=catalog.memory_interface_area_mm2(self.memory_channels),
            soc_misc_mm2=catalog.soc_misc.area_mm2,
        )
        return pods_budget + interfaces

    @property
    def die_area_mm2(self) -> float:
        """Die footprint area in mm^2 (per die for 3D stacks)."""
        return self.area_budget().total_mm2

    # ----------------------------------------------------------------- power
    @property
    def power_w(self) -> float:
        """Chip TDP: all pods plus memory interfaces plus SoC components."""
        catalog = ComponentCatalog(self.node)
        return (
            self.pod.power_w * self.num_pods
            + catalog.memory_interface_power_w(self.memory_channels)
            + catalog.soc_misc.power_w
        )

    # ----------------------------------------------------------- performance
    def performance(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Chip throughput: aggregate application IPC summed over all pods.

        Pods are independent servers, so chip performance is exactly
        ``num_pods * pod_performance`` (Section 3.2.1: adding pods does not affect
        the optimality of each pod).
        """
        per_pod = self.pod_performance
        if per_pod is None:
            per_pod = self.pod.performance(model, suite)
        return per_pod * self.num_pods

    def performance_density(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Chip-level performance density (per die footprint, per stacked die)."""
        return performance_density(
            self.performance(model, suite), self.die_area_mm2, self.num_dies
        )

    def performance_per_watt(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Chip energy efficiency: aggregate IPC per Watt of TDP."""
        return self.performance(model, suite) / self.power_w

    def bandwidth_demand_gbps(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> float:
        """Worst-case off-chip bandwidth demand of the whole chip."""
        return self.pod.bandwidth_demand_gbps(model, suite) * self.num_pods

    # ------------------------------------------------------------ constraints
    def satisfies(self, constraints: "ChipConstraints | None" = None) -> bool:
        """Whether the chip fits its node's area, power, and channel budgets."""
        constraints = constraints or self.node.constraints
        return (
            self.die_area_mm2 <= constraints.max_area_mm2
            and self.power_w <= constraints.max_power_w
            and self.memory_channels <= constraints.max_memory_channels
        )

    def limiting_constraint(self, constraints: "ChipConstraints | None" = None) -> str:
        """Which budget the design is closest to (area / power / bandwidth)."""
        constraints = constraints or self.node.constraints
        utilizations = {
            "area": self.die_area_mm2 / constraints.max_area_mm2,
            "power": self.power_w / constraints.max_power_w,
            "bandwidth": self.memory_channels / constraints.max_memory_channels,
        }
        return max(utilizations, key=utilizations.get)

    # ----------------------------------------------------------------- report
    def summary(
        self,
        model: "AnalyticPerformanceModel | None" = None,
        suite: "WorkloadSuite | None" = None,
    ) -> "dict[str, float | int | str]":
        """Table-row summary matching the columns of the paper's Tables 2.3/3.2."""
        model = model or AnalyticPerformanceModel()
        suite = suite or default_suite()
        perf = self.performance(model, suite)
        return {
            "design": self.name,
            "node": self.node.name,
            "pods": self.num_pods,
            "cores": self.total_cores,
            "llc_mb": self.total_llc_mb,
            "memory_channels": self.memory_channels,
            "dies": self.num_dies,
            "die_area_mm2": round(self.die_area_mm2, 1),
            "power_w": round(self.power_w, 1),
            "performance": round(perf, 2),
            "performance_density": round(performance_density(perf, self.die_area_mm2, self.num_dies), 4),
            "performance_per_watt": round(perf / self.power_w, 3),
        }

    def with_pod_performance(self, value: float) -> "ScaleOutChip":
        """Copy of this chip with a cached per-pod performance value."""
        return replace(self, pod_performance=value)
