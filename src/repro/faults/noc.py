"""NoC link-fault injection as a pure topology transform.

:func:`apply_link_faults` takes a :class:`~repro.noc.topology.NocTopology`
and a set of :class:`~repro.faults.events.LinkFault` events and returns a
*new* topology with the faults applied -- the input (which may be a shared,
cached instance) is never mutated, and an empty fault set returns the input
object itself so zero-fault NoC runs stay byte-identical.

Fault semantics:

* ``"degraded"`` -- both directed edges of the link keep existing but their
  latency is multiplied by ``latency_factor`` (rounded up) and their routing
  weight grows by the same factor, so shortest-path routing steers traffic
  around the slow link when an alternative exists;
* ``"down"`` -- both directed edges are removed, *unless* removal would cut
  some core off from some LLC bank (checked via strongly connected
  components over the core+LLC node set), in which case the link is degraded
  by ``latency_factor`` instead -- a partitioned network has no defined
  latency, so the transform refuses to create one.

The faulted topology drops the builder's oblivious routing function (XY or
row/column routing would happily route straight through a missing link) and
falls back to weighted shortest paths.  Both NoC engines consume
``topology.route()``, and the fastpath compiles its tables per topology
instance, so fastpath and reference stay bit-identical under faults.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import networkx as nx

from repro.faults.events import LinkFault
from repro.noc.topology import LinkAttributes, NocTopology


def undirected_links(topology: NocTopology) -> "tuple[tuple[int, int], ...]":
    """The topology's links as canonical (min, max) pairs, sorted.

    This is the link pool a :class:`~repro.faults.generator.FaultLoadGenerator`
    samples link faults from.
    """
    return tuple(
        sorted({(min(a, b), max(a, b)) for a, b in topology.graph.edges})
    )


def _cores_and_llcs_connected(graph: "nx.DiGraph", topology: NocTopology) -> bool:
    """Whether every core and LLC node still sits in one mutual-reach SCC."""
    required = set(topology.core_nodes) | set(topology.llc_nodes)
    for component in nx.strongly_connected_components(graph):
        if required <= component:
            return True
    return False


def _degrade(graph: "nx.DiGraph", a: int, b: int, factor: float) -> None:
    """Multiply one directed edge's latency and routing weight by ``factor``."""
    edge = graph.edges[a, b]
    attrs: LinkAttributes = edge["attrs"]
    edge["attrs"] = LinkAttributes(
        latency_cycles=int(math.ceil(attrs.latency_cycles * factor)),
        length_mm=attrs.length_mm,
    )
    edge["weight"] = edge["weight"] * factor


def apply_link_faults(
    topology: NocTopology, link_faults: "Sequence[LinkFault] | Iterable[LinkFault]"
) -> NocTopology:
    """Return ``topology`` with the link faults applied (input untouched).

    Args:
        topology: the healthy topology (possibly a shared cached instance;
            it is never mutated).
        link_faults: the faults to apply; links absent from the graph are
            ignored.

    Returns:
        The same object when ``link_faults`` is empty; otherwise a new
        :class:`NocTopology` named ``"<name>+faults"`` with weighted
        shortest-path routing and a fresh route cache.
    """
    faults = tuple(link_faults)
    if not faults:
        return topology

    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    graph = topology.graph.copy()
    for fault in faults:
        a, b = fault.link
        directed = [(x, y) for x, y in ((a, b), (b, a)) if graph.has_edge(x, y)]
        if not directed:
            continue
        if fault.severity == "down":
            removed = [(x, y, dict(graph.edges[x, y])) for x, y in directed]
            graph.remove_edges_from(directed)
            if _cores_and_llcs_connected(graph, topology):
                if tracer.enabled:
                    tracer.counter("faults.link_down").add()
                continue
            # Removal would partition cores from LLC banks; degrade instead.
            for x, y, data in removed:
                graph.add_edge(x, y, **data)
        for x, y in directed:
            _degrade(graph, x, y, fault.latency_factor)
        if tracer.enabled:
            tracer.counter("faults.link_degraded").add()

    return NocTopology(
        name=f"{topology.name}+faults",
        graph=graph,
        core_nodes=list(topology.core_nodes),
        llc_nodes=list(topology.llc_nodes),
        router_pipeline_cycles=dict(topology.router_pipeline_cycles),
        positions=dict(topology.positions),
        routing=None,
    )
