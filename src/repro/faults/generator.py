"""Seeded fault-load generation: config in, deterministic schedule out.

The generator is the only place randomness enters the fault subsystem.  A
:class:`FaultLoadGenerator` draws every event stream from its own
string-seeded :class:`random.Random` (``f"{seed}/crash/{server}"`` and
friends), so:

* the schedule is a pure function of ``(config, seed, num_servers,
  horizon_s, links)`` -- same inputs, same schedule, bit for bit;
* per-server streams are independent -- adding a server never perturbs the
  fault history of the others;
* string seeding is platform-stable (``random.Random`` hashes str seeds via
  sha512, not ``hash()``), so schedules reproduce across machines.

Time scale: the simulated horizons here are sub-second (``num_requests /
offered_qps``), while real MTBFs are months.  The studies therefore run
*accelerated* dependability experiments: fault load is expressed as crash
intensity (expected crashes per server over the horizon) or as an explicit
MTBF on the simulated clock, and MTTR as a fraction of the horizon.  The
mapping to real-world rates is a linear rescaling of the clock; see
``docs/faults.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.events import FaultSchedule, LinkFault, ServerCrash, Straggler


@dataclass(frozen=True)
class FaultLoadConfig:
    """Declarative fault-load parameters (all streams optional).

    Attributes:
        crash_intensity: expected number of crashes per server over the
            horizon (Poisson process; 0 disables crashes).  The effective
            MTBF on the simulated clock is ``horizon_s / crash_intensity``.
        mttr_fraction: deterministic repair time as a fraction of the
            horizon (each crash restarts ``mttr_fraction * horizon_s``
            seconds later).
        straggler_intensity: expected number of straggler windows per server
            over the horizon (0 disables stragglers).
        straggler_fraction: straggler window length as a fraction of the
            horizon.
        straggler_slowdown: service-time multiplier inside a window.
        num_failed_links: NoC links taken down outright.
        num_degraded_links: NoC links whose latency is multiplied.
        link_degradation_factor: the latency multiplier for degraded links.
    """

    crash_intensity: float = 0.0
    mttr_fraction: float = 0.1
    straggler_intensity: float = 0.0
    straggler_fraction: float = 0.2
    straggler_slowdown: float = 4.0
    num_failed_links: int = 0
    num_degraded_links: int = 0
    link_degradation_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.crash_intensity < 0:
            raise ValueError("crash_intensity must be >= 0")
        if not 0 < self.mttr_fraction < 1:
            raise ValueError("mttr_fraction must be in (0, 1)")
        if self.straggler_intensity < 0:
            raise ValueError("straggler_intensity must be >= 0")
        if not 0 < self.straggler_fraction < 1:
            raise ValueError("straggler_fraction must be in (0, 1)")
        if self.straggler_slowdown < 1:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.num_failed_links < 0 or self.num_degraded_links < 0:
            raise ValueError("link fault counts must be >= 0")
        if self.link_degradation_factor < 1:
            raise ValueError("link_degradation_factor must be >= 1")

    def is_zero(self) -> bool:
        """Whether this config can only ever produce empty schedules."""
        return (
            self.crash_intensity == 0
            and self.straggler_intensity == 0
            and self.num_failed_links == 0
            and self.num_degraded_links == 0
        )


class FaultLoadGenerator:
    """Draws deterministic :class:`FaultSchedule` objects from a seed.

    Args:
        config: the fault-load parameters.
        seed: base seed; every event stream derives its own
            ``random.Random(f"{seed}/<stream>")`` from it.
    """

    def __init__(self, config: FaultLoadConfig, seed: int = 1):
        self.config = config
        self.seed = int(seed)

    # ------------------------------------------------------------- streams
    def _stream(self, name: str) -> random.Random:
        """An independent, platform-stable RNG for one event stream."""
        return random.Random(f"{self.seed}/{name}")

    def _server_crashes(self, server: int, horizon_s: float) -> "list[ServerCrash]":
        """One server's crash/restart history over the horizon."""
        config = self.config
        mtbf_s = horizon_s / config.crash_intensity
        mttr_s = config.mttr_fraction * horizon_s
        rng = self._stream(f"crash/{server}")
        crashes: "list[ServerCrash]" = []
        t = rng.expovariate(1.0 / mtbf_s)
        while t < horizon_s:
            restart = t + mttr_s
            crashes.append(ServerCrash(server=server, at_s=t, restart_s=restart))
            # The next failure clock starts when the server is back up.
            t = restart + rng.expovariate(1.0 / mtbf_s)
        return crashes

    def _server_stragglers(self, server: int, horizon_s: float) -> "list[Straggler]":
        """One server's straggler windows over the horizon."""
        config = self.config
        gap_s = horizon_s / config.straggler_intensity
        window_s = config.straggler_fraction * horizon_s
        rng = self._stream(f"straggler/{server}")
        windows: "list[Straggler]" = []
        t = rng.expovariate(1.0 / gap_s)
        while t < horizon_s:
            windows.append(
                Straggler(
                    server=server,
                    at_s=t,
                    until_s=t + window_s,
                    slowdown=config.straggler_slowdown,
                )
            )
            t = t + window_s + rng.expovariate(1.0 / gap_s)
        return windows

    def _link_faults(self, links: "tuple[tuple[int, int], ...]") -> "list[LinkFault]":
        """Sample failed then degraded links, without replacement."""
        config = self.config
        wanted = config.num_failed_links + config.num_degraded_links
        if wanted == 0 or not links:
            return []
        # Canonical undirected link list: (min, max), sorted, deduplicated.
        pool = sorted({(min(a, b), max(a, b)) for a, b in links})
        rng = self._stream("links")
        picked = rng.sample(pool, min(wanted, len(pool)))
        faults: "list[LinkFault]" = []
        for index, link in enumerate(picked):
            if index < config.num_failed_links:
                faults.append(LinkFault(link=link, severity="down"))
            else:
                faults.append(
                    LinkFault(
                        link=link,
                        severity="degraded",
                        latency_factor=config.link_degradation_factor,
                    )
                )
        return faults

    # ------------------------------------------------------------ schedule
    def schedule(
        self,
        num_servers: int,
        horizon_s: float,
        links: "tuple[tuple[int, int], ...]" = (),
    ) -> FaultSchedule:
        """Generate the fault schedule for one run.

        Args:
            num_servers: cluster size (crash/straggler streams exist per
                server).
            horizon_s: the run's time horizon in seconds.
            links: the undirected NoC links eligible for link faults (omit
                for pure service-cluster studies).

        Returns:
            A deterministic, content-addressed :class:`FaultSchedule`.
        """
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        config = self.config
        crashes: "list[ServerCrash]" = []
        stragglers: "list[Straggler]" = []
        if config.crash_intensity > 0:
            for server in range(num_servers):
                crashes.extend(self._server_crashes(server, horizon_s))
        if config.straggler_intensity > 0:
            for server in range(num_servers):
                stragglers.extend(self._server_stragglers(server, horizon_s))
        return FaultSchedule(
            crashes=tuple(sorted(crashes, key=lambda c: (c.at_s, c.server))),
            stragglers=tuple(sorted(stragglers, key=lambda s: (s.at_s, s.server))),
            link_faults=tuple(self._link_faults(tuple(links))),
            seed=self.seed,
            horizon_s=horizon_s,
        )
