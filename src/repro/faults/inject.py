"""Fault injection into the event-driven service-cluster engine.

The injection path mirrors :meth:`repro.service.cluster.ClusterSimulation._run_event`
with three changes, each driven purely by the :class:`~repro.faults.events.FaultSchedule`
(never a live RNG, so determinism is inherited from the schedule):

* servers are :class:`FaultableServer` stations that can **crash** (queued and
  in-flight requests are lost; an epoch counter invalidates their pending
  completion events), **restart** (rejoin empty), and **straggle** (service
  times are multiplied while a straggler window is open at start-of-service);
* the balancer selects among **up** servers only; a request arriving while
  every server is down is counted as *unrouted* and never completes;
* fault events are scheduled onto the :class:`~repro.sim.engine.EventQueue`
  *before* any arrival, so the insertion-order tie-break resolves
  same-timestamp races identically on every run.

The run returns the usual :class:`~repro.service.cluster.ClusterResult` with
its ``dependability`` field filled: availability, goodput, loss accounting,
and time-to-recover (crash to first post-restart completion) alongside the
latency percentiles, which now describe the *completed* requests only.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.events import FaultSchedule
from repro.faults.metrics import DependabilityStats, availability_from_downtime
from repro.service.balancer import make_balancer
from repro.service.latency import LatencyCollector
from repro.service.queueing import Request, RequestServer
from repro.sim.engine import EventQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.service.cluster import ClusterResult, ClusterSimulation


class FaultableServer(RequestServer):
    """A :class:`RequestServer` that can crash, restart, and straggle.

    Crash semantics: everything queued or in service is lost, and an epoch
    counter invalidates the completion events already sitting in the engine
    (they fire, see a stale epoch, and do nothing).  Straggler semantics: a
    request starting service inside a straggler window costs ``slowdown``
    times its nominal service time; the multiplier is sampled once at
    start-of-service.
    """

    def __init__(self, server_id, parallelism, engine, collector, stragglers=()):
        super().__init__(server_id, parallelism, engine, collector)
        self.up = True
        self.epoch = 0
        self.lost = 0
        #: (at_s, until_s, slowdown) windows, time order; few per run.
        self.stragglers = tuple(
            (window.at_s, window.until_s, window.slowdown) for window in stragglers
        )
        #: Crash times awaiting their first post-restart completion.
        self._pending_recoveries: "list[float]" = []
        #: Resolved crash-to-completion gaps.
        self.recovery_times_s: "list[float]" = []

    # ----------------------------------------------------------- stragglers
    def slowdown_at(self, now: float) -> float:
        """The service-time multiplier in effect at ``now`` (>= 1)."""
        factor = 1.0
        for at_s, until_s, slowdown in self.stragglers:
            if at_s <= now < until_s and slowdown > factor:
                factor = slowdown
        return factor

    # -------------------------------------------------------------- service
    def _start(self, request: Request) -> None:
        self.busy_units += 1
        effective_s = request.service_s * self.slowdown_at(self.engine.now)
        epoch = self.epoch
        self.engine.schedule(
            effective_s,
            lambda: self._complete_faulted(request, epoch, effective_s),
        )

    def _complete_faulted(self, request: Request, epoch: int, effective_s: float) -> None:
        if epoch != self.epoch:
            # The server crashed after this request started; it was already
            # counted as lost and the unit it held no longer exists.
            return
        self.busy_units -= 1
        self.completed += 1
        self.busy_time_s += effective_s
        now = self.engine.now
        self.collector.record(request.index, self.server_id, now - request.arrival_s)
        if self._pending_recoveries:
            # First completion since the (post-restart) server came back:
            # every outstanding crash recovers here.
            self.recovery_times_s.extend(
                now - crash_s for crash_s in self._pending_recoveries
            )
            self._pending_recoveries.clear()
        if self.queue:
            self._start(self.queue.popleft())

    # --------------------------------------------------------------- faults
    def crash(self) -> int:
        """Go down now; returns how many requests were lost."""
        lost = self.busy_units + len(self.queue)
        self.lost += lost
        self.queue.clear()
        self.busy_units = 0
        self.epoch += 1
        self.up = False
        self._pending_recoveries.append(self.engine.now)
        return lost

    def restart(self) -> None:
        """Rejoin the cluster with an empty queue."""
        self.up = True

    def unresolved_recoveries(self, end_s: float) -> "list[float]":
        """Crash-to-end gaps for crashes that never saw a completion."""
        return [end_s - crash_s for crash_s in self._pending_recoveries]


def run_faulted(
    simulation: "ClusterSimulation",
    num_requests: int,
    schedule: FaultSchedule,
) -> "ClusterResult":
    """Run one cluster simulation under a fault schedule (event engine).

    Args:
        simulation: the configured simulation (policy, seed, config); its
            request/routing streams are consumed exactly as in the un-faulted
            event engine.
        num_requests: requests to offer.
        schedule: the fault load; must be non-empty (empty schedules take the
            un-faulted path in :meth:`ClusterSimulation.run` so zero-fault
            runs stay byte-identical).

    Returns:
        A :class:`ClusterResult` whose ``dependability`` field is filled.
    """
    from repro.obs.tracer import get_tracer
    from repro.service.cluster import ClusterResult

    config = simulation.config
    tracer = get_tracer()
    engine = EventQueue()
    warmup = int(num_requests * config.warmup_fraction)
    collector = LatencyCollector(warmup_requests=warmup)
    servers = [
        FaultableServer(
            i,
            config.parallelism,
            engine,
            collector,
            stragglers=[s for s in schedule.stragglers if s.server == i],
        )
        for i in range(config.num_servers)
    ]
    balancer = make_balancer(config.policy)
    routing_rng = random.Random(simulation.seed + 2)

    crash_count = [0]
    restart_count = [0]
    unrouted = [0]

    def crash_server(server: FaultableServer) -> None:
        """Take one server down, counting its lost requests."""
        lost = server.crash()
        crash_count[0] += 1
        if tracer.enabled:
            tracer.counter("faults.server_crash").add()
            tracer.counter("faults.requests_lost").add(lost)

    def restart_server(server: FaultableServer) -> None:
        """Bring one server back up."""
        server.restart()
        restart_count[0] += 1
        if tracer.enabled:
            tracer.counter("faults.server_restart").add()

    def route(request: Request) -> None:
        """Balance among up servers; count the request unrouted if none."""
        up = [server for server in servers if server.up]
        if not up:
            unrouted[0] += 1
            if tracer.enabled:
                tracer.counter("faults.requests_unrouted").add()
            return
        up[balancer.select(up, routing_rng)].offer(request)

    with tracer.span(
        "faults.inject",
        category="faults",
        crashes=len(schedule.crashes),
        stragglers=len(schedule.stragglers),
        servers=config.num_servers,
        requests=num_requests,
    ):
        # Fault events first: at equal timestamps the insertion-order
        # tie-break then runs crash/restart before any same-time arrival.
        for crash in schedule.crashes:
            if crash.server >= config.num_servers:
                continue
            server = servers[crash.server]
            engine.schedule_at(crash.at_s, lambda server=server: crash_server(server))
            engine.schedule_at(
                crash.restart_s, lambda server=server: restart_server(server)
            )
        if tracer.enabled and schedule.stragglers:
            tracer.counter("faults.straggler_windows").add(len(schedule.stragglers))
        for request in simulation._generate_requests(num_requests):
            engine.schedule_at(
                request.arrival_s, lambda request=request: route(request)
            )
        engine.run()
        if tracer.enabled:
            tracer.counter("service.events").add(engine.processed)

        duration = engine.now
        completed = sum(server.completed for server in servers)
        lost = sum(server.lost for server in servers)
        recoveries: "list[float]" = []
        for server in servers:
            recoveries.extend(server.recovery_times_s)
            recoveries.extend(server.unresolved_recoveries(duration))
        downtime = schedule.downtime_s(config.num_servers, duration)
        dependability = DependabilityStats(
            availability=availability_from_downtime(
                config.num_servers, duration, downtime
            ),
            goodput_qps=completed / duration if duration > 0 else 0.0,
            offered_requests=num_requests,
            completed_requests=completed,
            lost_requests=lost,
            unrouted_requests=unrouted[0],
            crashes=crash_count[0],
            downtime_s=downtime,
            mean_time_to_recover_s=(
                sum(recoveries) / len(recoveries) if recoveries else 0.0
            ),
            max_time_to_recover_s=max(recoveries, default=0.0),
        )

    if collector.measured == 0:
        raise ValueError(
            "fault load left no completed requests in the measurement window; "
            "lower the crash intensity or offer more requests"
        )
    utilizations = [server.utilization(duration) for server in servers]
    return ClusterResult(
        config=config,
        latency=collector.stats(),
        measured_requests=collector.measured,
        total_requests=num_requests,
        duration_s=duration,
        mean_utilization=sum(utilizations) / len(utilizations),
        per_server_counts=collector.per_server_counts(),
        dependability=dependability,
    )
