"""Fault events and the immutable, content-addressed fault schedule.

Three event kinds cover the failure modes the dependability studies model:

* :class:`ServerCrash` -- a server goes down at ``at_s`` and comes back at
  ``restart_s`` (crash + restart-after-MTTR); work queued or in flight on the
  server at crash time is lost.
* :class:`Straggler` -- a server serves requests ``slowdown`` times slower
  during a window (the classic slow-machine failure mode).
* :class:`LinkFault` -- a NoC link is degraded (latency multiplied) or down
  (removed from the topology, traffic routes around it).

A :class:`FaultSchedule` bundles the events for one run.  It is frozen,
picklable (sweeps ship schedules to pool workers), and carries a SHA-256
:meth:`~FaultSchedule.digest` over its canonical JSON rendering, so envelope
provenance and the run ledger can pin exactly which fault load a result was
produced under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Severities a :class:`LinkFault` can carry.
LINK_SEVERITIES = ("degraded", "down")


@dataclass(frozen=True)
class ServerCrash:
    """One server crash with its restart time.

    Attributes:
        server: index of the crashed server (0-based).
        at_s: simulation time of the crash, in seconds.
        restart_s: simulation time the server rejoins the cluster; must be
            after ``at_s`` (the gap is the repair time, MTTR).
    """

    server: int
    at_s: float
    restart_s: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if self.at_s < 0:
            raise ValueError("crash time must be non-negative")
        if self.restart_s <= self.at_s:
            raise ValueError("restart_s must be after at_s")

    @property
    def downtime_s(self) -> float:
        """Repair time of this crash (restart minus crash)."""
        return self.restart_s - self.at_s


@dataclass(frozen=True)
class Straggler:
    """A slow-machine window: one server serves ``slowdown``x slower.

    Attributes:
        server: index of the straggling server.
        at_s: window start, in seconds.
        until_s: window end; must be after ``at_s``.
        slowdown: service-time multiplier applied while the window is open
            (must be >= 1; 1 is a no-op).
    """

    server: int
    at_s: float
    until_s: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if self.at_s < 0:
            raise ValueError("straggler start must be non-negative")
        if self.until_s <= self.at_s:
            raise ValueError("until_s must be after at_s")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")


@dataclass(frozen=True)
class LinkFault:
    """One degraded or failed NoC link.

    Attributes:
        link: undirected (a, b) node pair naming the link; both directed
            edges are affected.
        severity: ``"degraded"`` (latency multiplied by ``latency_factor``)
            or ``"down"`` (the link is removed and traffic routes around it).
        latency_factor: latency multiplier for degraded links; also the
            fallback penalty when removing a ``"down"`` link would partition
            the network (see :func:`repro.faults.noc.apply_link_faults`).
    """

    link: "tuple[int, int]"
    severity: str = "degraded"
    latency_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.severity not in LINK_SEVERITIES:
            raise ValueError(
                f"severity must be one of {LINK_SEVERITIES}, got {self.severity!r}"
            )
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        # Normalise tuple-ness so schedules hash identically however built.
        object.__setattr__(self, "link", (int(self.link[0]), int(self.link[1])))


def _merge_intervals(intervals: "list[tuple[float, float]]") -> "list[tuple[float, float]]":
    """Union of possibly overlapping [start, end) intervals, sorted."""
    merged: "list[tuple[float, float]]" = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class FaultSchedule:
    """The complete, immutable fault load of one run.

    Attributes:
        crashes: server crash/restart events, any order.
        stragglers: slow-machine windows, any order.
        link_faults: NoC link faults (applied for the whole run).
        seed: the generator seed the schedule was drawn from (``None`` for
            hand-built schedules); recorded for provenance only.
        horizon_s: the time horizon the schedule was generated for.
    """

    crashes: "tuple[ServerCrash, ...]" = ()
    stragglers: "tuple[Straggler, ...]" = ()
    link_faults: "tuple[LinkFault, ...]" = ()
    seed: "int | None" = None
    horizon_s: float = 0.0

    def __post_init__(self) -> None:
        # Accept any iterable for convenience; store canonical tuples.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "link_faults", tuple(self.link_faults))

    # ----------------------------------------------------------------- shape
    @property
    def num_events(self) -> int:
        """Total number of fault events in the schedule."""
        return len(self.crashes) + len(self.stragglers) + len(self.link_faults)

    def is_empty(self) -> bool:
        """Whether the schedule carries no fault at all (the zero-fault case).

        Empty schedules make fault-aware callers take exactly the un-faulted
        code path, so a zero-fault run is byte-identical to one that never
        heard of faults.
        """
        return self.num_events == 0

    # ------------------------------------------------------------- identity
    def canonical(self) -> "dict[str, object]":
        """Deterministic JSON-able rendering (the digest's preimage)."""
        return {
            "crashes": [
                [c.server, c.at_s, c.restart_s]
                for c in sorted(self.crashes, key=lambda c: (c.at_s, c.server))
            ],
            "stragglers": [
                [s.server, s.at_s, s.until_s, s.slowdown]
                for s in sorted(self.stragglers, key=lambda s: (s.at_s, s.server))
            ],
            "link_faults": [
                [list(f.link), f.severity, f.latency_factor]
                for f in sorted(self.link_faults, key=lambda f: f.link)
            ],
            "horizon_s": self.horizon_s,
        }

    def digest(self) -> str:
        """SHA-256 content digest of the schedule (seed-independent).

        Two schedules with identical events share a digest regardless of how
        they were built, so provenance records pin the *fault load*, not the
        construction path.
        """
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------ downtime
    def downtime_intervals(self, server: int) -> "list[tuple[float, float]]":
        """Merged [crash, restart) downtime intervals of one server."""
        return _merge_intervals(
            [(c.at_s, c.restart_s) for c in self.crashes if c.server == server]
        )

    def downtime_s(self, num_servers: int, duration_s: float) -> float:
        """Total server-downtime (seconds) within ``[0, duration_s]``.

        The availability denominator is ``num_servers * duration_s``; this is
        its numerator's complement, summed over per-server merged intervals
        so overlapping crash records never double-count.
        """
        if duration_s <= 0:
            return 0.0
        total = 0.0
        for server in range(num_servers):
            for start, end in self.downtime_intervals(server):
                total += max(0.0, min(end, duration_s) - min(start, duration_s))
        return total

    def crashes_for(self, server: int) -> "tuple[ServerCrash, ...]":
        """This server's crashes in time order."""
        return tuple(
            sorted(
                (c for c in self.crashes if c.server == server),
                key=lambda c: c.at_s,
            )
        )


#: The canonical zero-fault schedule (shared; :meth:`FaultSchedule.is_empty`).
EMPTY_SCHEDULE = FaultSchedule()
