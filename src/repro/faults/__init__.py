"""Fault injection and dependability metrics.

At the scale the service studies target, failures are the steady state, not
the exception: servers crash and restart, NoC links degrade or fail outright,
and individual machines limp along orders of magnitude slower than their
peers.  This package makes those events first-class, reproducible inputs:

* :mod:`repro.faults.events` -- the fault vocabulary
  (:class:`ServerCrash`, :class:`Straggler`, :class:`LinkFault`) and the
  immutable :class:`FaultSchedule` that carries a content digest so any
  faulted run can be traced back to its exact fault load;
* :mod:`repro.faults.generator` -- the seeded :class:`FaultLoadGenerator`
  turning a :class:`FaultLoadConfig` into a deterministic schedule;
* :mod:`repro.faults.inject` -- the event-engine injection path for the
  service cluster simulation (crash-aware servers, fault-masking routing);
* :mod:`repro.faults.noc` -- link-fault injection for the NoC simulation as
  a pure topology transform (both NoC engines stay bit-identical);
* :mod:`repro.faults.metrics` -- :class:`DependabilityStats` (availability,
  goodput, time-to-recover) collected alongside the latency percentiles.

Determinism contract: a schedule is a pure function of its generator's seed
and configuration, injection only consumes the schedule (never a live RNG),
and zero-fault runs take exactly the un-faulted code path -- byte-identical
results, cache keys, and envelopes.
"""

from repro.faults.events import FaultSchedule, LinkFault, ServerCrash, Straggler
from repro.faults.generator import FaultLoadConfig, FaultLoadGenerator
from repro.faults.metrics import DependabilityStats, availability_from_downtime
from repro.faults.noc import apply_link_faults

__all__ = [
    "DependabilityStats",
    "FaultLoadConfig",
    "FaultLoadGenerator",
    "FaultSchedule",
    "LinkFault",
    "ServerCrash",
    "Straggler",
    "apply_link_faults",
    "availability_from_downtime",
]
