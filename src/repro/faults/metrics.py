"""Dependability metrics collected alongside the latency percentiles.

:class:`DependabilityStats` is the fault-run counterpart of
:class:`repro.service.latency.LatencyStats`: a frozen, picklable summary of
how the cluster behaved *as a service* while faults were active --
availability (server-uptime fraction), goodput (completed request rate),
loss accounting (requests lost in crashes vs. unroutable while every server
was down), and time-to-recover (crash to first post-restart completion).
"""

from __future__ import annotations

from dataclasses import dataclass


def availability_from_downtime(
    num_servers: int, duration_s: float, downtime_s: float
) -> float:
    """Server-uptime fraction: ``1 - downtime / (servers * duration)``.

    Args:
        num_servers: cluster size.
        duration_s: observation window length in seconds.
        downtime_s: total server-seconds of downtime inside the window.

    Returns:
        Availability in [0, 1]; 1.0 for an empty window.
    """
    capacity = num_servers * duration_s
    if capacity <= 0:
        return 1.0
    return max(0.0, min(1.0, 1.0 - downtime_s / capacity))


@dataclass(frozen=True)
class DependabilityStats:
    """How a cluster behaved under its fault schedule.

    Attributes:
        availability: server-uptime fraction over the run (1.0 = no
            downtime).
        goodput_qps: completed requests per second of simulated time.
        offered_requests: requests presented to the cluster.
        completed_requests: requests that finished service.
        lost_requests: requests dropped because their server crashed while
            they were queued or in service.
        unrouted_requests: requests that arrived while *every* server was
            down and could not be routed at all.
        crashes: number of server crash events in the run.
        downtime_s: total server-seconds of downtime.
        mean_time_to_recover_s: mean crash-to-first-completion gap over all
            crashes (0.0 when there were none).
        max_time_to_recover_s: the worst such gap (0.0 when none).
    """

    availability: float
    goodput_qps: float
    offered_requests: int
    completed_requests: int
    lost_requests: int
    unrouted_requests: int
    crashes: int
    downtime_s: float
    mean_time_to_recover_s: float
    max_time_to_recover_s: float

    @property
    def failed_requests(self) -> int:
        """Requests that never completed (lost + unrouted)."""
        return self.lost_requests + self.unrouted_requests

    @property
    def goodput_fraction(self) -> float:
        """Completed / offered (1.0 for an empty run)."""
        if self.offered_requests == 0:
            return 1.0
        return self.completed_requests / self.offered_requests

    def as_row(self) -> "dict[str, float | int]":
        """Flat dict of the headline metrics, for sweep rows and envelopes."""
        return {
            "availability": self.availability,
            "goodput_qps": self.goodput_qps,
            "goodput_fraction": self.goodput_fraction,
            "offered_requests": self.offered_requests,
            "completed_requests": self.completed_requests,
            "lost_requests": self.lost_requests,
            "unrouted_requests": self.unrouted_requests,
            "failed_requests": self.failed_requests,
            "crashes": self.crashes,
            "downtime_s": self.downtime_s,
            "mean_time_to_recover_s": self.mean_time_to_recover_s,
            "max_time_to_recover_s": self.max_time_to_recover_s,
        }
