"""Spec catalog: lookup of experiments by id, chapter, kind, and claims.

Besides the spec lookup, a catalog carries *paper claims* -- expected-value
records (see :mod:`repro.report.claims`) attached to the experiment that
reproduces them -- so any figure/table/study/explore spec can declare what the
source paper says about its output and the report subsystem can grade it.
Claims are duck-typed here (anything with ``claim_id`` and ``experiment_id``
attributes) to keep the runtime layer free of report-layer imports.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.runtime.spec import ExperimentSpec


class UnknownExperimentError(KeyError):
    """Raised for an experiment id the catalog does not know about."""

    def __init__(self, experiment_id: str, known: "Iterable[str]"):
        super().__init__(
            f"unknown experiment {experiment_id!r}; known: {sorted(known)}"
        )
        self.experiment_id = experiment_id


class SpecCatalog:
    """An ordered, queryable collection of :class:`ExperimentSpec`."""

    def __init__(self, specs: "Iterable[ExperimentSpec]" = ()):
        self._specs: "dict[str, ExperimentSpec]" = {}
        self._claims: "dict[str, list]" = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; ids must be unique."""
        if spec.experiment_id in self._specs:
            raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
        self._specs[spec.experiment_id] = spec
        return spec

    def get(self, experiment_id: str) -> ExperimentSpec:
        """Look one spec up by id; raises :class:`UnknownExperimentError`."""
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise UnknownExperimentError(experiment_id, self._specs) from None

    def ids(self) -> "list[str]":
        """All experiment ids, in registration order."""
        return list(self._specs)

    def select(
        self, chapter: "int | None" = None, kind: "str | None" = None
    ) -> "list[ExperimentSpec]":
        """All specs matching the given chapter and/or kind filters."""
        return [
            spec
            for spec in self._specs.values()
            if (chapter is None or spec.chapter == chapter)
            and (kind is None or spec.kind == kind)
        ]

    def by_chapter(self, chapter: int) -> "list[ExperimentSpec]":
        """All specs belonging to ``chapter``."""
        return self.select(chapter=chapter)

    def by_kind(self, kind: str) -> "list[ExperimentSpec]":
        """All specs of the given kind (figure/table/study/explore)."""
        return self.select(kind=kind)

    # ------------------------------------------------------------- claims
    def attach_claims(self, claims: "Iterable[object]") -> None:
        """Attach paper claims to the specs that reproduce them.

        Args:
            claims: objects with ``claim_id`` and ``experiment_id``
                attributes (see :class:`repro.report.claims.PaperClaim`).

        Raises:
            UnknownExperimentError: if a claim names an uncatalogued spec.
            ValueError: on a duplicate claim id.
        """
        # Validate the whole batch before mutating, so a bad claim can be
        # fixed and the batch re-attached without wedging the catalog.
        known = {claim.claim_id for claim in self.claims()}
        staged = []
        for claim in claims:
            self.get(claim.experiment_id)  # raises UnknownExperimentError
            if claim.claim_id in known:
                raise ValueError(f"duplicate claim id {claim.claim_id!r}")
            known.add(claim.claim_id)
            staged.append(claim)
        for claim in staged:
            self._claims.setdefault(claim.experiment_id, []).append(claim)

    def claims_for(self, experiment_id: str) -> "list[object]":
        """The claims attached to one spec (empty if none)."""
        self.get(experiment_id)
        return list(self._claims.get(experiment_id, ()))

    def claims(self) -> "list[object]":
        """Every attached claim, grouped by spec in registration order."""
        return [
            claim
            for spec_id in self._specs
            for claim in self._claims.get(spec_id, ())
        ]

    def claimed_ids(self) -> "list[str]":
        """Ids of the specs that carry at least one claim, in catalog order."""
        return [spec_id for spec_id in self._specs if self._claims.get(spec_id)]

    def chapters(self) -> "list[int]":
        """Sorted chapter numbers present in the catalog."""
        return sorted({spec.chapter for spec in self._specs.values()})

    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._specs

    def __iter__(self) -> "Iterator[ExperimentSpec]":
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)
