"""Spec catalog: lookup of experiments by id, chapter, and kind."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.runtime.spec import ExperimentSpec


class UnknownExperimentError(KeyError):
    """Raised for an experiment id the catalog does not know about."""

    def __init__(self, experiment_id: str, known: "Iterable[str]"):
        super().__init__(
            f"unknown experiment {experiment_id!r}; known: {sorted(known)}"
        )
        self.experiment_id = experiment_id


class SpecCatalog:
    """An ordered, queryable collection of :class:`ExperimentSpec`."""

    def __init__(self, specs: "Iterable[ExperimentSpec]" = ()):
        self._specs: "dict[str, ExperimentSpec]" = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; ids must be unique."""
        if spec.experiment_id in self._specs:
            raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
        self._specs[spec.experiment_id] = spec
        return spec

    def get(self, experiment_id: str) -> ExperimentSpec:
        """Look one spec up by id; raises :class:`UnknownExperimentError`."""
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise UnknownExperimentError(experiment_id, self._specs) from None

    def ids(self) -> "list[str]":
        """All experiment ids, in registration order."""
        return list(self._specs)

    def select(
        self, chapter: "int | None" = None, kind: "str | None" = None
    ) -> "list[ExperimentSpec]":
        """All specs matching the given chapter and/or kind filters."""
        return [
            spec
            for spec in self._specs.values()
            if (chapter is None or spec.chapter == chapter)
            and (kind is None or spec.kind == kind)
        ]

    def by_chapter(self, chapter: int) -> "list[ExperimentSpec]":
        """All specs belonging to ``chapter``."""
        return self.select(chapter=chapter)

    def by_kind(self, kind: str) -> "list[ExperimentSpec]":
        """All specs of the given kind (figure/table/study/explore)."""
        return self.select(kind=kind)

    def chapters(self) -> "list[int]":
        """Sorted chapter numbers present in the catalog."""
        return sorted({spec.chapter for spec in self._specs.values()})

    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._specs

    def __iter__(self) -> "Iterator[ExperimentSpec]":
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)
