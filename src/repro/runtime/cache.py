"""Content-addressed result cache: in-memory tier plus optional on-disk tier.

Cache keys are a SHA-256 digest of the computation identity (the experiment
function's qualified name) and a canonical JSON rendering of its keyword
arguments.  Dataclasses (workload suites, system configs, technology nodes...)
canonicalize structurally, so two calls with equal-valued configuration objects
share a cache entry.  Executors are excluded from the key -- how a sweep is
scheduled never changes its rows.

The on-disk tier stores JSON when the payload allows it and falls back to
pickle, under one file per key, so repeated ``python -m repro run`` invocations
hit the cache across processes.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import json
import os
import pickle
from typing import Mapping

#: Environment variable adding a disk tier to the default cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def canonicalize(value: object) -> object:
    """Reduce ``value`` to deterministic JSON-serializable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(repr(canonicalize(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if callable(value):
        return f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', repr(value))}"
    # Iterable containers such as WorkloadSuite canonicalize element-wise.
    try:
        return [canonicalize(v) for v in value]  # type: ignore[union-attr]
    except TypeError:
        return repr(value)


def result_key(cache_token: str, kwargs: "Mapping[str, object]") -> str:
    """Content address for (computation, canonicalized kwargs).

    Scheduling- and storage-only arguments (``SweepExecutor`` and
    ``ResultCache`` instances) are dropped: they change how points are fanned
    out or where evaluations are memoized, never what the rows contain.
    """
    from repro.runtime.executor import SweepExecutor

    meaningful = {
        name: value
        for name, value in kwargs.items()
        if not isinstance(value, (SweepExecutor, ResultCache))
    }
    payload = json.dumps(
        {"fn": cache_token, "kwargs": canonicalize(meaningful)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def evaluation_overrides(
    function, use_cache: bool, cache: "ResultCache | None"
) -> "dict[str, object]":
    """Cache-flag overrides for experiments with an internal evaluation cache.

    Cache-aware experiment functions (the explore studies) memoize their
    per-candidate model evaluations in their own cache tier and accept
    ``use_evaluation_cache`` / ``evaluation_cache`` parameters to control it.
    This helper centralizes the forwarding rule shared by the CLI, the bench
    harness, and the report validator:

    * ``use_cache=False`` disables the internal tier too (a no-cache run
      really recomputes every evaluation);
    * a disk-backed ``cache`` is forwarded as the internal tier, so
      evaluations dedupe across processes and studies.

    Functions without these parameters get an empty dict.
    """
    import inspect

    accepted = inspect.signature(function).parameters
    overrides: "dict[str, object]" = {}
    if not use_cache and "use_evaluation_cache" in accepted:
        overrides["use_evaluation_cache"] = False
    if use_cache and cache is not None and cache.cache_dir and "evaluation_cache" in accepted:
        overrides["evaluation_cache"] = cache
    return overrides


class ResultCache:
    """Two-tier (memory, optional disk) store of experiment payloads by key.

    Every lookup and store is counted -- per cache and per *category* (the
    caller's tier: ``"experiment"`` envelopes, ``"evaluation"`` candidates,
    ``"report"`` jobs) -- and exposed through :meth:`stats` even without a
    tracer attached.  When a tracer is enabled the same counts also feed its
    ``cache.<category>.<kind>`` counters, which is what the envelope's
    telemetry block reports.
    """

    #: Category recorded when the caller does not name one.
    DEFAULT_CATEGORY = "result"

    def __init__(self, cache_dir: "str | None" = None):
        self._memory: "dict[str, object]" = {}
        self.cache_dir = cache_dir
        self._stats: "dict[str, int]" = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0, "corrupt": 0,
            "bytes_stored": 0,
        }
        self._category_stats: "dict[str, dict[str, int]]" = {}
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _count(self, kind: str, category: "str | None", amount: int = 1) -> None:
        """Record ``amount`` events of ``kind`` against ``category``."""
        from repro.obs.tracer import get_tracer

        category = category or self.DEFAULT_CATEGORY
        self._stats[kind] += amount
        per_category = self._category_stats.setdefault(
            category, {"hits": 0, "misses": 0, "stores": 0, "evictions": 0, "corrupt": 0}
        )
        if kind in per_category:
            per_category[kind] += amount
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter(f"cache.{category}.{kind}").add(amount)

    def stats(self) -> "dict[str, object]":
        """Lifetime accounting: hits/misses/stores/evictions (+ per category).

        Available with or without a tracer; ``repro explore --json`` lifts
        this into its envelope as ``cache_stats``.
        """
        return {**self._stats, "categories": {
            name: dict(values) for name, values in sorted(self._category_stats.items())
        }}

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Memory-only cache, plus a disk tier when ``REPRO_CACHE_DIR`` is set."""
        return cls(cache_dir=os.environ.get(CACHE_DIR_ENV) or None)

    # ------------------------------------------------------------------ lookup
    def get(self, key: str, category: "str | None" = None) -> object:
        """The cached payload for ``key`` (a deep copy), or ``None``.

        Args:
            key: content address from :func:`result_key`.
            category: accounting bucket for :meth:`stats` and the tracer's
                ``cache.<category>.*`` counters.
        """
        if key in self._memory:
            self._count("hits", category)
            return copy.deepcopy(self._memory[key])
        if self.cache_dir:
            payload = self._read_disk(key, category)
            if payload is not None:
                self._memory[key] = payload
                self._count("hits", category)
                return copy.deepcopy(payload)
        self._count("misses", category)
        return None

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self.cache_dir is not None and self._read_disk(key) is not None
        )

    # ------------------------------------------------------------------- store
    def put(self, key: str, payload: object, category: "str | None" = None) -> None:
        """Store ``payload`` under ``key`` in every tier.

        Args:
            key: content address from :func:`result_key`.
            payload: value to memoize (deep-copied on the way in).
            category: accounting bucket (see :meth:`get`).
        """
        payload = copy.deepcopy(payload)
        self._memory[key] = payload
        self._count("stores", category)
        if self.cache_dir:
            written = self._write_disk(key, payload)
            self._stats["bytes_stored"] += written

    def clear(self) -> None:
        """Drop the in-memory tier and delete any on-disk entries."""
        evicted = len(self._memory)
        self._memory.clear()
        if self.cache_dir and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.endswith((".json", ".pkl")):
                    os.unlink(os.path.join(self.cache_dir, name))
                    evicted += 1
        if evicted:
            self._count("evictions", None, evicted)

    def __len__(self) -> int:
        return len(self._memory)

    # -------------------------------------------------------------- disk tier
    def _path(self, key: str, suffix: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}{suffix}")

    def _read_disk(self, key: str, category: "str | None" = None) -> object:
        """The on-disk payload for ``key``, or ``None``.

        A corrupt or unreadable entry (truncated JSON, stale pickle, bad
        permissions, any deserialization failure) degrades to a miss -- it is
        counted under the ``corrupt`` kind (and the tracer's
        ``cache.<category>.corrupt`` counter) but never raised, so one bad
        file cannot take down a run that can simply recompute.
        """
        json_path = self._path(key, ".json")
        if os.path.exists(json_path):
            try:
                with open(json_path, "r", encoding="utf-8") as handle:
                    return json.load(handle)["payload"]
            except Exception:
                self._count("corrupt", category)
                return None
        pickle_path = self._path(key, ".pkl")
        if os.path.exists(pickle_path):
            try:
                with open(pickle_path, "rb") as handle:
                    return pickle.load(handle)
            except Exception:
                self._count("corrupt", category)
                return None
        return None

    def _write_disk(self, key: str, payload: object) -> int:
        try:
            text = json.dumps({"payload": payload})
        except (TypeError, ValueError):
            blob = pickle.dumps(payload)
            with open(self._path(key, ".pkl"), "wb") as handle:
                handle.write(blob)
            return len(blob)
        with open(self._path(key, ".json"), "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(text.encode("utf-8"))
