"""Unified experiment runtime.

The runtime decouples *what* an experiment is (:class:`ExperimentSpec`,
collected in a :class:`SpecCatalog`) from *how* it runs (:class:`SweepExecutor`
fanning independent design points over a process pool) and *whether it needs to
run at all* (:class:`ResultCache`, content-addressed by computation identity
and canonicalized arguments).  Every table and figure in the repo is produced
through this machinery; ``python -m repro`` drives it from the command line.
"""

from repro.runtime.cache import CACHE_DIR_ENV, ResultCache, canonicalize, result_key
from repro.runtime.catalog import SpecCatalog, UnknownExperimentError
from repro.runtime.executor import (
    EXECUTOR_ENV,
    MAX_WORKERS_ENV,
    SERIAL_EXECUTOR,
    SweepExecutor,
    SweepPointError,
)
from repro.runtime.spec import ExperimentResult, ExperimentSpec

__all__ = [
    "CACHE_DIR_ENV",
    "EXECUTOR_ENV",
    "MAX_WORKERS_ENV",
    "SERIAL_EXECUTOR",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "SpecCatalog",
    "SweepExecutor",
    "SweepPointError",
    "UnknownExperimentError",
    "canonicalize",
    "result_key",
]
