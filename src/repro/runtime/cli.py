"""Command-line driver for the experiment runtime (``python -m repro``).

Subcommands:

* ``list`` -- enumerate the catalog, optionally filtered by chapter or kind.
* ``run`` -- run one or more experiments and print their tables.
* ``sweep`` -- cross-product parameter sweep over one experiment.
* ``explore`` -- run a design-space exploration and print its Pareto frontier.
* ``bench`` -- time every (or selected) experiment with caching off.
* ``report`` -- grade every registered paper claim and render the
  reproduction report (exit code 1 if any claim grades ``fail``).
* ``stats`` -- summarize the append-only run ledger (one record per
  ``run``/``sweep``/``explore``/``report``/``bench`` invocation).

``run`` and ``sweep`` accept repeated ``--set key=value`` overrides (values are
parsed as Python literals when possible); ``sweep`` splits comma-separated
values into sweep axes.  Results flow through the shared result cache; pass
``--cache-dir`` to persist them across invocations or ``--no-cache`` to
disable caching entirely.  Every running subcommand accepts
``--trace out.json`` to record a Chrome-trace/Perfetto span timeline of the
invocation (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import ast
import inspect
import itertools
import json
import sys
from typing import Sequence

from repro.runtime.cache import ResultCache, evaluation_overrides
from repro.runtime.catalog import UnknownExperimentError
from repro.runtime.executor import SweepExecutor


def _parse_literal(text: str) -> object:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_overrides(pairs: "Sequence[str]") -> "dict[str, object]":
    overrides: "dict[str, object]" = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_literal(value.strip())
    return overrides


def _split_axis_values(text: str) -> "list[str]":
    """Split on top-level commas only, so tuple/list literals stay intact."""
    values, depth, current = [], 0, []
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            values.append("".join(current))
            current = []
        else:
            current.append(char)
    values.append("".join(current))
    return [v.strip() for v in values if v.strip()]


def _parse_axes(pairs: "Sequence[str]") -> "dict[str, list[object]]":
    axes: "dict[str, list[object]]" = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=v1,v2,..., got {pair!r}")
        key, _, values = pair.partition("=")
        axes[key.strip()] = [_parse_literal(v) for v in _split_axis_values(values)]
    return axes


def _executor_for(args: argparse.Namespace) -> "SweepExecutor | None":
    if getattr(args, "parallel", False):
        return SweepExecutor(mode="process", max_workers=getattr(args, "workers", None))
    if getattr(args, "serial", False):
        return SweepExecutor(mode="serial")
    return None


def _cache_for(args: argparse.Namespace) -> "ResultCache | None":
    """The cache selected by the flags; ``None`` means the process default."""
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return ResultCache(cache_dir=args.cache_dir)
    return None


#: Per-invocation run log the ledger record is built from; ``main`` installs a
#: list here so ``_run_one`` (and the report command) can contribute entries.
_RUN_LOG: "list[dict[str, object]] | None" = None


def _log_run(entry: "dict[str, object]") -> None:
    """Record one experiment run for this invocation's ledger record."""
    if _RUN_LOG is not None:
        _RUN_LOG.append(entry)


def _run_one(
    experiment_id: str,
    args: argparse.Namespace,
    cache: "ResultCache | None" = None,
    **extra: object,
):
    from repro.experiments.registry import CATALOG, run_experiment

    overrides = dict(_parse_overrides(getattr(args, "set", []) or []))
    overrides.update(extra)
    function = CATALOG.get(experiment_id).function
    executor = _executor_for(args)
    parameters = inspect.signature(function).parameters
    if executor is not None and "executor" in parameters:
        overrides["executor"] = executor
    # --node retargets any node-aware experiment: single-node functions take
    # `node`, family sweeps take `nodes` (restricted to the one requested).
    node = getattr(args, "node", None)
    if node is not None:
        if "node" in parameters:
            overrides.setdefault("node", node)
        elif "nodes" in parameters:
            overrides.setdefault("nodes", (node,))
        else:
            raise SystemExit(
                f"{experiment_id!r} is not node-parameterized; "
                "--node needs an experiment with a `node` or `nodes` parameter"
            )
    # Cache-aware experiments (the explore studies) memoize their internal
    # model evaluations too; forward the cache flags so --no-cache really
    # recomputes and --cache-dir persists evaluations across processes.
    cache = cache if cache is not None else _cache_for(args)
    use_cache = not getattr(args, "no_cache", False)
    for name, value in evaluation_overrides(function, use_cache, cache).items():
        overrides.setdefault(name, value)
    result = run_experiment(
        experiment_id,
        use_cache=not getattr(args, "no_cache", False),
        cache=cache,
        **overrides,
    )
    entry: "dict[str, object]" = {
        "experiment": result.experiment_id,
        "cache_status": result.cache_status,
        "wall_time_s": round(result.wall_time_s, 6),
        "compute_time_s": round(result.compute_time_s, 6),
        "rows": len(result.rows),
    }
    stats = result.data.get("stats") if isinstance(result.data, dict) else None
    if isinstance(stats, dict) and "cache_hits" in stats:
        entry["strategy"] = stats.get("strategy")
        entry["cache_hits"] = stats.get("cache_hits")
        entry["evaluated"] = stats.get("evaluated")
    if "fault_schedule_digest" in result.provenance:
        # Faulted runs stay reproducible from `repro stats`: the ledger record
        # carries the generator seed and the fault-schedule digest.
        entry["fault_seed"] = result.provenance.get("fault_seed")
        entry["fault_schedule_digest"] = result.provenance["fault_schedule_digest"]
    _log_run(entry)
    return result


def _envelope(result) -> "dict[str, object]":
    """Full machine-readable view of an ``ExperimentResult``.

    Carries the provenance, wall time, and cache status alongside the rows so
    scripts and CI can consume runs without parsing tables.
    """
    payload: "dict[str, object]" = {
        "experiment": result.experiment_id,
        "rows": result.rows,
        "provenance": result.provenance,
        "wall_time_s": round(result.wall_time_s, 6),
        "compute_time_s": round(result.compute_time_s, 6),
        "cache_status": result.cache_status,
    }
    if result.telemetry is not None:
        # Present only under --trace, so untraced envelopes keep their shape.
        payload["telemetry"] = result.telemetry
    if isinstance(result.data, dict):
        # Dict-returning experiments (figure_3_5) carry headline values beyond
        # the sweep rows; keep the full payload machine-readable.
        payload["data"] = result.data
    return payload


def _evaluation_cache_stats(cache: "ResultCache | None") -> "dict[str, object]":
    """Accounting of the cache the exploration's evaluations went through.

    With ``--cache-dir`` the forwarded disk cache holds both the envelope and
    the evaluation tiers (distinguished by the ``categories`` breakdown);
    otherwise candidate evaluations land in the explorer's process-wide
    default cache.
    """
    if cache is not None and cache.cache_dir:
        return cache.stats()
    from repro.dse.explorer import DEFAULT_EVALUATION_CACHE

    return DEFAULT_EVALUATION_CACHE.stats()


# ------------------------------------------------------------------ commands
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.formatting import format_table
    from repro.experiments.registry import CATALOG

    specs = CATALOG.select(chapter=args.chapter, kind=args.kind)
    if not specs:
        print("no experiments match the given filters", file=sys.stderr)
        return 1
    rows = [
        {
            "id": spec.experiment_id,
            "chapter": spec.chapter,
            "kind": spec.kind,
            "produces": spec.produces,
        }
        for spec in specs
    ]
    print(format_table(rows, title=f"{len(rows)} experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.formatting import format_table

    for experiment_id in args.ids:
        result = _run_one(experiment_id, args)
        if args.json:
            print(json.dumps(_envelope(result)))
        else:
            print(format_table(result.rows, title=experiment_id))
            print(
                f"# {experiment_id}: cache={result.cache_status} "
                f"wall={result.wall_time_s:.3f}s rows={len(result.rows)}"
            )
            print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.formatting import format_table

    axes = _parse_axes(args.set or [])
    if not axes:
        raise SystemExit("sweep needs at least one --set key=v1,v2,... axis")
    names = list(axes)
    combos = list(itertools.product(*(axes[name] for name in names)))
    rows = []
    envelopes = []
    for combo in combos:
        point = dict(zip(names, combo))
        sweep_args = argparse.Namespace(**{**vars(args), "set": []})
        result = _run_one(args.id, sweep_args, **point)
        envelopes.append({"point": point, **_envelope(result)})
        for row in result.rows:
            rows.append({**point, **row})
    if args.json:
        print(json.dumps(
            {"experiment": args.id, "axes": axes, "rows": rows, "points": envelopes}
        ))
    else:
        print(format_table(rows, title=f"{args.id} sweep over {', '.join(names)}"))
        print(f"# {len(combos)} points, {len(rows)} rows")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    """Run one ``kind="explore"`` spec and print candidates, frontier, knees."""
    from repro.experiments.formatting import format_table
    from repro.experiments.registry import CATALOG

    spec = CATALOG.get(args.id)
    if spec.kind != "explore":
        explore_ids = sorted(s.experiment_id for s in CATALOG.by_kind("explore"))
        raise SystemExit(
            f"{args.id!r} is a {spec.kind!r} spec, not an exploration; "
            f"explorations: {explore_ids}"
        )
    # Forward the search flags only when given, so default runs keep the
    # same cache identity (and the report's claims) they had before.
    search_overrides = {
        name: value
        for name in ("strategy", "budget", "seed")
        if (value := getattr(args, name, None)) is not None
    }
    cache = _cache_for(args)
    result = _run_one(args.id, args, cache=cache, **search_overrides)
    payload = result.data if isinstance(result.data, dict) else {}
    if args.json:
        envelope = _envelope(result)
        # Lift the exploration's headline sections to the top level so scripts
        # can read the frontier without digging through `data`.
        envelope["frontier"] = payload.get("frontier", [])
        envelope["knees"] = payload.get("knees", {})
        envelope["stats"] = payload.get("stats", {})
        envelope["cache_stats"] = _evaluation_cache_stats(cache)
        print(json.dumps(envelope))
        return 0
    candidates = payload.get("candidates", [])
    frontier = payload.get("frontier", [])
    stats = payload.get("stats", {})
    print(format_table(frontier, title=f"{args.id}: Pareto frontier"))
    print()
    for label, knee in sorted(payload.get("knees", {}).items()):
        where = f" [{label}]" if label else ""
        print(f"# knee{where}: {knee.get('candidate', '?')}")
    objectives = ", ".join(payload.get("objectives", []))
    print(f"# objectives: {objectives}")
    print(
        f"# {args.id}: candidates={len(candidates)} "
        f"feasible={stats.get('feasible', '?')} frontier={len(frontier)} "
        f"evaluated={stats.get('evaluated', '?')} "
        f"cache_hits={stats.get('cache_hits', '?')} "
        f"cache={result.cache_status} wall={result.wall_time_s:.3f}s"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Grade the paper-claims registry and render the reproduction report.

    Returns exit code 1 when any claim grades ``fail`` so CI can gate on the
    report; ``warn`` grades do not fail the build.
    """
    import os

    from repro.report.render import render_markdown, render_svg
    from repro.report.validate import ReportValidator

    validator = ReportValidator(
        cache=_cache_for(args),
        use_cache=not args.no_cache,
        executor=_executor_for(args),
    )
    try:
        run = validator.validate(only=args.only or None)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not run.graded:
        print("no claims selected", file=sys.stderr)
        return 1
    for check in run.experiments:
        _log_run(
            {
                "experiment": check.experiment_id,
                "cache_status": check.cache_status,
                "wall_time_s": round(check.wall_time_s, 6),
                "compute_time_s": round(
                    0.0 if check.cache_status == "hit" else check.wall_time_s, 6
                ),
                "rows": len(check.claim_ids),
            }
        )
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(run))
        summary = run.summary()
        # In --json mode the note goes to stderr so stdout stays pure JSON.
        print(
            f"# wrote {args.out}: {summary['claims']} claims, "
            f"{summary['pass']} pass / {summary['warn']} warn / "
            f"{summary['fail']} fail",
            file=sys.stderr if args.json else sys.stdout,
        )
    if args.json:
        print(json.dumps(run.payload()))
    elif not args.out:
        print(render_markdown(run), end="")
    if args.svg_dir:
        os.makedirs(args.svg_dir, exist_ok=True)
        for chapter, items in run.by_chapter().items():
            path = os.path.join(args.svg_dir, f"report_chapter{chapter}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_svg(chapter, items))
    return 0 if run.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Summarize the run ledger (invocations, per-experiment costs, hit ratios)."""
    from repro.experiments.formatting import format_table
    from repro.obs.ledger import ledger_path, read_records, summarize

    path = ledger_path(args.ledger)
    records = read_records(path, last=args.last, experiment=args.experiment)
    if not records:
        print(f"no ledger records at {path}", file=sys.stderr)
        return 1
    summary = summarize(records)
    if args.json:
        print(json.dumps({"ledger": str(path), **summary}))
        return 0
    rows = [
        {
            "experiment": row["experiment"],
            "runs": row["invocations"],
            "wall_s": row["wall_time_s"],
            "mean_wall_s": row["mean_wall_s"],
            "hit_ratio": "-" if row["cache_hit_ratio"] is None else row["cache_hit_ratio"],
            "last_utc": row["last_utc"],
        }
        for row in summary["experiments"]
    ]
    print(format_table(rows, title=f"{summary['invocations']} ledger records ({path})"))
    commands = ", ".join(
        f"{name}={count}" for name, count in summary["commands"].items()
    )
    print(f"# invocations by command: {commands}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.formatting import format_table
    from repro.experiments.registry import CATALOG

    if args.json:
        return _cmd_bench_json(args)
    ids = args.ids or CATALOG.ids()
    rows = []
    for experiment_id in ids:
        bench_args = argparse.Namespace(**{**vars(args), "no_cache": True})
        result = _run_one(experiment_id, bench_args)
        rows.append(
            {
                "id": experiment_id,
                "wall_s": round(result.wall_time_s, 3),
                "rows": len(result.rows),
            }
        )
    rows.sort(key=lambda row: row["wall_s"], reverse=True)
    print(format_table(rows, title="experiment wall-clock cost (cache off)"))
    return 0


def _cmd_bench_json(args: argparse.Namespace) -> int:
    """Record the perf-trajectory baseline (``BENCH_<domain>.json`` files).

    Registered targets (see ``repro.runtime.bench.BENCH_TARGETS``) are timed on
    both the fast and the reference path and written to their domain's BENCH
    file; any other catalog id is timed fast-path-only and appears in the
    stdout envelope but not in a file.
    """
    from repro.runtime.bench import (
        BENCH_SCHEMA,
        BENCH_TARGETS,
        run_bench_target,
        write_bench_files,
    )

    ids = args.ids or list(BENCH_TARGETS)
    overrides = _parse_overrides(args.set or [])
    entries = [run_bench_target(experiment_id, overrides) for experiment_id in ids]
    paths = write_bench_files(entries, directory=args.bench_dir)
    print(
        json.dumps(
            {
                "schema": BENCH_SCHEMA,
                "entries": entries,
                "files": [str(path) for path in paths],
            }
        )
    )
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (all subcommands and flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures through the experiment runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list catalogued experiments")
    p_list.add_argument("--chapter", type=int, default=None,
                        help="filter by chapter (2-6; 7 = service studies, "
                             "8 = design-space explorations, "
                             "9 = fault/dependability studies, "
                             "10 = fleet-scale traffic studies, "
                             "11 = technology-node family studies)")
    p_list.add_argument("--kind", choices=("figure", "table", "study", "explore"),
                        default=None, help="filter by kind")
    p_list.set_defaults(func=_cmd_list)

    def add_execution_flags(p: argparse.ArgumentParser) -> None:
        """Attach the cache/executor/json flags shared by every running subcommand."""
        p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist cached results under DIR (also honours REPRO_CACHE_DIR)")
        group = p.add_mutually_exclusive_group()
        group.add_argument("--parallel", action="store_true",
                           help="force the process-pool sweep executor")
        group.add_argument("--serial", action="store_true",
                           help="force the serial sweep executor")
        p.add_argument("--workers", type=int, default=None, help="process-pool size")
        p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome-trace (Perfetto-loadable) JSON of "
                            "this invocation's spans and counters to PATH")

    def add_run_flags(p: argparse.ArgumentParser) -> None:
        """Attach the flags shared by run/sweep/explore/bench to ``p``."""
        p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       help="parameter override (repeatable)")
        add_execution_flags(p)

    def add_node_flag(p: argparse.ArgumentParser) -> None:
        """Attach --node (technology-family retargeting) to ``p``."""
        p.add_argument("--node", default=None, metavar="NODE",
                       help="retarget a node-aware experiment to one family "
                            "node (e.g. 90nm, 40, 7nm); see docs/technology.md")

    p_run = sub.add_parser("run", help="run experiments and print their tables")
    p_run.add_argument("ids", nargs="+", metavar="ID", help="experiment ids (see `list`)")
    add_run_flags(p_run)
    add_node_flag(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="cross-product parameter sweep of one experiment")
    p_sweep.add_argument("id", metavar="ID", help="experiment id (see `list`)")
    add_run_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_explore = sub.add_parser(
        "explore", help="run a design-space exploration and print its frontier"
    )
    p_explore.add_argument("id", metavar="ID",
                           help="exploration id (see `list --kind explore`)")
    p_explore.add_argument("--strategy", choices=("exhaustive", "ga", "halving"),
                           default=None,
                           help="exploration strategy (default: the spec's own; "
                                "ga/halving search within --budget evaluations)")
    p_explore.add_argument("--budget", type=int, default=None, metavar="N",
                           help="evaluation budget for the search strategies")
    p_explore.add_argument("--seed", type=int, default=None,
                           help="seed for sampling and the search strategies")
    add_run_flags(p_explore)
    add_node_flag(p_explore)
    p_explore.set_defaults(func=_cmd_explore)

    p_report = sub.add_parser(
        "report", help="grade paper claims and render the reproduction report"
    )
    p_report.add_argument("--only", action="append", default=[], metavar="WHAT",
                          help="restrict to a chapter (chapter4), an experiment "
                               "id, or a claim id (repeatable)")
    p_report.add_argument("--out", default=None, metavar="PATH",
                          help="write the Markdown report to PATH instead of stdout")
    p_report.add_argument("--svg-dir", default=None, metavar="DIR",
                          help="also write per-chapter SVG figure sketches under DIR")
    add_execution_flags(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser("bench", help="time experiments with caching off")
    p_bench.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (default: all; with --json: the "
                              "registered baseline targets)")
    p_bench.add_argument("--bench-dir", default=".", metavar="DIR",
                         help="directory for BENCH_<domain>.json files (--json only)")
    add_run_flags(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_stats = sub.add_parser("stats", help="summarize the run ledger")
    p_stats.add_argument("--last", type=int, default=None, metavar="N",
                         help="only the most recent N ledger records")
    p_stats.add_argument("--experiment", default=None, metavar="ID",
                         help="only records touching this experiment id")
    p_stats.add_argument("--ledger", default=None, metavar="DIR",
                         help="ledger directory (default: .repro, or REPRO_LEDGER_DIR)")
    p_stats.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    p_stats.set_defaults(func=_cmd_stats)

    return parser


#: Subcommands whose invocations are appended to the run ledger.
_LEDGER_COMMANDS = ("run", "sweep", "explore", "report", "bench")


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Besides dispatching to the subcommand, this installs the invocation-wide
    telemetry plumbing: a :class:`~repro.obs.Tracer` rooted at a
    ``cli.<command>`` span when ``--trace PATH`` was given (written as
    Chrome-trace JSON on success), and a run log whose entries become one
    appended ledger record per run/sweep/explore/report/bench invocation.
    """
    global _RUN_LOG
    args = build_parser().parse_args(argv)

    trace_path = getattr(args, "trace", None)
    tracer = None
    previous_tracer = None
    if trace_path:
        from repro.obs.tracer import Tracer, set_tracer

        tracer = Tracer()
        previous_tracer = set_tracer(tracer)

    runs: "list[dict[str, object]]" = []
    saved_log, _RUN_LOG = _RUN_LOG, runs
    try:
        if tracer is not None:
            with tracer.span(f"cli.{args.command}", category="cli"):
                status = args.func(args)
        else:
            status = args.func(args)
    except UnknownExperimentError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    finally:
        _RUN_LOG = saved_log
        if tracer is not None:
            from repro.obs.tracer import set_tracer

            set_tracer(previous_tracer)

    if tracer is not None:
        from repro.obs.chrome import write_chrome_trace

        write_chrome_trace(trace_path, tracer)
        print(f"# trace written to {trace_path}", file=sys.stderr)

    if runs and args.command in _LEDGER_COMMANDS:
        from repro.obs.ledger import append_record, invocation_record

        record = invocation_record(
            args.command,
            runs,
            argv=list(argv) if argv is not None else sys.argv[1:],
            strategy=getattr(args, "strategy", None),
        )
        append_record(record)

    return status
