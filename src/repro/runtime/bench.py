"""Benchmark baseline recording: the repo's perf trajectory (``BENCH_*.json``).

``python -m repro bench --json`` times the registered benchmark targets twice
-- once on the default fast path and once on the pre-PR reference path (the
``use_fastpath=False`` / ``engine="event"`` escape hatches, or the pure-Python
Pareto reference and exhaustive exploration for the DSE targets) -- and writes
one JSON file per domain (``BENCH_noc.json``, ``BENCH_service.json``,
``BENCH_dse.json``).  Committing those files gives every future change a
recorded baseline to regress against.

Schema (``schema: 1``)::

    {
      "schema": 1,
      "created_utc": "2026-07-29T12:00:00Z",
      "command": "python -m repro bench --json ...",
      "entries": [
        {
          "experiment": "figure_4_6",          # catalog id
          "domain": "noc",                     # selects the BENCH file
          "unit": "packets",                   # what "units" counts
          "units": 80764,                      # exact work per variant run
          "parameters": {"duration_cycles": 4000},
          "fastpath":  {"wall_s": 0.35, "units_per_s": 230754.0,
                        "cache_status": "disabled"},
          "reference": {"wall_s": 1.21, "units_per_s": 66747.0,
                        "cache_status": "disabled"},
          "speedup": 3.46,                     # reference wall / fastpath wall
          "tracer": {                          # telemetry overhead guard
            "disabled_wall_s": 0.35, "enabled_wall_s": 0.355,
            "overhead_pct": 1.4, "limit_pct": 5.0
          }
        }, ...
      ]
    }

The ``tracer`` block (catalog targets only) re-times the fast path with the
telemetry tracer enabled and asserts the overhead stays under
``_TRACER_OVERHEAD_LIMIT_PCT`` -- the guarantee that instrumentation never
costs simulation throughput.

The fast variant runs first (cold caches); the reference variant then runs
with any process-level memoization already warm, which can only understate the
recorded speedup.
"""

from __future__ import annotations

import inspect
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

#: Schema version stamped into every BENCH file.
BENCH_SCHEMA = 1


def _noc_packet_count(kwargs: "Mapping[str, object]") -> int:
    """Exact packets simulated by one ``figure_4_6`` run (all sweep points)."""
    from repro.noc.simulation import PodNocStudy, _cached_traffic_batch
    from repro.noc.traffic import bilateral_injection_rate

    study = PodNocStudy(
        duration_cycles=int(kwargs.get("duration_cycles", 4_000)),
        seed=int(kwargs.get("seed", 1)),
    )
    total = 0
    # The topology list mirrors PodNocStudy.evaluate()'s default sweep.
    for name in ("mesh", "fbfly", "nocout"):
        topology = study.build_topology(name)
        for workload in study.suite:
            injection_rate = bilateral_injection_rate(workload, per_core_ipc=0.5)
            batch = _cached_traffic_batch(
                tuple(topology.core_nodes),
                tuple(topology.llc_nodes),
                injection_rate,
                workload.snoop_fraction,
                study.seed,
                study.duration_cycles,
                study.active_cores_for(workload),
            )
            total += len(batch)
    return total


def _service_request_count(kwargs: "Mapping[str, object]") -> int:
    """Exact requests simulated by one ``service_latency_sweep`` run."""
    default_utilizations = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.98, 1.02, 1.1)
    utilizations = kwargs.get("utilizations", default_utilizations)
    num_requests = int(kwargs.get("num_requests", 16_000))
    return len(tuple(utilizations)) * num_requests


def _bench_fleet_day(overrides: "Mapping[str, object]") -> "dict[str, object]":
    """Time a high-load fleet day on the fast engine against the event reference.

    Simulates one diurnal day for a three-datacenter fleet (JSQ servers,
    latency-weighted geo-routing, skewed origin weights) at
    ``--set fleet_requests=N`` total requests (default 120M) on the fast SoA
    engine, then replays a scaled-down day (``fleet_reference_requests``,
    default 2M) on the discrete-event reference engine.  The two variants run
    different request counts -- a full day through the event engine would take
    hours -- so ``speedup`` is the ratio of per-request throughputs, not wall
    times.  The tests/test_fleet_equivalence.py suite separately holds the two
    engines bit-identical on equal inputs.
    """
    from repro.fleet import (
        DIURNAL_24,
        Datacenter,
        FleetConfig,
        FleetSimulation,
        LoadShape,
        Region,
    )

    requests_target = int(float(overrides.get("fleet_requests", 120_000_000)))
    reference_target = int(float(overrides.get("fleet_reference_requests", 2_000_000)))
    seed = int(overrides.get("seed", 1))
    offered_qps = 50_000.0

    def day_config(total_requests: int) -> FleetConfig:
        """The benchmark fleet, with the day length derived from the request
        target at fixed offered QPS — both variants exercise identical
        per-epoch utilization trajectories and differ only in how many
        requests each epoch holds."""
        epoch_s = total_requests / (offered_qps * DIURNAL_24.num_epochs)
        layout = (
            ("us-east", 0.0, 0.0, 27),
            ("eu-west", 1.5, 0.4, 24),
            ("ap-south", 3.0, -0.5, 17),
        )
        datacenters = tuple(
            Datacenter(
                name, Region(name, x, y), num_servers=servers, parallelism=4,
                service_mean_s=0.002, policy="jsq",
            )
            for name, x, y, servers in layout
        )
        return FleetConfig(
            datacenters=datacenters,
            offered_qps=offered_qps,
            routing="latency_weighted",
            load_shape=LoadShape(DIURNAL_24.multipliers, epoch_s=epoch_s),
            origin_weights=(0.40, 0.35, 0.25),
        )

    start = time.perf_counter()
    fast = FleetSimulation(day_config(requests_target), seed=seed, engine="fast").run()
    fast_wall = time.perf_counter() - start
    start = time.perf_counter()
    event = FleetSimulation(
        day_config(reference_target), seed=seed, engine="event"
    ).run()
    event_wall = time.perf_counter() - start

    fast_rate = fast.total_requests / max(fast_wall, 1e-9)
    event_rate = event.total_requests / max(event_wall, 1e-9)
    return {
        "unit": "requests",
        "units": fast.total_requests,
        "parameters": {
            "fleet_requests": requests_target,
            "fleet_reference_requests": reference_target,
            "seed": seed,
        },
        "fastpath": {
            "wall_s": round(fast_wall, 6),
            "units_per_s": round(fast_rate, 1),
            "requests": fast.total_requests,
        },
        "reference": {
            "wall_s": round(event_wall, 6),
            "units_per_s": round(event_rate, 1),
            "requests": event.total_requests,
        },
        "speedup": round(fast_rate / max(event_rate, 1e-9), 2),
    }


def _bench_pareto_kernel(overrides: "Mapping[str, object]") -> "dict[str, object]":
    """Time the vectorized dominance kernel against the pure-Python reference.

    Builds a seeded synthetic dataset (three objectives, two frontier groups,
    deliberate duplicate rows so ties are exercised), extracts the frontier
    through both ``method="numpy"`` and ``method="reference"``, checks the two
    agree row-for-row, and reports the wall times.  ``--set rows=N`` shrinks
    the dataset (the committed baseline uses the default 100k rows; CI smokes
    use a few thousand so the quadratic reference stays cheap).
    """
    import random

    from repro.dse.pareto import Objective, pareto_frontier

    rows_n = int(overrides.get("rows", 100_000))
    seed = int(overrides.get("seed", 0))
    rng = random.Random(seed)
    objectives = (
        Objective.maximize("throughput"),
        Objective.maximize("efficiency"),
        Objective.minimize("cost"),
    )
    rows: "list[dict[str, object]]" = []
    for index in range(rows_n):
        if index % 10 == 9 and rows:
            # Duplicate an earlier row's metrics so the kernel sees exact ties.
            donor = rows[rng.randrange(len(rows))]
            row = {**donor, "group": rng.choice(("x", "y"))}
        else:
            row = {
                "group": rng.choice(("x", "y")),
                "throughput": rng.random(),
                "efficiency": rng.random(),
                "cost": rng.random(),
            }
        rows.append(row)

    start = time.perf_counter()
    fast = pareto_frontier(rows, objectives, group_by="group", method="numpy")
    fast_wall = time.perf_counter() - start
    start = time.perf_counter()
    reference = pareto_frontier(rows, objectives, group_by="group", method="reference")
    reference_wall = time.perf_counter() - start
    if [id(row) for row in fast] != [id(row) for row in reference]:
        raise AssertionError("numpy and reference frontiers disagree")

    return {
        "unit": "rows",
        "units": rows_n,
        "parameters": {"rows": rows_n, "seed": seed},
        "frontier_size": len(fast),
        "fastpath": {
            "wall_s": round(fast_wall, 6),
            "units_per_s": round(rows_n / max(fast_wall, 1e-9), 1),
        },
        "reference": {
            "wall_s": round(reference_wall, 6),
            "units_per_s": round(rows_n / max(reference_wall, 1e-9), 1),
        },
        "speedup": round(reference_wall / max(fast_wall, 1e-9), 2),
    }


def _bench_search(strategy: str) -> "Callable[[Mapping[str, object]], dict[str, object]]":
    """Runner timing one search strategy against exhaustive exploration.

    Both variants solve the same ``explore_pod_40nm`` problem with the
    evaluation cache off; the entry records wall times, model evaluations
    spent and saved, and whether the search recovered the exhaustive study's
    knee designs exactly.
    """

    def runner(overrides: "Mapping[str, object]") -> "dict[str, object]":
        """Time ``strategy`` and exhaustive on pod_40nm; compare their knees."""
        from repro.dse.studies import explore_pod_40nm

        budget = int(overrides.get("budget", 48))
        seed = int(overrides.get("seed", 0))
        start = time.perf_counter()
        searched = explore_pod_40nm(
            strategy=strategy, budget=budget, seed=seed, use_evaluation_cache=False
        )
        search_wall = time.perf_counter() - start
        start = time.perf_counter()
        exhaustive = explore_pod_40nm(use_evaluation_cache=False)
        exhaustive_wall = time.perf_counter() - start

        space_size = int(exhaustive["stats"]["space_size"])  # type: ignore[index,call-overload]
        knees = {
            label: knee["candidate"]
            for label, knee in sorted(searched["knees"].items())  # type: ignore[attr-defined]
        }
        exhaustive_knees = {
            label: knee["candidate"]
            for label, knee in sorted(exhaustive["knees"].items())  # type: ignore[attr-defined]
        }
        evaluations = int(searched["stats"]["evaluated"])  # type: ignore[index,call-overload]
        return {
            "unit": "candidates",
            "units": space_size,
            "parameters": {"budget": budget, "seed": seed, "strategy": strategy},
            "fastpath": {
                "wall_s": round(search_wall, 6),
                "units_per_s": round(space_size / max(search_wall, 1e-9), 1),
                "evaluations": evaluations,
            },
            "reference": {
                "wall_s": round(exhaustive_wall, 6),
                "units_per_s": round(space_size / max(exhaustive_wall, 1e-9), 1),
                "evaluations": space_size,
            },
            "speedup": round(exhaustive_wall / max(search_wall, 1e-9), 2),
            "evaluations_saved": space_size - evaluations,
            "space_fraction_evaluated": round(evaluations / space_size, 4),
            "knees": knees,
            "knees_match_exhaustive": knees == exhaustive_knees,
        }

    return runner


@dataclass(frozen=True)
class BenchTarget:
    """One experiment tracked in the perf trajectory.

    Attributes:
        experiment_id: catalog id to run (or the target's own name for
            runner-based targets, which need not be catalog ids).
        domain: BENCH file the entry lands in (``BENCH_<domain>.json``).
        unit: what :attr:`count_units` counts ("packets", "requests").
        reference_overrides: kwargs selecting the pre-PR reference path.
        count_units: exact work units for a given kwargs dict.
        runner: self-contained benchmark producing the whole entry body
            (fastpath/reference/speedup) from the CLI overrides; targets with
            a runner never touch the experiment catalog.
    """

    experiment_id: str
    domain: str
    unit: str
    reference_overrides: "Mapping[str, object]" = field(default_factory=dict)
    count_units: "Callable[[Mapping[str, object]], int] | None" = None
    runner: "Callable[[Mapping[str, object]], dict[str, object]] | None" = None


#: The recorded perf trajectory: NoC, service, and the three DSE benchmarks.
BENCH_TARGETS: "dict[str, BenchTarget]" = {
    "figure_4_6": BenchTarget(
        experiment_id="figure_4_6",
        domain="noc",
        unit="packets",
        reference_overrides={"use_fastpath": False},
        count_units=_noc_packet_count,
    ),
    "service_latency_sweep": BenchTarget(
        experiment_id="service_latency_sweep",
        domain="service",
        unit="requests",
        reference_overrides={"engine": "event"},
        count_units=_service_request_count,
    ),
    "fleet_scale_day": BenchTarget(
        experiment_id="fleet_scale_day",
        domain="service",
        unit="requests",
        runner=_bench_fleet_day,
    ),
    "pareto_kernel": BenchTarget(
        experiment_id="pareto_kernel",
        domain="dse",
        unit="rows",
        runner=_bench_pareto_kernel,
    ),
    "dse_search_ga": BenchTarget(
        experiment_id="dse_search_ga",
        domain="dse",
        unit="candidates",
        runner=_bench_search("ga"),
    ),
    "dse_search_halving": BenchTarget(
        experiment_id="dse_search_halving",
        domain="dse",
        unit="candidates",
        runner=_bench_search("halving"),
    ),
}


def _accepted_overrides(
    experiment_id: str, overrides: "dict[str, object]"
) -> "dict[str, object]":
    """Drop override keys the experiment function does not accept.

    ``bench --json`` applies one ``--set`` list to every selected target;
    each target only takes the parameters it understands.
    """
    from repro.experiments.registry import CATALOG

    parameters = inspect.signature(CATALOG.get(experiment_id).function).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return overrides
    return {name: value for name, value in overrides.items() if name in parameters}


def _timed_variant(experiment_id: str, kwargs: "dict[str, object]") -> "dict[str, object]":
    """Run one uncached variant and report its wall time.

    Cache-aware experiments (the explore studies) also get their internal
    per-candidate evaluation cache disabled, so the reported wall time is a
    genuine cold-run figure even when caches are warm in this process.
    """
    from repro.experiments.registry import CATALOG, run_experiment
    from repro.runtime.cache import evaluation_overrides

    function = CATALOG.get(experiment_id).function
    kwargs = {**evaluation_overrides(function, use_cache=False, cache=None), **kwargs}
    result = run_experiment(experiment_id, use_cache=False, **kwargs)
    return {
        "wall_s": round(result.wall_time_s, 6),
        "cache_status": result.cache_status,
    }


#: Catalog targets whose tracer overhead is measured and guarded by ``bench``.
_TRACER_OVERHEAD_TARGETS = ("figure_4_6", "service_latency_sweep")

#: Maximum tolerated tracer-enabled slowdown, percent of the disabled wall.
_TRACER_OVERHEAD_LIMIT_PCT = 5.0


def _tracer_overhead(
    experiment_id: str,
    kwargs: "dict[str, object]",
    limit_pct: float = _TRACER_OVERHEAD_LIMIT_PCT,
    attempts: int = 3,
) -> "dict[str, object]":
    """Measure the tracer-enabled vs disabled wall time of one experiment.

    Runs the uncached fast path twice per attempt -- tracer disabled, then
    enabled under a throwaway :class:`~repro.obs.Tracer` -- and keeps the
    best (lowest-overhead) sample.  Timing noise on sub-second runs can
    exceed the budget spuriously, so the measurement retries before failing.

    Raises:
        AssertionError: when every attempt's overhead is >= ``limit_pct``.
    """
    from repro.obs.tracer import Tracer, use_tracer

    best: "dict[str, object] | None" = None
    for _ in range(attempts):
        disabled = _timed_variant(experiment_id, dict(kwargs))["wall_s"]
        with use_tracer(Tracer()):
            enabled = _timed_variant(experiment_id, dict(kwargs))["wall_s"]
        overhead_pct = round((enabled - disabled) / max(disabled, 1e-9) * 100.0, 2)
        sample = {
            "disabled_wall_s": disabled,
            "enabled_wall_s": enabled,
            "overhead_pct": overhead_pct,
            "limit_pct": limit_pct,
        }
        if best is None or overhead_pct < best["overhead_pct"]:  # type: ignore[operator]
            best = sample
        if overhead_pct < limit_pct:
            break
    assert best is not None
    if best["overhead_pct"] >= limit_pct:  # type: ignore[operator]
        raise AssertionError(
            f"{experiment_id}: tracer overhead {best['overhead_pct']}% exceeds "
            f"the {limit_pct}% budget after {attempts} attempts "
            f"(disabled={best['disabled_wall_s']}s enabled={best['enabled_wall_s']}s)"
        )
    return best


def run_bench_target(
    experiment_id: str, overrides: "Mapping[str, object] | None" = None
) -> "dict[str, object]":
    """Time one experiment (fast path, then reference path if registered).

    Unregistered ids still produce an entry -- wall time only, no domain --
    so ``bench --json`` can time anything in the catalog.  Runner-based
    targets (the DSE benchmarks) produce their entry directly, outside the
    experiment catalog.
    """
    target = BENCH_TARGETS.get(experiment_id)
    if target is not None and target.runner is not None:
        entry = target.runner(dict(overrides or {}))
        return {"experiment": experiment_id, "domain": target.domain, **entry}
    overrides = _accepted_overrides(experiment_id, dict(overrides or {}))
    entry: "dict[str, object]" = {
        "experiment": experiment_id,
        "parameters": {
            name: value if isinstance(value, (bool, int, float, str, type(None))) else repr(value)
            for name, value in sorted(overrides.items())
        },
    }
    entry["fastpath"] = _timed_variant(experiment_id, dict(overrides))
    if target is None:
        return entry

    entry["domain"] = target.domain
    entry["unit"] = target.unit
    if target.count_units is not None:
        units = target.count_units(overrides)
        entry["units"] = units
        entry["fastpath"]["units_per_s"] = round(
            units / max(entry["fastpath"]["wall_s"], 1e-9), 1
        )
    reference = _timed_variant(
        experiment_id, {**overrides, **target.reference_overrides}
    )
    if "units" in entry:
        reference["units_per_s"] = round(
            entry["units"] / max(reference["wall_s"], 1e-9), 1
        )
    entry["reference"] = reference
    entry["speedup"] = round(
        reference["wall_s"] / max(entry["fastpath"]["wall_s"], 1e-9), 2
    )
    if experiment_id in _TRACER_OVERHEAD_TARGETS:
        entry["tracer"] = _tracer_overhead(experiment_id, dict(overrides))
    return entry


def write_bench_files(
    entries: "Sequence[Mapping[str, object]]",
    directory: "str | Path" = ".",
    command: str = "python -m repro bench --json",
) -> "list[Path]":
    """Group entries by domain and write one ``BENCH_<domain>.json`` each."""
    directory = Path(directory)
    by_domain: "dict[str, list[Mapping[str, object]]]" = {}
    for entry in entries:
        domain = entry.get("domain")
        if domain:
            by_domain.setdefault(str(domain), []).append(entry)
    paths = []
    for domain, domain_entries in sorted(by_domain.items()):
        payload = {
            "schema": BENCH_SCHEMA,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "command": command,
            "entries": list(domain_entries),
        }
        path = directory / f"BENCH_{domain}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        paths.append(path)
    return paths
