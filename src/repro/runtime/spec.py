"""Experiment specifications and the typed result envelope.

An :class:`ExperimentSpec` describes one reproducible artifact of the paper (a
table or a figure): which chapter it belongs to, the function that regenerates
its data, the default parameters, and a one-line description of what it
produces.  Running a spec yields an :class:`ExperimentResult` -- the raw data
plus provenance (which function ran, with which arguments), the wall-clock cost,
and whether the result came from the cache.

``ExperimentResult`` behaves like a read-only sequence of row dictionaries so
callers that used to receive the bare row list keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one table/figure experiment.

    Attributes:
        experiment_id: registry id, e.g. ``"figure_4_6"`` or ``"table_3_2"``.
        chapter: evaluation chapter the artifact belongs to (2-6; beyond-paper
            studies use 7).
        kind: ``"figure"`` or ``"table"`` for the paper's artifacts, ``"study"``
            for beyond-paper experiments (e.g. the service-level studies), or
            ``"explore"`` for design-space explorations.
        function: callable that regenerates the data.
        parameters: default keyword arguments applied before caller overrides.
        produces: one-line description of the artifact.
        version: bump when the experiment's output schema changes, so stale
            on-disk cache entries written by older code stop matching.
    """

    experiment_id: str
    chapter: int
    kind: str
    function: Callable[..., object]
    parameters: Mapping[str, object] = field(default_factory=dict)
    produces: str = ""
    version: int = 1

    KINDS = ("figure", "table", "study", "explore")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {self.kind!r}")

    @property
    def cache_token(self) -> str:
        """Identity of the underlying computation, shared by aliased specs.

        Figures 5.1/5.2 (and 5.3/5.4) are produced by one function; keying the
        cache on the function rather than the experiment id lets the shared
        computation run once.  Version 1 keeps the historical token so existing
        caches stay valid; later versions salt the token to shed stale entries.
        """
        token = f"{self.function.__module__}.{self.function.__qualname__}"
        if self.version != 1:
            token += f"@v{self.version}"
        return token

    def merged_kwargs(self, overrides: "Mapping[str, object] | None" = None) -> "dict[str, object]":
        """Spec defaults overlaid with caller overrides."""
        merged = dict(self.parameters)
        if overrides:
            merged.update(overrides)
        return merged

    def run(self, **overrides: object) -> object:
        """Execute the experiment function with defaults + overrides."""
        return self.function(**self.merged_kwargs(overrides))


@dataclass
class ExperimentResult:
    """Typed envelope returned by :func:`repro.experiments.run_experiment`.

    Attributes:
        experiment_id: id of the spec that produced the data.
        data: raw return value of the experiment function (usually a list of
            row dicts; ``figure_3_5`` returns a dict with a ``"sweep"`` key).
        provenance: how the data was produced (function, kwargs, cache key).
        wall_time_s: wall-clock seconds spent producing (or fetching) the data,
            including cache traffic (kept for backward compatibility).
        cache_status: ``"miss"`` (computed and stored), ``"hit"`` (served from
            the cache), or ``"disabled"`` (computed with caching off).
        compute_time_s: seconds spent inside the experiment function itself
            (0 for cache hits); ``wall_time_s - compute_time_s`` is the cache
            fetch/store overhead.
        telemetry: counter totals, per-category cache accounting, and phase
            timings for this run (see :mod:`repro.obs.telemetry`); ``None``
            unless a tracer was enabled, so untraced envelopes serialize
            exactly as they did before telemetry existed.
    """

    experiment_id: str
    data: object
    provenance: "dict[str, object]" = field(default_factory=dict)
    wall_time_s: float = 0.0
    cache_status: str = "disabled"
    compute_time_s: float = 0.0
    telemetry: "dict[str, object] | None" = None

    @property
    def rows(self) -> "list[dict[str, object]]":
        """The data normalized to a list of row dictionaries.

        Dict payloads with a ``"sweep"`` (``figure_3_5``) or ``"candidates"``
        (exploration studies) list normalize to that list.
        """
        if isinstance(self.data, dict):
            for key in ("sweep", "candidates"):
                value = self.data.get(key)
                if isinstance(value, list):
                    return value
            return [self.data]
        if isinstance(self.data, list):
            return self.data
        return [{"value": self.data}]

    @property
    def cached(self) -> bool:
        """Whether this result was served from the cache."""
        return self.cache_status == "hit"

    # Sequence-style delegation so legacy callers can keep treating the result
    # of run_experiment as the bare row list.
    def __iter__(self) -> "Iterator[dict[str, object]]":
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index: "int | slice") -> Any:
        return self.rows[index]
