"""Sweep execution: fan independent design points out over a process pool.

Every chapter repeats the same shape of loop -- evaluate a cross product of
(workload, configuration, topology, ...) points where each point is independent
of the others.  :class:`SweepExecutor` runs such a point list either serially
or on a :class:`concurrent.futures.ProcessPoolExecutor`, preserving submission
order in both modes so results are identical point-for-point.

Point functions must be module-level (picklable) and receive only picklable
arguments; all of the repo's model/config/workload dataclasses qualify.

Mode selection:

* ``mode="serial"`` / ``mode="process"`` force the backend.
* ``mode="auto"`` (default) consults the ``REPRO_EXECUTOR`` environment
  variable if set, otherwise uses a process pool only when the sweep has at
  least ``min_parallel_points`` points and more than one CPU is available --
  small or cheap sweeps are not worth the pool startup.
* Pool creation failures (restricted sandboxes without working semaphores)
  fall back to the serial path, which always works.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

#: Environment variable forcing the backend for ``mode="auto"`` executors.
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable capping pool size for ``max_workers=None`` executors.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

_MODES = ("auto", "serial", "process")

#: Chunks submitted per worker when ``chunksize`` is unset: enough slack for
#: load balancing across uneven points without per-point IPC overhead.
_CHUNKS_PER_WORKER = 4


def _run_chunk(fn: "Callable[..., object]", chunk: "list[tuple]") -> "list[object]":
    """Run one chunk of sweep points in a worker (module-level: picklable)."""
    return [fn(*args) for args in chunk]


class SweepExecutor:
    """Runs a list of independent sweep points, serially or in parallel.

    Parallel sweeps ship points to workers in contiguous chunks (one future
    per chunk instead of one per point), amortizing pickling and process-pool
    IPC; results still come back flattened in submission order.
    """

    def __init__(
        self,
        mode: str = "auto",
        max_workers: "int | None" = None,
        min_parallel_points: int = 4,
        chunksize: "int | None" = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.mode = mode
        self.max_workers = max_workers
        self.min_parallel_points = min_parallel_points
        self.chunksize = chunksize

    # ---------------------------------------------------------------- planning
    def resolved_mode(self, num_points: int) -> str:
        """The backend ("serial" or "process") used for a sweep of this size."""
        mode = self.mode
        if mode == "auto":
            forced = os.environ.get(EXECUTOR_ENV, "").strip().lower()
            if forced in ("serial", "process"):
                mode = forced
        if mode == "auto":
            parallel_worthwhile = (
                num_points >= self.min_parallel_points and (os.cpu_count() or 1) > 1
            )
            mode = "process" if parallel_worthwhile else "serial"
        if mode == "process" and num_points <= 1:
            mode = "serial"
        return mode

    def _pool_size(self, num_points: int) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        if env.isdigit() and int(env) > 0:
            return int(env)
        return max(1, min(num_points, os.cpu_count() or 1))

    # --------------------------------------------------------------- execution
    def map(
        self,
        fn: "Callable[..., object]",
        points: "Iterable[tuple | object]",
    ) -> "list[object]":
        """``[fn(*point) for point in points]``, possibly in parallel.

        Each point is an argument tuple (bare values are treated as 1-tuples).
        Results come back in submission order regardless of backend, so serial
        and parallel execution of a deterministic ``fn`` produce identical
        lists.
        """
        arglists: "list[tuple]" = [
            point if isinstance(point, tuple) else (point,) for point in points
        ]
        if self.resolved_mode(len(arglists)) == "serial":
            return [fn(*args) for args in arglists]
        workers = self._pool_size(len(arglists))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError):
            # No usable multiprocessing primitives in this environment; point
            # failures inside a working pool still propagate normally.
            return [fn(*args) for args in arglists]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(
                1, -(-len(arglists) // (workers * _CHUNKS_PER_WORKER))
            )  # ceil division
        chunks = [
            arglists[start : start + chunksize]
            for start in range(0, len(arglists), chunksize)
        ]
        with pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            results: "list[object]" = []
            for future in futures:
                results.extend(future.result())
            return results


#: Serial executor for cheap analytic sweeps where a pool never pays off.
SERIAL_EXECUTOR = SweepExecutor(mode="serial")
