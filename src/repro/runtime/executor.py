"""Sweep execution: fan independent design points out over a process pool.

Every chapter repeats the same shape of loop -- evaluate a cross product of
(workload, configuration, topology, ...) points where each point is independent
of the others.  :class:`SweepExecutor` runs such a point list either serially
or on a :class:`concurrent.futures.ProcessPoolExecutor`, preserving submission
order in both modes so results are identical point-for-point.

Point functions must be module-level (picklable) and receive only picklable
arguments; all of the repo's model/config/workload dataclasses qualify.

Mode selection:

* ``mode="serial"`` / ``mode="process"`` force the backend.
* ``mode="auto"`` (default) consults the ``REPRO_EXECUTOR`` environment
  variable if set, otherwise uses a process pool only when the sweep has at
  least ``min_parallel_points`` points and more than one CPU is available --
  small or cheap sweeps are not worth the pool startup.
* Pool creation failures (restricted sandboxes without working semaphores)
  fall back to the serial path, which always works.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

#: Environment variable forcing the backend for ``mode="auto"`` executors.
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable capping pool size for ``max_workers=None`` executors.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

_MODES = ("auto", "serial", "process")


class SweepPointError(RuntimeError):
    """A sweep point failed even after its chunk was retried in-process.

    Raised by :meth:`SweepExecutor.map` when a chunk's worker failed (point
    exception or worker crash), the chunk was re-run serially in the parent,
    and one of its points failed again -- so the failure is attributable to
    the point itself, not the pool.  ``point_index`` is the zero-based
    submission index of the failing point.
    """

    def __init__(self, message: str, point_index: int):
        super().__init__(message)
        self.point_index = point_index


def _retry_chunk(
    fn: "Callable[..., object]", chunk: "list[tuple]", first_index: int
) -> "list[object]":
    """Re-run a failed chunk serially, isolating which point is at fault.

    A chunk future can fail for two reasons: one of its points raised, or the
    worker process died (``BrokenProcessPool``) and took every queued chunk
    with it.  Either way the points themselves may be fine, so each is retried
    once in the parent process; a point that fails again raises
    :class:`SweepPointError` naming its submission index.
    """
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    if tracer.enabled:
        tracer.counter("executor.chunk_retries").add(1)
    results: "list[object]" = []
    for offset, args in enumerate(chunk):
        try:
            results.append(fn(*args))
        except Exception as exc:
            index = first_index + offset
            raise SweepPointError(
                f"sweep point {index} failed after chunk retry: {exc!r}",
                point_index=index,
            ) from exc
    return results

#: Chunks submitted per worker when ``chunksize`` is unset: enough slack for
#: load balancing across uneven points without per-point IPC overhead.
_CHUNKS_PER_WORKER = 4


def _run_chunk(
    fn: "Callable[..., object]",
    chunk: "list[tuple]",
    trace: bool = False,
    first_index: int = 0,
    chunk_index: int = 0,
) -> "list[object] | tuple[list[object], list, dict[str, int]]":
    """Run one chunk of sweep points in a worker (module-level: picklable).

    With ``trace=True`` the chunk runs under a fresh chunk-local
    :class:`~repro.obs.tracer.Tracer` -- one ``executor.chunk`` span wrapping
    one ``executor.point`` span per point -- and returns
    ``(results, span_roots, counter_totals)`` for the parent to
    :meth:`~repro.obs.tracer.Tracer.adopt`.  The traced serial path runs this
    same function inline, so serial and parallel traces share one structure.
    """
    if not trace:
        return [fn(*args) for args in chunk]
    from repro.obs.tracer import Tracer, use_tracer

    tracer = Tracer()
    results: "list[object]" = []
    with use_tracer(tracer):
        with tracer.span(
            "executor.chunk",
            category="executor",
            index=chunk_index,
            first_point=first_index,
            points=len(chunk),
        ):
            for offset, args in enumerate(chunk):
                with tracer.span(
                    "executor.point", category="executor", index=first_index + offset
                ):
                    results.append(fn(*args))
    return results, tracer.roots, tracer.counters()


class SweepExecutor:
    """Runs a list of independent sweep points, serially or in parallel.

    Parallel sweeps ship points to workers in contiguous chunks (one future
    per chunk instead of one per point), amortizing pickling and process-pool
    IPC; results still come back flattened in submission order.
    """

    def __init__(
        self,
        mode: str = "auto",
        max_workers: "int | None" = None,
        min_parallel_points: int = 4,
        chunksize: "int | None" = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.mode = mode
        self.max_workers = max_workers
        self.min_parallel_points = min_parallel_points
        self.chunksize = chunksize

    # ---------------------------------------------------------------- planning
    def resolved_mode(self, num_points: int) -> str:
        """The backend ("serial" or "process") used for a sweep of this size."""
        mode = self.mode
        if mode == "auto":
            forced = os.environ.get(EXECUTOR_ENV, "").strip().lower()
            if forced in ("serial", "process"):
                mode = forced
        if mode == "auto":
            parallel_worthwhile = (
                num_points >= self.min_parallel_points and (os.cpu_count() or 1) > 1
            )
            mode = "process" if parallel_worthwhile else "serial"
        if mode == "process" and num_points <= 1:
            mode = "serial"
        return mode

    def _pool_size(self, num_points: int) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        if env.isdigit() and int(env) > 0:
            return int(env)
        return max(1, min(num_points, os.cpu_count() or 1))

    # --------------------------------------------------------------- execution
    def map(
        self,
        fn: "Callable[..., object]",
        points: "Iterable[tuple | object]",
    ) -> "list[object]":
        """``[fn(*point) for point in points]``, possibly in parallel.

        Each point is an argument tuple (bare values are treated as 1-tuples).
        Results come back in submission order regardless of backend, so serial
        and parallel execution of a deterministic ``fn`` produce identical
        lists.
        """
        arglists: "list[tuple]" = [
            point if isinstance(point, tuple) else (point,) for point in points
        ]
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            return self._map_traced(fn, arglists, tracer)
        if self.resolved_mode(len(arglists)) == "serial":
            return [fn(*args) for args in arglists]
        workers = self._pool_size(len(arglists))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError):
            # No usable multiprocessing primitives in this environment; point
            # failures inside a working pool still propagate normally.
            return [fn(*args) for args in arglists]
        chunksize = self._chunksize_for(len(arglists), workers)
        chunks = [
            arglists[start : start + chunksize]
            for start in range(0, len(arglists), chunksize)
        ]
        with pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            results: "list[object]" = []
            for index, future in enumerate(futures):
                try:
                    results.extend(future.result())
                except Exception:
                    results.extend(
                        _retry_chunk(fn, chunks[index], index * chunksize)
                    )
            return results

    def _chunksize_for(self, num_points: int, workers: int) -> int:
        """The chunk length used for ``num_points`` across ``workers``."""
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-num_points // (workers * _CHUNKS_PER_WORKER)))  # ceil division

    def _map_traced(
        self, fn: "Callable[..., object]", arglists: "list[tuple]", tracer
    ) -> "list[object]":
        """Traced fan-out: one ``executor.map`` span over per-chunk/point spans.

        Both backends compute the same chunk plan and run the same traced
        :func:`_run_chunk` body (inline when serial, in workers when
        parallel), and worker span trees are adopted in submission (point
        index) order -- never arrival order -- so the trace *structure* is
        identical whichever backend ran the sweep.
        """
        mode = self.resolved_mode(len(arglists))
        workers = self._pool_size(len(arglists))
        chunksize = self._chunksize_for(len(arglists), workers)
        chunks = [
            arglists[start : start + chunksize]
            for start in range(0, len(arglists), chunksize)
        ]
        results: "list[object]" = []
        with tracer.span(
            "executor.map",
            category="executor",
            points=len(arglists),
            chunks=len(chunks),
            chunksize=chunksize,
            mode=mode,
        ) as map_span:
            pool = None
            if mode == "process":
                try:
                    pool = ProcessPoolExecutor(max_workers=workers)
                except (OSError, PermissionError):
                    map_span.annotate(mode="serial-fallback")
            if pool is not None:
                with pool:
                    handoff = tracer.now()
                    futures = [
                        pool.submit(_run_chunk, fn, chunk, True, index * chunksize, index)
                        for index, chunk in enumerate(chunks)
                    ]
                    for index, future in enumerate(futures):
                        try:
                            chunk_results, spans, counters = future.result()
                        except Exception:
                            first = index * chunksize
                            with tracer.span(
                                "executor.chunk_retry",
                                category="executor",
                                index=index,
                                first_point=first,
                                points=len(chunks[index]),
                            ):
                                results.extend(
                                    _retry_chunk(fn, chunks[index], first)
                                )
                            continue
                        for span in spans:
                            span.attributes.setdefault("worker", index)
                        tracer.adopt(spans, counters, offset_s=handoff)
                        results.extend(chunk_results)
                return results
            for index, chunk in enumerate(chunks):
                handoff = tracer.now()
                chunk_results, spans, counters = _run_chunk(
                    fn, chunk, True, index * chunksize, index
                )
                tracer.adopt(spans, counters, offset_s=handoff)
                results.extend(chunk_results)
        return results


#: Serial executor for cheap analytic sweeps where a pool never pays off.
SERIAL_EXECUTOR = SweepExecutor(mode="serial")
