"""Tests for the analytic interconnect models and the floorplan helper."""

import pytest
from hypothesis import given, strategies as st

from repro.interconnect import (
    CrossbarInterconnect,
    FlattenedButterflyInterconnect,
    Floorplan,
    IdealInterconnect,
    MeshInterconnect,
    NocOutInterconnect,
    interconnect_model,
)
from repro.technology.node import NODE_32NM, NODE_40NM


def floorplan_for(cores: int, llc_mb: float = 4.0, core_area: float = 4.5) -> Floorplan:
    return Floorplan(cores=cores, core_area_mm2=core_area, llc_area_mm2=llc_mb * 5.0)


class TestFloorplan:
    def test_region_area(self):
        plan = floorplan_for(16, 4.0)
        assert plan.region_area_mm2 == pytest.approx(16 * 4.5 + 20.0)
        assert plan.extent_mm == pytest.approx(plan.region_area_mm2**0.5)

    def test_grid_dims_near_square(self):
        assert floorplan_for(16).grid_dims == (4, 4)
        assert floorplan_for(20).grid_dims == (4, 5)
        rows, cols = floorplan_for(64).grid_dims
        assert rows * cols >= 64

    def test_average_hops_grow_with_cores(self):
        assert floorplan_for(64).average_mesh_hops() > floorplan_for(16).average_mesh_hops()

    def test_validation(self):
        with pytest.raises(ValueError):
            Floorplan(cores=0, core_area_mm2=1.0, llc_area_mm2=1.0)
        with pytest.raises(ValueError):
            Floorplan(cores=4, core_area_mm2=-1.0, llc_area_mm2=1.0)

    @given(st.integers(min_value=1, max_value=512))
    def test_tile_area_positive(self, cores):
        plan = floorplan_for(cores)
        assert plan.tile_area_mm2 > 0
        assert plan.tile_pitch_mm > 0


class TestInterconnectFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("ideal", IdealInterconnect),
            ("crossbar", CrossbarInterconnect),
            ("mesh", MeshInterconnect),
            ("fbfly", FlattenedButterflyInterconnect),
            ("nocout", NocOutInterconnect),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(interconnect_model(name), cls)

    def test_pass_through_and_unknown(self):
        model = MeshInterconnect()
        assert interconnect_model(model) is model
        with pytest.raises(KeyError):
            interconnect_model("torus")


class TestLatencies:
    def test_ideal_constant(self):
        ideal = IdealInterconnect()
        assert ideal.latency_cycles(floorplan_for(4)) == 4.0
        assert ideal.latency_cycles(floorplan_for(256)) == 4.0

    def test_crossbar_matches_table_3_1(self):
        crossbar = CrossbarInterconnect()
        assert crossbar.latency_cycles(floorplan_for(8)) == pytest.approx(4.0)
        assert crossbar.latency_cycles(floorplan_for(16)) == pytest.approx(5.0)
        assert crossbar.latency_cycles(floorplan_for(32)) == pytest.approx(7.0)
        assert crossbar.latency_cycles(floorplan_for(64)) == pytest.approx(11.0)

    def test_crossbar_switch_sharing_reduces_latency(self):
        shared = CrossbarInterconnect(ports_per_switch_interface=2)
        assert shared.latency_cycles(floorplan_for(32)) <= CrossbarInterconnect().latency_cycles(
            floorplan_for(32)
        )

    def test_mesh_latency_grows_with_cores(self):
        mesh = MeshInterconnect()
        values = [mesh.latency_cycles(floorplan_for(n)) for n in (4, 16, 64, 256)]
        assert values == sorted(values)
        # 3 cycles per hop (Table 2.2).
        assert values[1] == pytest.approx(3.0 * floorplan_for(16).average_mesh_hops())

    def test_fbfly_between_ideal_and_mesh_at_scale(self):
        plan = floorplan_for(64)
        fbfly = FlattenedButterflyInterconnect().latency_cycles(plan)
        mesh = MeshInterconnect().latency_cycles(plan)
        assert 4.0 < fbfly < mesh

    def test_nocout_close_to_fbfly(self):
        plan = floorplan_for(64)
        nocout = NocOutInterconnect().latency_cycles(plan)
        fbfly = FlattenedButterflyInterconnect().latency_cycles(plan)
        assert abs(nocout - fbfly) < 5.0

    def test_interconnect_ordering_at_64_cores(self):
        # Figure 2.3 / Chapter 4: mesh is the slowest organization at scale.
        plan = floorplan_for(64)
        mesh = MeshInterconnect().latency_cycles(plan)
        for other in (IdealInterconnect(), CrossbarInterconnect(), NocOutInterconnect()):
            assert other.latency_cycles(plan) < mesh


class TestAreas:
    def test_areas_positive_and_within_paper_band(self):
        plan = floorplan_for(32, 8.0)
        for model in (IdealInterconnect(), CrossbarInterconnect(), MeshInterconnect()):
            area = model.area_mm2(plan, NODE_40NM)
            assert 0.2 <= area <= 6.0  # Table 2.1: interconnect 0.2 - 4.5 mm^2

    def test_fbfly_much_larger_than_nocout_at_64_cores(self):
        plan = floorplan_for(64, 8.0)
        fbfly = FlattenedButterflyInterconnect().area_mm2(plan, NODE_32NM)
        nocout = NocOutInterconnect().area_mm2(plan, NODE_32NM)
        mesh = MeshInterconnect().area_mm2(plan, NODE_32NM)
        assert fbfly > 5 * nocout
        assert nocout < mesh * 1.5

    def test_crossbar_area_grows_quadratically(self):
        crossbar = CrossbarInterconnect()
        small = crossbar.area_mm2(floorplan_for(16))
        large = crossbar.area_mm2(floorplan_for(64))
        assert large > 4 * small * 0.5

    def test_power_capped_at_5w(self):
        plan = floorplan_for(256, 8.0)
        for name in ("crossbar", "mesh", "fbfly", "nocout", "ideal"):
            assert interconnect_model(name).power_w(plan) <= 5.0
