"""Property-based equivalence suite for the fleet and fast-engine kernels.

The determinism contract under test: the vectorized fast kernels and the
discrete-event reference engine, fed identical generated request arrays,
produce **bit-identical** results -- not approximately equal ones.  Randomized
(but seeded, via hypothesis) configurations sweep cluster policies, arrival
processes, parallelism, and fleet shapes; any counterexample shrinks to a
minimal reproducing configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import (
    Datacenter,
    FleetConfig,
    FleetSimulation,
    LoadShape,
    Region,
    RequestClass,
)
from repro.runtime.executor import SweepExecutor
from repro.service.cluster import ClusterConfig, simulate_cluster

# ---------------------------------------------------------------- strategies

cluster_configs = st.fixed_dictionaries(
    {
        "policy": st.sampled_from(["jsq", "po2", "random", "round_robin"]),
        "num_servers": st.integers(min_value=1, max_value=6),
        "parallelism": st.integers(min_value=1, max_value=3),
        "utilization": st.floats(min_value=0.2, max_value=1.15),
        "arrival": st.sampled_from(["poisson", "mmpp"]),
        "seed": st.integers(min_value=0, max_value=2**20),
    }
)

fleet_shapes = st.fixed_dictionaries(
    {
        "routing": st.sampled_from(["nearest", "latency_weighted", "spillover"]),
        "policy": st.sampled_from(["jsq", "po2", "random", "round_robin"]),
        "arrival": st.sampled_from(["poisson", "mmpp"]),
        "num_epochs": st.integers(min_value=1, max_value=3),
        "offered_qps": st.floats(min_value=50.0, max_value=400.0),
        "seed": st.integers(min_value=0, max_value=2**20),
    }
)


def _cluster_config(params) -> ClusterConfig:
    num_servers = params["num_servers"]
    parallelism = params["parallelism"]
    service_mean_s = 0.01
    capacity = num_servers * parallelism / service_mean_s
    return ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=params["utilization"] * capacity,
        policy=params["policy"],
        arrival=params["arrival"],
        arrival_kwargs=(
            {"burstiness": 3.0, "burst_fraction": 0.25, "mean_phase_s": 0.05}
            if params["arrival"] == "mmpp"
            else {}
        ),
    )


def _fleet_config(params) -> FleetConfig:
    datacenters = (
        Datacenter(
            "east", Region("east", 0.0, 0.0), num_servers=3, parallelism=2,
            service_mean_s=0.01, policy=params["policy"],
        ),
        Datacenter(
            "west", Region("west", 1.0, 0.5), num_servers=2, parallelism=1,
            service_mean_s=0.012, policy=params["policy"],
        ),
    )
    return FleetConfig(
        datacenters=datacenters,
        offered_qps=params["offered_qps"],
        routing=params["routing"],
        load_shape=LoadShape((1.4, 0.6, 1.0)[: params["num_epochs"]], epoch_s=3.0),
        arrival=params["arrival"],
        arrival_kwargs=(
            {"burstiness": 4.0, "burst_fraction": 0.2, "mean_phase_s": 1.0}
            if params["arrival"] == "mmpp"
            else {}
        ),
        origin_weights=(0.7, 0.3),
    )


def _assert_fleet_identical(first, second) -> None:
    """Bitwise equality of two fleet results (samples, histograms, counts)."""
    assert first.total_requests == second.total_requests
    assert first.network_sum_s == second.network_sum_s
    for name in first.class_samples:
        assert np.array_equal(
            np.array(first.class_samples[name]),
            np.array(second.class_samples[name]),
        )
    for name, histogram in first.datacenter_histograms.items():
        other = second.datacenter_histograms[name]
        assert np.array_equal(histogram.counts, other.counts)
        assert histogram.sum_s == other.sum_s
        assert histogram.max_s == other.max_s
    for mine, theirs in zip(first.epoch_stats, second.epoch_stats):
        assert mine.requests == theirs.requests
        assert mine.busy_s == theirs.busy_s
        assert mine.servers == theirs.servers


# ------------------------------------------------------------------ cluster


class TestClusterEngineEquivalence:
    """Fast kernels == event engine on randomized cluster configurations."""

    @given(params=cluster_configs)
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_event_bitwise(self, params):
        """Sorted latencies, routing counts, and duration are bit-identical
        across engines for every policy and arrival process."""
        config = _cluster_config(params)
        fast = simulate_cluster(config, num_requests=400, seed=params["seed"], engine="fast")
        event = simulate_cluster(config, num_requests=400, seed=params["seed"], engine="event")
        assert np.array_equal(
            np.sort(np.array(fast.latency.samples)),
            np.sort(np.array(event.latency.samples)),
        )
        assert fast.per_server_counts == event.per_server_counts
        assert fast.duration_s == event.duration_s


# -------------------------------------------------------------------- fleet


class TestFleetEngineEquivalence:
    """Fleet days replay bit-identically on the fast and event engines."""

    @given(params=fleet_shapes)
    @settings(max_examples=15, deadline=None)
    def test_fast_matches_event_bitwise(self, params):
        """Per-class samples, per-site histograms, and per-epoch cells agree
        bitwise between the two engines on randomized fleet days."""
        config = _fleet_config(params)
        fast = FleetSimulation(
            config, seed=params["seed"], engine="fast", collect_samples=True
        ).run()
        event = FleetSimulation(
            config, seed=params["seed"], engine="event", collect_samples=True
        ).run()
        assert fast.engine == "fast" and event.engine == "event"
        _assert_fleet_identical(fast, event)

    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        epochs=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_empty_shape_is_stationary_baseline(self, seed, epochs):
        """The empty LoadShape and an explicit all-ones flat trace produce
        byte-identical days: modulation composes onto, never perturbs."""
        datacenters = (
            Datacenter(
                "solo", Region("solo"), num_servers=3, parallelism=2,
                service_mean_s=0.01, policy="jsq",
            ),
        )
        stationary = FleetConfig(
            datacenters=datacenters, offered_qps=300.0, num_epochs=epochs,
            load_shape=LoadShape((), epoch_s=2.0),
        )
        flat = FleetConfig(
            datacenters=datacenters, offered_qps=300.0,
            load_shape=LoadShape.flat(epochs, epoch_s=2.0),
        )
        first = FleetSimulation(stationary, seed=seed, collect_samples=True).run()
        second = FleetSimulation(flat, seed=seed, collect_samples=True).run()
        _assert_fleet_identical(first, second)

    def test_identical_seeds_identical_days(self):
        """Re-running the same configuration and seed reproduces the day."""
        config = _fleet_config(
            {
                "routing": "spillover",
                "policy": "po2",
                "arrival": "mmpp",
                "num_epochs": 3,
                "offered_qps": 250.0,
                "seed": 0,
            }
        )
        first = FleetSimulation(config, seed=9, collect_samples=True).run()
        second = FleetSimulation(config, seed=9, collect_samples=True).run()
        _assert_fleet_identical(first, second)


# ------------------------------------------------------- executor invariance


def _fleet_day_requests(seed: int) -> int:
    """One tiny fleet day's request count (module-level: picklable)."""
    config = FleetConfig(
        datacenters=(
            Datacenter(
                "east", Region("east"), num_servers=2, parallelism=2,
                service_mean_s=0.01, policy="jsq",
            ),
        ),
        offered_qps=200.0,
        load_shape=LoadShape((1.5, 0.5), epoch_s=2.0),
    )
    return FleetSimulation(config, seed=seed).run().total_requests


class TestExecutorInvariance:
    """Serial and process-parallel sweeps produce identical fleet results."""

    def test_serial_equals_parallel(self):
        """Fleet days are pure functions of (config, seed): fan-out across
        processes must not change a single result."""
        points = [(seed,) for seed in range(6)]
        serial = SweepExecutor(mode="serial").map(_fleet_day_requests, points)
        parallel = SweepExecutor(mode="process", max_workers=3).map(
            _fleet_day_requests, points
        )
        assert serial == parallel


# ----------------------------------------------------------- study-level


class TestStudyEquivalence:
    """The catalog studies accept engine overrides and agree across them."""

    def test_diurnal_study_rows_match_event_engine(self):
        """A small diurnal-day study produces identical rows on both engines
        (rows only carry histogram-derived and count statistics)."""
        from repro.experiments.fleet import fleet_diurnal_day

        kwargs = dict(offered_qps=400.0, epoch_s=0.5)
        assert fleet_diurnal_day(engine="fast", **kwargs) == fleet_diurnal_day(
            engine="event", **kwargs
        )
