"""Tests for the cycle-level simulation substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cores.models import OOO
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.sim.cache import SetAssociativeCache
from repro.sim.core import TraceDrivenCore
from repro.sim.directory import Directory
from repro.sim.engine import EventQueue
from repro.sim.memctrl import MemoryChannelSim
from repro.sim.system import SimulatedSystem, simulate_system
from repro.technology.node import NODE_40NM
from repro.workloads import get_workload
from repro.workloads.traces import TraceEvent


class TestSimulationStats:
    def test_network_latency_avg(self):
        from repro.sim.stats import SimulationStats

        stats = SimulationStats(llc_accesses=4, network_latency_cycles_total=36.0)
        assert stats.network_latency_avg == 9.0
        assert stats.average_network_latency == 9.0  # legacy alias

    def test_network_latency_avg_guards_zero_accesses(self):
        from repro.sim.stats import SimulationStats

        assert SimulationStats().network_latency_avg == 0.0


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5, lambda: order.append("b"))
        queue.schedule(1, lambda: order.append("a"))
        queue.schedule(9, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]
        assert queue.now == 9
        assert queue.processed == 3

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2, lambda: order.append(1))
        queue.schedule(2, lambda: order.append(2))
        queue.run()
        assert order == [1, 2]

    def test_run_until(self):
        queue = EventQueue()
        hits = []
        for t in (1, 2, 10):
            queue.schedule(t, lambda t=t: hits.append(t))
        queue.run(until=5)
        assert hits == [1, 2]
        assert queue.pending == 1

    def test_invalid_schedule(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)
        queue.schedule(5, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(1, lambda: None)

    def test_run_until_advances_on_empty_heap(self):
        """Regression: ``run(until=...)`` must advance ``now`` even when no
        event is pending past (or before) the horizon."""
        queue = EventQueue()
        assert queue.run(until=10) == 10
        assert queue.now == 10
        # A later schedule_at inside the simulated window is not "in the past".
        queue.schedule_at(12, lambda: None)
        queue.run()
        assert queue.now == 12

    def test_run_until_advances_when_events_drain_early(self):
        queue = EventQueue()
        queue.schedule(3, lambda: None)
        assert queue.run(until=10) == 10
        assert queue.processed == 1

    def test_run_until_does_not_rewind(self):
        queue = EventQueue()
        queue.schedule(8, lambda: None)
        queue.run()
        assert queue.run(until=5) == 8

    def test_max_events_budget_does_not_jump_to_until(self):
        queue = EventQueue()
        for t in (1, 2, 3):
            queue.schedule(t, lambda: None)
        assert queue.run(until=10, max_events=2) == 2
        assert queue.pending == 1


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(capacity_bytes=4096, associativity=2)
        assert not cache.access(0x100)
        cache.fill(0x100)
        assert cache.access(0x100)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = SetAssociativeCache(capacity_bytes=2 * 64, associativity=2)
        # Single set with two ways: filling a third distinct line evicts the LRU.
        cache.fill(0)
        cache.fill(64 * cache.num_sets)  # same set, different tag
        cache.access(0)  # touch line 0 -> the other line becomes LRU
        evicted = cache.fill(2 * 64 * cache.num_sets)
        assert evicted == 64 * cache.num_sets
        assert cache.access(0)

    def test_writeback_counted_for_dirty_victims(self):
        cache = SetAssociativeCache(capacity_bytes=2 * 64, associativity=2)
        cache.fill(0, dirty=True)
        cache.fill(64 * cache.num_sets)
        cache.fill(2 * 64 * cache.num_sets)
        assert cache.stats.writebacks == 1

    def test_invalidate(self):
        cache = SetAssociativeCache(capacity_bytes=4096)
        cache.fill(0x40)
        assert cache.invalidate(0x40)
        assert not cache.invalidate(0x40)
        assert not cache.contains(0x40)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1024, associativity=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1024, line_bytes=48)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    def test_resident_lines_never_exceed_capacity(self, addresses):
        cache = SetAssociativeCache(capacity_bytes=8192, associativity=4)
        capacity_lines = 8192 // 64
        for address in addresses:
            if not cache.access(address):
                cache.fill(address)
            assert cache.resident_lines <= capacity_lines

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=100))
    def test_second_access_always_hits_small_footprint(self, addresses):
        # With a footprint smaller than the cache, re-accessing any line hits.
        cache = SetAssociativeCache(capacity_bytes=1 << 20, associativity=16)
        for address in addresses:
            if not cache.access(address):
                cache.fill(address)
        for address in addresses:
            assert cache.access(address)


class TestDirectory:
    def test_read_sharing_no_snoops(self):
        directory = Directory()
        assert directory.access(0, 0x100, is_write=False) == 0
        assert directory.access(1, 0x100, is_write=False) == 0
        assert directory.sharers_of(0x100) == frozenset({0, 1})

    def test_write_invalidates_sharers(self):
        directory = Directory()
        directory.access(0, 0x100, is_write=False)
        directory.access(1, 0x100, is_write=False)
        snoops = directory.access(2, 0x100, is_write=True)
        assert snoops == 2
        assert directory.sharers_of(0x100) == frozenset({2})

    def test_read_of_modified_line_forwards(self):
        directory = Directory()
        directory.access(0, 0x200, is_write=True)
        assert directory.access(1, 0x200, is_write=False) == 1
        assert directory.stats.forward_snoops == 1

    def test_own_data_no_snoop(self):
        directory = Directory()
        directory.access(0, 0x300, is_write=True)
        assert directory.access(0, 0x300, is_write=True) == 0
        assert directory.access(0, 0x300, is_write=False) == 0

    def test_evict_clears_state(self):
        directory = Directory()
        directory.access(0, 0x100, is_write=True)
        directory.evict(0x100)
        assert directory.sharers_of(0x100) == frozenset()

    def test_snoop_fraction_statistic(self):
        directory = Directory()
        directory.access(0, 0, is_write=False)
        directory.access(1, 0, is_write=True)
        assert directory.stats.lookups == 2
        assert 0 < directory.stats.snoop_fraction <= 1.0


class TestMemoryChannel:
    def test_fixed_latency_when_idle(self):
        channel = MemoryChannelSim(node=NODE_40NM)
        completion = channel.request(0.0)
        assert completion == pytest.approx(channel.service_cycles + 90.0)

    def test_back_to_back_requests_queue(self):
        channel = MemoryChannelSim(node=NODE_40NM)
        first = channel.request(0.0)
        second = channel.request(0.0)
        assert second > first
        assert channel.requests == 2
        assert channel.utilization(100.0) > 0

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            MemoryChannelSim(node=NODE_40NM).request(-1.0)


class TestTraceDrivenCore:
    def _trace(self):
        return [
            TraceEvent(instruction_gap=10, address=0x1000, is_instruction=True, is_write=False, shared=False),
            TraceEvent(instruction_gap=10, address=0x2000, is_instruction=False, is_write=False, shared=False),
            TraceEvent(instruction_gap=10, address=0x3000, is_instruction=False, is_write=True, shared=False),
        ]

    def test_instruction_fetches_stall_fully(self):
        latencies = []
        def llc_request(core_id, address, is_write, is_instruction, now):
            latencies.append((is_instruction, now))
            return 50.0
        core = TraceDrivenCore(0, OOO, get_workload("Web Search"), self._trace(), llc_request)
        stats = core.run()
        assert stats.instructions == 30
        assert stats.fetch_stall_cycles == pytest.approx(50.0)
        assert stats.cycles > 30 * 0.4  # at least the base-CPI time passed
        assert core.done

    def test_data_requests_overlap_within_window(self):
        def llc_request(core_id, address, is_write, is_instruction, now):
            return 100.0
        trace = [
            TraceEvent(instruction_gap=1, address=0x1000 * (i + 1), is_instruction=False, is_write=False, shared=False)
            for i in range(4)
        ]
        core = TraceDrivenCore(0, OOO, get_workload("Web Search"), trace, llc_request)
        stats = core.run()
        # Four overlapping 100-cycle misses must not serialize into 400 cycles.
        assert stats.cycles < 250.0

    def test_ipc_property(self):
        core = TraceDrivenCore(0, OOO, get_workload("Web Search"), self._trace(), lambda *a: 10.0)
        core.run()
        assert 0 < core.ipc < OOO.issue_width


class TestSimulatedSystem:
    def test_end_to_end_stats(self):
        workload = get_workload("Web Search")
        config = SystemConfig(cores=4, core_type="ooo", llc_capacity_mb=4, interconnect="crossbar")
        stats = simulate_system(workload, config, instructions_per_core=4000, seed=3)
        assert stats.instructions >= 4 * 4000 * 0.9
        assert stats.aggregate_ipc > 0.5
        assert 0 <= stats.snoop_fraction < 0.2
        assert stats.llc_accesses > 0
        assert stats.llc_misses <= stats.llc_accesses
        assert len(stats.per_core_cycles) == 4

    def test_deterministic_given_seed(self):
        workload = get_workload("Data Serving")
        config = SystemConfig(cores=2, core_type="ooo", llc_capacity_mb=2)
        a = simulate_system(workload, config, instructions_per_core=3000, seed=5)
        b = simulate_system(workload, config, instructions_per_core=3000, seed=5)
        assert a.aggregate_ipc == pytest.approx(b.aggregate_ipc)
        assert a.llc_misses == b.llc_misses

    def test_warmup_reduces_misses(self):
        workload = get_workload("Web Search")
        config = SystemConfig(cores=4, core_type="ooo", llc_capacity_mb=4)
        cold = SimulatedSystem(workload, config, seed=3).run(4000, warmup=False)
        warm = SimulatedSystem(workload, config, seed=3).run(4000, warmup=True)
        assert warm.llc_miss_ratio < cold.llc_miss_ratio

    def test_smaller_llc_misses_more(self):
        workload = get_workload("Web Search")
        small = simulate_system(workload, SystemConfig(cores=4, llc_capacity_mb=1), 4000, seed=3)
        large = simulate_system(workload, SystemConfig(cores=4, llc_capacity_mb=8), 4000, seed=3)
        assert small.llc_mpki > large.llc_mpki

    def test_mesh_slower_than_crossbar_at_many_cores(self):
        workload = get_workload("Web Frontend")
        mesh = simulate_system(
            workload, SystemConfig(cores=16, llc_capacity_mb=4, interconnect="mesh"), 3000, seed=3
        )
        crossbar = simulate_system(
            workload, SystemConfig(cores=16, llc_capacity_mb=4, interconnect="crossbar"), 3000, seed=3
        )
        assert crossbar.aggregate_ipc > mesh.aggregate_ipc

    def test_model_tracks_simulation_within_band(self):
        # Figure 3.3: the analytic model follows the simulator's trends; the
        # reduced-fidelity reproduction keeps the two within ~40 %.
        workload = get_workload("Data Serving")
        config = SystemConfig(cores=8, core_type="ooo", llc_capacity_mb=4)
        simulated = simulate_system(workload, config, instructions_per_core=5000, seed=7)
        predicted = AnalyticPerformanceModel().estimate(workload, config)
        ratio = predicted.aggregate_ipc / simulated.aggregate_ipc
        assert 0.6 < ratio < 1.4

    def test_invalid_run_length(self):
        workload = get_workload("Web Search")
        config = SystemConfig(cores=2, llc_capacity_mb=2)
        with pytest.raises(ValueError):
            SimulatedSystem(workload, config).run(0)

    def test_channel_interleaving_decorrelated_from_banks(self):
        # Regression: channel selection used the same low line-address bits as
        # bank selection, so every line of a given bank hit one channel.  Lines
        # mapping to any single bank must now spread across all channels.
        workload = get_workload("Web Search")
        config = SystemConfig(cores=16, core_type="ooo", llc_capacity_mb=4, interconnect="crossbar")
        system = SimulatedSystem(workload, config, memory_channels=2, seed=3)
        assert len(system.channels) == 2 and system.num_banks % 2 == 0
        for bank in range(system.num_banks):
            lines = [line for line in range(512) if system._bank_for(line * 64) == bank]
            channels = {system._channel_for(line * 64) for line in lines}
            assert channels == set(range(len(system.channels)))

    def test_memory_traffic_spreads_across_channels(self):
        # End to end: a cold run's DRAM requests must land on every channel.
        workload = get_workload("Web Search")
        config = SystemConfig(cores=16, core_type="ooo", llc_capacity_mb=1, interconnect="crossbar")
        system = SimulatedSystem(workload, config, memory_channels=2, seed=3)
        system.run(2000, warmup=False)
        assert all(channel.requests > 0 for channel in system.channels)
